"""Seeded random quantum objects (Haar-random unitaries and states, random Paulis).

The man-in-the-middle attack model replaces Alice's qubits with freshly
prepared random single-qubit states, and several property-based tests exercise
invariants on random inputs; both use this module.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.operators import Operator, PAULI_MATRICES
from repro.quantum.states import Statevector
from repro.utils.rng import as_rng

__all__ = ["haar_random_unitary", "haar_random_state", "random_pauli", "random_bloch_state"]


def haar_random_unitary(num_qubits: int, rng=None) -> Operator:
    """Sample a Haar-random unitary on *num_qubits* qubits.

    Uses the QR decomposition of a complex Ginibre matrix with the phase
    correction of Mezzadri (2007) so the distribution is exactly Haar.
    """
    generator = as_rng(rng)
    dim = 2**int(num_qubits)
    ginibre = generator.normal(size=(dim, dim)) + 1j * generator.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    phases = np.diag(r).copy()
    phases = phases / np.abs(phases)
    return Operator(q * phases)


def haar_random_state(num_qubits: int, rng=None) -> Statevector:
    """Sample a Haar-random pure state on *num_qubits* qubits."""
    generator = as_rng(rng)
    dim = 2**int(num_qubits)
    vector = generator.normal(size=dim) + 1j * generator.normal(size=dim)
    return Statevector(vector / np.linalg.norm(vector), validate=False)


def random_bloch_state(rng=None) -> Statevector:
    """Sample a single-qubit pure state uniformly on the Bloch sphere."""
    return haar_random_state(1, rng)


def random_pauli(rng=None, include_identity: bool = True) -> tuple[str, Operator]:
    """Sample a uniformly random single-qubit Pauli as ``(label, Operator)``."""
    generator = as_rng(rng)
    labels = ["I", "X", "Y", "Z"] if include_identity else ["X", "Y", "Z"]
    label = labels[int(generator.integers(0, len(labels)))]
    return label, Operator(PAULI_MATRICES[label])
