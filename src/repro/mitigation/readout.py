"""Readout (measurement assignment) error mitigation.

NISQ devices misreport measurement outcomes with a per-qubit probability of
the order of 1 %, which directly lowers the Fig. 2 / Fig. 3 accuracies even
for short channels.  :class:`ReadoutMitigator` corrects measured histograms by
inverting the tensored single-qubit assignment matrices ``A_q`` (the standard
"measurement error mitigation" of NISQ practice):

    ``p_measured = (A_0 ⊗ A_1 ⊗ ...) · p_true``

The mitigator can be constructed directly from a
:class:`~repro.quantum.noise_model.NoiseModel` (when the assignment matrices
are known, as for the device models in this library) or calibrated empirically
from a backend by preparing and measuring the all-``|0⟩`` and all-``|1⟩``
states, exactly as one would on real hardware.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
from scipy.optimize import nnls

from repro.device.backend import NoisyBackend
from repro.device.counts import Counts
from repro.exceptions import ReproError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise_model import NoiseModel

__all__ = ["ReadoutMitigator"]


class ReadoutMitigator:
    """Invert per-qubit assignment matrices to correct measured histograms.

    Parameters
    ----------
    assignment_matrices:
        One 2×2 column-stochastic matrix per measured qubit, ordered like the
        bits of the outcome strings (big-endian: entry 0 corresponds to the
        leftmost bit).  ``A[measured, true]`` is the probability of reading
        ``measured`` when the true state is ``true``.
    """

    def __init__(self, assignment_matrices: Sequence[np.ndarray]):
        if not assignment_matrices:
            raise ReproError("at least one assignment matrix is required")
        matrices = []
        for matrix in assignment_matrices:
            matrix = np.asarray(matrix, dtype=float)
            if matrix.shape != (2, 2):
                raise ReproError("assignment matrices must be 2x2")
            if np.any(matrix < -1e-9) or not np.allclose(matrix.sum(axis=0), 1.0, atol=1e-6):
                raise ReproError("assignment matrices must be column-stochastic")
            matrices.append(matrix)
        self._matrices = matrices

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_noise_model(cls, noise_model: NoiseModel, qubits: Sequence[int]) -> "ReadoutMitigator":
        """Build a mitigator from the known readout errors of a noise model."""
        matrices = []
        for qubit in qubits:
            error = noise_model.readout_error_for(int(qubit))
            matrices.append(np.eye(2) if error is None else error.assignment_matrix)
        return cls(matrices)

    @classmethod
    def calibrate(
        cls, backend: NoisyBackend, num_qubits: int, shots: int = 4096
    ) -> "ReadoutMitigator":
        """Estimate per-qubit assignment matrices from calibration circuits.

        Runs two circuits — all qubits in ``|0⟩`` and all qubits in ``|1⟩`` —
        and reads the per-qubit flip rates off the marginals, which is exact
        when readout errors are uncorrelated between qubits (the model used by
        the device layer).
        """
        if num_qubits < 1:
            raise ReproError("need at least one qubit to calibrate")
        if shots < 1:
            raise ReproError("shots must be positive")

        zero_circuit = QuantumCircuit(num_qubits, name="readout_cal_0")
        zero_circuit.measure_all()
        one_circuit = QuantumCircuit(num_qubits, name="readout_cal_1")
        for qubit in range(num_qubits):
            one_circuit.x(qubit)
        one_circuit.measure_all()

        zero_counts = backend.run(zero_circuit, shots=shots)
        one_counts = backend.run(one_circuit, shots=shots)

        matrices = []
        for qubit in range(num_qubits):
            p1_given_0 = zero_counts.marginal([qubit]).outcome_probability("1")
            p0_given_1 = one_counts.marginal([qubit]).outcome_probability("0")
            matrices.append(
                np.array(
                    [[1 - p1_given_0, p0_given_1], [p1_given_0, 1 - p0_given_1]]
                )
            )
        return cls(matrices)

    # -- queries ---------------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of measured qubits the mitigator handles."""
        return len(self._matrices)

    def assignment_matrix(self) -> np.ndarray:
        """The full tensored assignment matrix over all measured qubits."""
        full = np.array([[1.0]])
        for matrix in self._matrices:
            full = np.kron(full, matrix)
        return full

    # -- mitigation -------------------------------------------------------------------------
    def apply(self, counts: "Counts | Mapping[str, int]") -> dict[str, float]:
        """Return the mitigated outcome distribution for *counts*.

        The measured frequencies are corrected with a non-negative
        least-squares solve against the tensored assignment matrix, which is
        equivalent to matrix inversion when the result is already a valid
        probability vector but never produces negative probabilities.
        """
        raw = dict(counts)
        total = sum(int(v) for v in raw.values())
        if total <= 0:
            raise ReproError("counts are empty")
        width = self.num_qubits
        if any(len(key) != width for key in raw):
            raise ReproError(
                f"outcome strings must have {width} bits to match the mitigator"
            )
        measured = np.zeros(2**width)
        for key, value in raw.items():
            measured[int(key, 2)] = value / total

        solution, _ = nnls(self.assignment_matrix(), measured)
        if solution.sum() <= 0:
            raise ReproError("mitigation produced an empty distribution")
        solution = solution / solution.sum()
        return {
            format(index, f"0{width}b"): float(probability)
            for index, probability in enumerate(solution)
            if probability > 1e-12
        }

    def expectation_of(self, counts: "Counts | Mapping[str, int]", outcome: str) -> float:
        """Mitigated probability of one specific outcome."""
        return self.apply(counts).get(outcome, 0.0)

    def __repr__(self) -> str:
        return f"ReadoutMitigator(num_qubits={self.num_qubits})"
