"""Zero-noise extrapolation (ZNE) by identity-gate folding.

The paper's channel is literally a chain of η identity gates, which makes
noise scaling trivial: running the same transfer with channels of length
``scale · η`` for several scale factors and extrapolating the measured
accuracy back to ``scale → 0`` estimates the noiseless value — the textbook
zero-noise-extrapolation recipe with gate folding replaced by channel
lengthening.

:class:`ZeroNoiseExtrapolator` fits either a linear, quadratic (Richardson) or
exponential-decay model to the (scale, value) pairs and reports the
extrapolated zero-noise value with the fit diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from scipy.optimize import curve_fit

from repro.exceptions import ReproError

__all__ = ["fold_channel_length", "ExtrapolationResult", "ZeroNoiseExtrapolator"]

_MODELS = ("linear", "quadratic", "exponential")


def fold_channel_length(eta: int, scale: float) -> int:
    """Channel length implementing noise-scale *scale* (≥ 1) for a base length η."""
    if eta < 0:
        raise ReproError("eta must be non-negative")
    if scale < 1:
        raise ReproError("noise can only be scaled up (scale ≥ 1)")
    return int(round(eta * scale))


@dataclass(frozen=True)
class ExtrapolationResult:
    """Outcome of a zero-noise extrapolation.

    Attributes
    ----------
    zero_noise_value:
        The extrapolated value at noise scale 0.
    model:
        Which model was fitted (``linear``, ``quadratic`` or ``exponential``).
    parameters:
        The fitted model parameters.
    scales, values:
        The inputs the fit was performed on.
    rms_residual:
        Root-mean-square residual of the fit.
    """

    zero_noise_value: float
    model: str
    parameters: tuple[float, ...]
    scales: tuple[float, ...]
    values: tuple[float, ...]
    rms_residual: float

    @property
    def improvement_over_unmitigated(self) -> float:
        """Difference between the extrapolated value and the scale-1 measurement."""
        if 1.0 in self.scales:
            baseline = self.values[self.scales.index(1.0)]
        else:
            baseline = self.values[int(np.argmin(self.scales))]
        return self.zero_noise_value - baseline


class ZeroNoiseExtrapolator:
    """Fit measured values at several noise scales and extrapolate to zero noise.

    Parameters
    ----------
    model:
        ``"linear"`` (first-order Richardson), ``"quadratic"`` or
        ``"exponential"`` (``a·exp(−b·s) + c`` — the natural model for the
        accuracy of a depolarised Bell measurement, with ``c`` the 1/4 floor).
    floor:
        Asymptotic floor used by the exponential model (default 0.25).
    """

    def __init__(self, model: str = "exponential", floor: float = 0.25):
        if model not in _MODELS:
            raise ReproError(f"model must be one of {_MODELS}, got {model!r}")
        if not 0.0 <= floor < 1.0:
            raise ReproError("floor must lie in [0, 1)")
        self.model = model
        self.floor = float(floor)

    def extrapolate(
        self, scales: Sequence[float], values: Sequence[float]
    ) -> ExtrapolationResult:
        """Fit the configured model and evaluate it at noise scale zero."""
        scales = tuple(float(s) for s in scales)
        values = tuple(float(v) for v in values)
        if len(scales) != len(values):
            raise ReproError("scales and values must have the same length")
        minimum_points = {"linear": 2, "quadratic": 3, "exponential": 2}[self.model]
        if len(scales) < minimum_points:
            raise ReproError(
                f"the {self.model} model needs at least {minimum_points} points"
            )
        if len(set(scales)) != len(scales):
            raise ReproError("noise scales must be distinct")

        xs, ys = np.array(scales), np.array(values)
        if self.model == "linear":
            coefficients = np.polyfit(xs, ys, 1)
            prediction = np.polyval(coefficients, 0.0)
            residual = ys - np.polyval(coefficients, xs)
            parameters = tuple(float(c) for c in coefficients)
        elif self.model == "quadratic":
            coefficients = np.polyfit(xs, ys, 2)
            prediction = np.polyval(coefficients, 0.0)
            residual = ys - np.polyval(coefficients, xs)
            parameters = tuple(float(c) for c in coefficients)
        else:
            floor = self.floor

            def model(s, amplitude, rate):
                return amplitude * np.exp(-rate * s) + floor

            initial_amplitude = max(ys.max() - floor, 1e-3)
            popt, _ = curve_fit(
                model, xs, ys, p0=[initial_amplitude, 0.1], maxfev=10000,
                bounds=([0.0, 0.0], [1.5, 100.0]),
            )
            prediction = model(0.0, *popt)
            residual = ys - model(xs, *popt)
            parameters = (float(popt[0]), float(popt[1]), floor)

        return ExtrapolationResult(
            zero_noise_value=float(prediction),
            model=self.model,
            parameters=parameters,
            scales=scales,
            values=values,
            rms_residual=float(np.sqrt(np.mean(residual**2))),
        )
