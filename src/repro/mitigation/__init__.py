"""Quantum error mitigation (the paper's §IV-B outlook, implemented).

The paper notes that extending the protocol over longer noisy channels without
full error-correcting codes calls for error *mitigation* or suppression
techniques.  This subpackage implements the two standard, hardware-friendly
techniques and wires them into the Fig. 3 experiment so their effect on the
accuracy-versus-channel-length curve can be quantified:

* :mod:`repro.mitigation.readout` — measurement (assignment) error mitigation
  by inverting the tensored per-qubit assignment matrices, with a
  least-squares fallback that keeps the result a probability distribution;
* :mod:`repro.mitigation.zne` — zero-noise extrapolation by identity-gate
  folding: the channel length is deliberately scaled up and the measured
  accuracies are extrapolated back to the zero-noise limit.
"""

from repro.mitigation.readout import ReadoutMitigator
from repro.mitigation.zne import (
    ExtrapolationResult,
    ZeroNoiseExtrapolator,
    fold_channel_length,
)

__all__ = [
    "ReadoutMitigator",
    "ExtrapolationResult",
    "ZeroNoiseExtrapolator",
    "fold_channel_length",
]
