"""Environment fingerprint recorded in every artifact.

Timing numbers are only comparable in context: the interpreter, the BLAS
stack behind numpy, and the machine class all move them.  Every artifact
therefore carries a small host fingerprint so trajectory comparisons can tell
"this PR made it slower" apart from "this ran on a slower box" (the
regression CLI prints a warning when environments differ).

The fingerprint is deliberately *excluded* from the canonical payload used
for determinism checks — see :meth:`repro.artifacts.schema.RunArtifact.canonical_payload`.
"""

from __future__ import annotations

import platform
import sys
from typing import Any

__all__ = ["environment_fingerprint"]


def _distribution_version(module_name: str) -> str | None:
    """Version string of an installed package, or ``None`` if absent."""
    try:
        module = __import__(module_name)
    except ImportError:
        return None
    return str(getattr(module, "__version__", "unknown"))


def environment_fingerprint() -> dict[str, Any]:
    """Collect the host/toolchain facts that contextualise timings."""
    from repro import __version__ as repro_version

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "byteorder": sys.byteorder,
        "numpy": _distribution_version("numpy"),
        "scipy": _distribution_version("scipy"),
        "repro": repro_version,
    }
