"""Module entry point: ``python -m repro.artifacts``."""

import sys

from repro.artifacts.cli import main

if __name__ == "__main__":
    sys.exit(main())
