"""Command-line interface for run artifacts and benchmark trajectories.

Usage::

    python -m repro.artifacts compare BENCH_5.json BENCH_6.json
    python -m repro.artifacts compare BENCH_6.json bench_current.json --timing-threshold 4
    python -m repro.artifacts show BENCH_6.json
    python -m repro.artifacts run e2e --out e2e_artifact.json

``compare`` is the CI regression gate: it exits 0 when every benchmark is
improved/unchanged/new with no metric drift, 1 when the gate fails (timing
regression, metric drift, or a benchmark silently removed), and 2 on usage
or file errors.  ``show`` pretty-prints either file kind; ``run`` executes a
registered experiment and writes its :class:`~repro.artifacts.schema.RunArtifact`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.artifacts.schema import ArtifactSchemaError, RunArtifact, canonical_dumps, canonical_loads
from repro.artifacts.trajectory import Trajectory

__all__ = ["main", "build_parser", "load_payload"]

#: compare exit codes.
EXIT_OK = 0
EXIT_GATE_FAILED = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.artifacts",
        description=(
            "Inspect run artifacts and benchmark trajectories, and gate on "
            "benchmark regression / metric drift between two trajectories."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="Gate a current trajectory against a committed baseline"
    )
    compare.add_argument("baseline", help="Baseline trajectory JSON (e.g. BENCH_6.json)")
    compare.add_argument("current", help="Current trajectory JSON to check")
    compare.add_argument(
        "--timing-threshold",
        type=float,
        default=None,
        help="Mean-time ratio above which a bench regresses (default 1.5; "
        "raise on cross-machine comparisons)",
    )
    compare.add_argument(
        "--metrics-rtol",
        type=float,
        default=None,
        help="Relative tolerance for metric drift (default 1e-9)",
    )
    compare.add_argument(
        "--allow-missing",
        action="store_true",
        help="Do not fail when a baseline benchmark is absent from current",
    )
    compare.add_argument(
        "--json", action="store_true", help="Emit the comparison as JSON instead of a table"
    )

    show = subparsers.add_parser("show", help="Summarise an artifact or trajectory file")
    show.add_argument("path", help="JSON file written by this pipeline")

    run = subparsers.add_parser(
        "run", help="Run a registered experiment and write its artifact"
    )
    run.add_argument("experiment_id", help="Experiment id (see `python -m repro.experiments list`)")
    run.add_argument("--full", action="store_true", help="Run at paper scale instead of quick")
    run.add_argument("--out", "-o", default=None, help="Artifact output path (default <id>.json)")
    return parser


def load_payload(path: "str | Path") -> "Trajectory | RunArtifact":
    """Load either file kind, dispatching on the ``kind`` tag."""
    text = Path(path).read_text()
    data = canonical_loads(text)
    if not isinstance(data, dict):
        raise ArtifactSchemaError(f"{path}: expected a JSON object")
    kind = data.get("kind", "trajectory")
    if kind == "run_artifact":
        return RunArtifact.from_dict(data)
    return Trajectory.from_dict(data)


def _load_trajectory(path: str) -> Trajectory:
    payload = load_payload(path)
    if not isinstance(payload, Trajectory):
        raise ArtifactSchemaError(f"{path}: expected a trajectory, found a run artifact")
    return payload


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.regression import (
        DEFAULT_METRICS_RTOL,
        DEFAULT_TIMING_THRESHOLD,
        compare_trajectories,
        effect_table,
    )

    try:
        baseline = _load_trajectory(args.baseline)
        current = _load_trajectory(args.current)
    except (OSError, ArtifactSchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    comparison = compare_trajectories(
        baseline,
        current,
        timing_threshold=(
            DEFAULT_TIMING_THRESHOLD if args.timing_threshold is None else args.timing_threshold
        ),
        metrics_rtol=DEFAULT_METRICS_RTOL if args.metrics_rtol is None else args.metrics_rtol,
        allow_missing=args.allow_missing,
    )
    if args.json:
        print(canonical_dumps(comparison.to_dict(), indent=2))
    else:
        print(effect_table(comparison))
    return EXIT_OK if comparison.ok else EXIT_GATE_FAILED


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        payload = load_payload(args.path)
    except (OSError, ArtifactSchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if isinstance(payload, RunArtifact):
        print(f"Run artifact — experiment {payload.experiment_id!r} ({payload.mode} mode, "
              f"schema {payload.schema_version})")
        print(f"  seeds   : {payload.seeds}")
        print(f"  timings : " + ", ".join(
            f"{name}={duration:.4f}s" for name, duration in sorted(payload.timings.items())
        ))
        print("  metrics :")
        for name in sorted(payload.metrics):
            print(f"    {name} = {payload.metrics[name]!r}")
        return EXIT_OK
    print(f"Trajectory {payload.label!r} — {len(payload.records)} benchmarks "
          f"(schema {payload.schema_version})")
    environment = payload.environment
    if environment:
        print(f"  environment: python {environment.get('python')}, "
              f"numpy {environment.get('numpy')}, {environment.get('system')} "
              f"{environment.get('machine')}")
    for record in sorted(payload.records, key=lambda r: r.name):
        print(f"  {record.name:<60s} mean {record.mean_time * 1e3:9.2f} ms "
              f"({record.rounds} rounds, {len(record.metrics)} metrics)")
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.artifacts.capture import last_artifact
    from repro.exceptions import ExperimentError
    from repro.experiments.registry import get_experiment

    try:
        experiment = get_experiment(args.experiment_id)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    experiment.run(quick=not args.full)
    artifact = last_artifact(args.experiment_id)
    assert artifact is not None  # run() always publishes
    target = artifact.write(args.out or f"{args.experiment_id}.json")
    print(f"wrote {target}")
    return EXIT_OK


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "run":
        return _cmd_run(args)
    return EXIT_USAGE  # pragma: no cover - argparse enforces the choices
