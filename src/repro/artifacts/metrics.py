"""Metric extraction: experiment result objects → artifact ``metrics`` dicts.

Each experiment module owns the knowledge of which numbers in its result
object are *the* paper-comparable quantities (the ones a regression gate
should watch), and registers an extractor here — mirroring how
:mod:`repro.experiments.report` registers text renderers.  Extractors are
keyed by result type, or by experiment id for runners whose results are
plain containers (e.g. the impersonation sweep returns a list of points).

Extractors must return JSON-encodable mappings of scalar values (or flat
lists of scalars, for series like Fig. 3's accuracy-vs-η curve).  ``None``
is allowed for "not reached in this parameterisation" (e.g. a threshold
crossing outside the swept range).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

__all__ = ["register_metrics", "extract_metrics", "has_extractor"]

_TYPE_EXTRACTORS: dict[type, Callable[[Any], dict[str, Any]]] = {}
_ID_EXTRACTORS: dict[str, Callable[[Any], dict[str, Any]]] = {}


def register_metrics(key: "type | str") -> Callable[[Callable[[Any], dict[str, Any]]], Callable[[Any], dict[str, Any]]]:
    """Decorator registering an extractor for a result type or experiment id.

    Type registrations dispatch on ``isinstance`` of the result; string
    registrations dispatch on the experiment id and take precedence (they
    exist for runners whose result is a bare list/dict with no type of its
    own).
    """

    def decorator(func: Callable[[Any], dict[str, Any]]) -> Callable[[Any], dict[str, Any]]:
        if isinstance(key, str):
            _ID_EXTRACTORS[key] = func
        else:
            _TYPE_EXTRACTORS[key] = func
        return func

    return decorator


def has_extractor(result: Any, experiment_id: "str | None" = None) -> bool:
    """Whether a registered (non-fallback) extractor covers this result."""
    if experiment_id is not None and experiment_id in _ID_EXTRACTORS:
        return True
    return any(isinstance(result, result_type) for result_type in _TYPE_EXTRACTORS)


def extract_metrics(result: Any, experiment_id: "str | None" = None) -> dict[str, Any]:
    """Extract the artifact metrics for *result*.

    Resolution order: experiment-id extractor, then result-type extractor
    (exact type before base classes), then an ``artifact_metrics()`` method
    on the result itself, then ``{}`` — an experiment without an extractor
    still produces a valid artifact, just one with nothing for the gate to
    watch.
    """
    extractor = None
    if experiment_id is not None:
        extractor = _ID_EXTRACTORS.get(experiment_id)
    if extractor is None:
        extractor = _TYPE_EXTRACTORS.get(type(result))
    if extractor is None:
        for result_type, candidate in _TYPE_EXTRACTORS.items():
            if isinstance(result, result_type):
                extractor = candidate
                break
    if extractor is None:
        method = getattr(result, "artifact_metrics", None)
        if callable(method):
            return dict(method())
        return {}
    return dict(extractor(result))
