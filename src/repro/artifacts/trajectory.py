"""Benchmark trajectory files (the committed ``BENCH_*.json`` per PR).

A :class:`Trajectory` aggregates one benchmark session — every
``benchmarks/test_bench_*.py`` test that ran — into a single versioned JSON
document: per-benchmark timing samples plus the paper-comparable metrics each
bench recorded via its ``record(...)`` fixture.  One trajectory file is
committed per PR (``BENCH_6.json``, ``BENCH_7.json``, …), turning the repo
history into a perf trajectory that
:func:`repro.analysis.regression.compare_trajectories` can gate on.

The benchmarks conftest builds these automatically when the
``REPRO_BENCH_TRAJECTORY`` environment variable names an output path.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
from typing import Any

from repro.artifacts.schema import (
    SCHEMA_VERSION,
    ArtifactSchemaError,
    canonical_dumps,
    canonical_loads,
    check_schema_version,
    from_jsonable,
    to_jsonable,
)

__all__ = ["BenchmarkRecord", "Trajectory", "MAX_STORED_SAMPLES"]

#: Multi-round benches can produce thousands of timing samples; trajectories
#: keep a deterministic quantile subsample beyond this size so committed
#: files stay reviewable while bootstrap CIs stay meaningful.
MAX_STORED_SAMPLES = 64


def _subsample(samples: list[float]) -> list[float]:
    """Deterministically thin *samples* to at most :data:`MAX_STORED_SAMPLES`.

    Sorted evenly-spaced quantiles: preserves location and spread (what the
    bootstrap resamples) without storing every round.
    """
    if len(samples) <= MAX_STORED_SAMPLES:
        return list(samples)
    ordered = sorted(samples)
    last = len(ordered) - 1
    return [
        ordered[round(index * last / (MAX_STORED_SAMPLES - 1))]
        for index in range(MAX_STORED_SAMPLES)
    ]


@dataclasses.dataclass(frozen=True)
class BenchmarkRecord:
    """One benchmark's contribution to a trajectory.

    Attributes
    ----------
    name:
        Fully-qualified test name (``test_bench_x.py::test_y``) — the join
        key between trajectories.
    samples:
        Wall-clock timing samples in seconds (one per benchmark round,
        quantile-thinned beyond :data:`MAX_STORED_SAMPLES`).
    rounds:
        The original number of rounds (may exceed ``len(samples)``).
    metrics:
        Numeric paper-comparable values the bench recorded; these are
        drift-gated exactly by the regression CLI.
    info:
        Non-numeric context (backend names, rendered fits, …); informational
        only, never gated.
    """

    name: str
    samples: list[float]
    rounds: int = 0
    metrics: dict[str, Any] = dataclasses.field(default_factory=dict)
    info: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.samples:
            raise ArtifactSchemaError(f"benchmark record {self.name!r} has no timing samples")
        if self.rounds <= 0:
            object.__setattr__(self, "rounds", len(self.samples))
        object.__setattr__(self, "samples", _subsample([float(s) for s in self.samples]))

    @property
    def mean_time(self) -> float:
        return math.fsum(self.samples) / len(self.samples)

    @property
    def min_time(self) -> float:
        return min(self.samples)

    def to_dict(self) -> dict[str, Any]:
        return to_jsonable(
            {
                "name": self.name,
                "samples": self.samples,
                "rounds": self.rounds,
                "metrics": self.metrics,
                "info": self.info,
            }
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchmarkRecord":
        try:
            return cls(
                name=str(data["name"]),
                samples=[float(value) for value in from_jsonable(data["samples"])],
                rounds=int(data.get("rounds", 0)),
                metrics=dict(from_jsonable(data.get("metrics", {}))),
                info=dict(from_jsonable(data.get("info", {}))),
            )
        except KeyError as exc:
            raise ArtifactSchemaError(f"benchmark record missing field {exc}") from exc


@dataclasses.dataclass
class Trajectory:
    """A whole benchmark session: label + environment + per-bench records."""

    label: str
    records: list[BenchmarkRecord] = dataclasses.field(default_factory=list)
    environment: dict[str, Any] = dataclasses.field(default_factory=dict)
    schema_version: str = SCHEMA_VERSION

    def add(self, record: BenchmarkRecord) -> None:
        """Append a record (names must stay unique within one trajectory)."""
        if record.name in self.names():
            raise ArtifactSchemaError(f"duplicate benchmark record {record.name!r}")
        self.records.append(record)

    def names(self) -> list[str]:
        return [record.name for record in self.records]

    def get(self, name: str) -> "BenchmarkRecord | None":
        for record in self.records:
            if record.name == name:
                return record
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "trajectory",
            "schema_version": self.schema_version,
            "label": self.label,
            "environment": to_jsonable(self.environment),
            "records": [record.to_dict() for record in sorted(self.records, key=lambda r: r.name)],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trajectory":
        if not isinstance(data, dict):
            raise ArtifactSchemaError(f"trajectory must be an object, got {type(data).__name__}")
        kind = data.get("kind", "trajectory")
        if kind != "trajectory":
            raise ArtifactSchemaError(f"expected a trajectory payload, got kind {kind!r}")
        version = check_schema_version(data.get("schema_version", ""))
        records = [BenchmarkRecord.from_dict(entry) for entry in data.get("records", [])]
        return cls(
            label=str(data.get("label", "")),
            records=records,
            environment=dict(from_jsonable(data.get("environment", {}))),
            schema_version=version,
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Trajectory":
        return cls.from_dict(canonical_loads(text))

    def write(self, path: "str | Path") -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def read(cls, path: "str | Path") -> "Trajectory":
        return cls.from_json(Path(path).read_text())
