"""Run artifacts: versioned JSON records of every experiment and benchmark.

The pieces (see ``docs/artifacts.md`` for the full schema reference):

* :mod:`repro.artifacts.schema` — the :class:`RunArtifact` schema, schema
  versioning, and the deterministic/strict JSON encoding everything shares;
* :mod:`repro.artifacts.trajectory` — :class:`Trajectory` benchmark-session
  files (the committed ``BENCH_*.json`` per PR);
* :mod:`repro.artifacts.metrics` — per-experiment metric extractors
  (registered by the experiment modules themselves);
* :mod:`repro.artifacts.environment` — the host fingerprint;
* :mod:`repro.artifacts.capture` — artifact emission from the registry's
  ``run()`` path (``last_artifact``, ``capture_artifacts``,
  ``REPRO_ARTIFACT_DIR``);
* :mod:`repro.artifacts.cli` — ``python -m repro.artifacts`` (``compare`` is
  the CI regression gate; see :mod:`repro.analysis.regression`).
"""

from repro.artifacts.capture import capture_artifacts, last_artifact, publish
from repro.artifacts.environment import environment_fingerprint
from repro.artifacts.metrics import extract_metrics, has_extractor, register_metrics
from repro.artifacts.schema import (
    SCHEMA_VERSION,
    ArtifactSchemaError,
    RunArtifact,
    canonical_dumps,
    canonical_loads,
)
from repro.artifacts.trajectory import BenchmarkRecord, Trajectory

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactSchemaError",
    "BenchmarkRecord",
    "RunArtifact",
    "Trajectory",
    "canonical_dumps",
    "canonical_loads",
    "capture_artifacts",
    "environment_fingerprint",
    "extract_metrics",
    "has_extractor",
    "last_artifact",
    "publish",
    "register_metrics",
]
