"""Artifact emission from the experiment registry's ``run()`` path.

Every :meth:`repro.experiments.registry.Experiment.run` call builds a
:class:`~repro.artifacts.schema.RunArtifact` and publishes it here.  Three
consumers exist:

* ``last_artifact(experiment_id)`` — the most recent artifact per experiment,
  for callers that just ran one (the CLI's ``--artifact`` flag, tests);
* ``capture_artifacts()`` — a context manager collecting every artifact
  published inside its scope, for harnesses that run many experiments;
* the ``REPRO_ARTIFACT_DIR`` environment variable — when set, every artifact
  is additionally written to ``<dir>/<experiment_id>.json`` (how CI snapshots
  a full experiment sweep without touching any call site).
"""

from __future__ import annotations

import inspect
import os
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.artifacts.environment import environment_fingerprint
from repro.artifacts.metrics import extract_metrics
from repro.artifacts.schema import RunArtifact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (registry imports us)
    from repro.experiments.registry import Experiment

__all__ = [
    "capture_artifacts",
    "last_artifact",
    "publish",
    "record_experiment_run",
]

_LAST: dict[str, RunArtifact] = {}
_CAPTURES: list[list[RunArtifact]] = []


def publish(artifact: RunArtifact) -> RunArtifact:
    """Record *artifact* with every active consumer; returns it unchanged."""
    _LAST[artifact.experiment_id] = artifact
    for sink in _CAPTURES:
        sink.append(artifact)
    directory = os.environ.get("REPRO_ARTIFACT_DIR")
    if directory:
        artifact.write(Path(directory) / f"{artifact.experiment_id}.json")
    return artifact


def last_artifact(experiment_id: str) -> "RunArtifact | None":
    """The most recently published artifact for *experiment_id*, if any."""
    return _LAST.get(experiment_id)


@contextmanager
def capture_artifacts() -> Iterator[list[RunArtifact]]:
    """Collect every artifact published while the context is active."""
    sink: list[RunArtifact] = []
    _CAPTURES.append(sink)
    try:
        yield sink
    finally:
        _CAPTURES.remove(sink)


def _full_params(runner: Any, kwargs: dict[str, Any]) -> dict[str, Any]:
    """Merge *kwargs* over the runner's signature defaults.

    Two artifacts describe the same workload iff their ``params`` are equal,
    so defaults the caller did not override must still appear.  Runners with
    uninspectable signatures degrade to the explicit kwargs alone.
    """
    try:
        signature = inspect.signature(runner)
    except (TypeError, ValueError):
        return dict(kwargs)
    params: dict[str, Any] = {}
    for name, parameter in signature.parameters.items():
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            continue
        if name in kwargs:
            params[name] = kwargs[name]
        elif parameter.default is not parameter.empty:
            params[name] = parameter.default
    # Keep any **kwargs the signature funnelled through a VAR_KEYWORD.
    for name, value in kwargs.items():
        params.setdefault(name, value)
    return params


def record_experiment_run(
    experiment: "Experiment",
    *,
    kwargs: dict[str, Any],
    result: Any,
    duration: float,
    quick: bool,
) -> RunArtifact:
    """Build and publish the artifact for one registry ``run()`` execution."""
    params = _full_params(experiment.runner, kwargs)
    seeds = {name: value for name, value in params.items() if "seed" in name.lower()}
    timings: dict[str, Any] = {"run": float(duration)}
    # With a telemetry session active (`--trace` runs), attach the session's
    # span rollup and metrics snapshot.  They land in `timings`, which is
    # outside RunArtifact.CANONICAL_FIELDS, so canonical hashes and the
    # artifact-metric pins are unchanged whether or not tracing was on.
    from repro.telemetry import runtime as telemetry

    session = telemetry.active_session()
    if session is not None:
        from repro.telemetry.export import span_rollup

        document = session.snapshot_document()
        timings["telemetry"] = {
            "clock": session.clock.kind,
            "spans": span_rollup(document),
            "metrics": document.metrics,
        }
    artifact = RunArtifact(
        experiment_id=experiment.experiment_id,
        mode="quick" if quick else "full",
        params=params,
        seeds=seeds,
        timings=timings,
        metrics=extract_metrics(result, experiment.experiment_id),
        environment=environment_fingerprint(),
    )
    return publish(artifact)
