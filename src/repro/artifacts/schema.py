"""Versioned run-artifact schema with deterministic JSON serialization.

Every experiment run and every benchmark session in this repository is
summarised by a JSON *artifact*: a :class:`RunArtifact` for one experiment
execution, a :class:`~repro.artifacts.trajectory.Trajectory` for a whole
benchmark session (the committed ``BENCH_*.json`` files).  This module owns
the schema versioning rules and the canonical encoding both share:

* **Deterministic serialization** — ``canonical_dumps`` sorts keys, uses
  fixed separators and ASCII escapes, and normalises numpy scalars/arrays and
  tuples, so the same payload always produces the same bytes.  This is what
  makes "same seed ⇒ byte-identical artifact" a testable property.
* **Strict JSON** — non-finite floats are *not* emitted as the non-standard
  ``NaN``/``Infinity`` literals; they are encoded as ``{"$nonfinite": ...}``
  marker objects and decoded back to the original floats, so artifact files
  stay parseable by any JSON reader.
* **Schema versioning** — artifacts carry ``schema_version`` (``MAJOR.MINOR``).
  Readers accept any minor revision of the major they know and reject unknown
  majors loudly instead of misinterpreting fields.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactSchemaError",
    "RunArtifact",
    "canonical_dumps",
    "canonical_loads",
    "check_schema_version",
    "from_jsonable",
    "schema_major",
    "to_jsonable",
]

#: Current artifact schema version (``MAJOR.MINOR``).  Bump the minor for
#: additive changes (new optional fields); bump the major for anything a
#: version-1 reader would misread.
SCHEMA_VERSION = "1.0"

#: Marker key used to encode non-finite floats in strict JSON.
_NONFINITE = "$nonfinite"
#: Marker key used to escape payload dicts that would otherwise collide with
#: the ``$nonfinite`` / ``$escape`` markers themselves.
_ESCAPE = "$escape"
_MARKER_KEYS = frozenset({_NONFINITE, _ESCAPE})
_NONFINITE_ENCODING = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


class ArtifactSchemaError(ReproError):
    """A run artifact could not be parsed (bad schema version or payload)."""


def schema_major(version: str) -> int:
    """Return the major component of a ``MAJOR.MINOR`` schema version string."""
    head = str(version).split(".", 1)[0]
    try:
        return int(head)
    except ValueError as exc:
        raise ArtifactSchemaError(f"unparseable schema version {version!r}") from exc


def check_schema_version(version: str) -> str:
    """Validate *version* against the supported major; return it unchanged."""
    major = schema_major(version)
    supported = schema_major(SCHEMA_VERSION)
    if major != supported:
        raise ArtifactSchemaError(
            f"unsupported artifact schema version {version!r} "
            f"(this reader understands major {supported})"
        )
    return str(version)


def to_jsonable(value: Any) -> Any:
    """Normalise *value* into strict-JSON-compatible plain Python data.

    Tuples become lists, numpy scalars/arrays become Python scalars/lists,
    non-finite floats become ``{"$nonfinite": "nan"|"inf"|"-inf"}`` markers,
    dict keys are stringified, and anything unrecognised falls back to its
    ``repr`` (artifacts must always be writable; an exotic parameter object
    degrades to a readable string rather than an error).
    """
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {_NONFINITE: "nan"}
        if math.isinf(value):
            return {_NONFINITE: "inf" if value > 0 else "-inf"}
        return value
    # numpy scalars and arrays, without importing numpy here: both expose
    # ``item``/``tolist`` which return pure-Python equivalents.
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return to_jsonable(value.item())
    if hasattr(value, "tolist"):
        return to_jsonable(value.tolist())
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        encoded = {str(key): to_jsonable(item) for key, item in value.items()}
        if _MARKER_KEYS & encoded.keys():
            return {_ESCAPE: encoded}
        return encoded
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    return repr(value)


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable` marker objects back into Python floats/dicts."""
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    if isinstance(value, dict):
        if value.keys() == {_NONFINITE}:
            try:
                return _NONFINITE_ENCODING[value[_NONFINITE]]
            except (KeyError, TypeError) as exc:
                raise ArtifactSchemaError(
                    f"bad non-finite marker {value!r}"
                ) from exc
        if value.keys() == {_ESCAPE} and isinstance(value[_ESCAPE], dict):
            return {key: from_jsonable(item) for key, item in value[_ESCAPE].items()}
        return {key: from_jsonable(item) for key, item in value.items()}
    return value


def canonical_dumps(value: Any, *, indent: int | None = None) -> str:
    """Serialise *value* deterministically (sorted keys, fixed separators)."""
    separators = (",", ":") if indent is None else (",", ": ")
    return json.dumps(
        to_jsonable(value),
        sort_keys=True,
        separators=separators,
        indent=indent,
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_loads(text: str) -> Any:
    """Parse canonical JSON text, decoding non-finite markers."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactSchemaError(f"artifact is not valid JSON: {exc}") from exc
    return from_jsonable(raw)


@dataclasses.dataclass(frozen=True)
class RunArtifact:
    """One experiment execution, summarised for trajectory tracking.

    Attributes
    ----------
    experiment_id:
        Registry id of the experiment that produced this artifact.
    mode:
        ``"quick"`` (CI-sized) or ``"full"`` (paper-scale) parameterisation.
    params:
        The *complete* keyword arguments of the run — explicit overrides
        merged over the runner's signature defaults, so two artifacts with
        equal ``params`` describe the same workload.
    seeds:
        The subset of ``params`` that seeds randomness (every key containing
        ``"seed"``), surfaced separately because determinism claims hinge on
        them.
    timings:
        Per-phase wall-clock durations in seconds (at minimum ``{"run": t}``).
        Excluded from the canonical payload — timing is a measurement, not a
        result.
    metrics:
        The paper-comparable numbers of the run (see
        :mod:`repro.artifacts.metrics`).
    environment:
        Host fingerprint (see :mod:`repro.artifacts.environment`).  Also
        excluded from the canonical payload.
    schema_version:
        ``MAJOR.MINOR`` schema tag, checked on load.
    """

    experiment_id: str
    mode: str
    params: dict[str, Any]
    seeds: dict[str, Any]
    timings: dict[str, float]
    metrics: dict[str, Any]
    environment: dict[str, Any]
    schema_version: str = SCHEMA_VERSION

    #: Field subset that defines the *reproducible* payload: everything except
    #: host- and measurement-dependent data.
    CANONICAL_FIELDS = ("schema_version", "experiment_id", "mode", "params", "seeds", "metrics")

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-ready dict, tagged with ``kind`` for file-type dispatch."""
        return to_jsonable(
            {
                "kind": "run_artifact",
                "schema_version": self.schema_version,
                "experiment_id": self.experiment_id,
                "mode": self.mode,
                "params": self.params,
                "seeds": self.seeds,
                "timings": self.timings,
                "metrics": self.metrics,
                "environment": self.environment,
            }
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunArtifact":
        """Parse a dict produced by :meth:`to_dict`; reject unknown majors."""
        if not isinstance(data, dict):
            raise ArtifactSchemaError(f"run artifact must be an object, got {type(data).__name__}")
        kind = data.get("kind", "run_artifact")
        if kind != "run_artifact":
            raise ArtifactSchemaError(f"expected a run_artifact payload, got kind {kind!r}")
        version = check_schema_version(data.get("schema_version", ""))
        try:
            return cls(
                experiment_id=str(data["experiment_id"]),
                mode=str(data.get("mode", "quick")),
                params=dict(from_jsonable(data.get("params", {}))),
                seeds=dict(from_jsonable(data.get("seeds", {}))),
                timings=dict(from_jsonable(data.get("timings", {}))),
                metrics=dict(from_jsonable(data.get("metrics", {}))),
                environment=dict(from_jsonable(data.get("environment", {}))),
                schema_version=version,
            )
        except KeyError as exc:
            raise ArtifactSchemaError(f"run artifact missing required field {exc}") from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        """Deterministic JSON text (pretty-printed by default for diffable files)."""
        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        return cls.from_dict(canonical_loads(text))

    def canonical_payload(self) -> dict[str, Any]:
        """The reproducible subset: environment and timings stripped."""
        full = self.to_dict()
        return {key: full[key] for key in self.CANONICAL_FIELDS}

    def canonical_json(self) -> str:
        """Compact deterministic JSON of :meth:`canonical_payload`.

        Two runs of the same experiment with the same seeds must produce
        byte-identical canonical JSON; tests assert exactly this.
        """
        return canonical_dumps(self.canonical_payload())

    def write(self, path: "str | Path") -> Path:
        """Write the artifact to *path* (parent directories created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def read(cls, path: "str | Path") -> "RunArtifact":
        return cls.from_json(Path(path).read_text())
