"""Device calibration records.

The paper quotes the following ``ibm_brisbane`` medians (§IV-A), which are the
values that actually drive its two experiments (Fig. 2 and Fig. 3):

* identity-gate error ``2.41e-4`` and duration ``60 ns``;
* median ``T1 = 233.04 µs`` and ``T2 = 145.75 µs``;
* error per layered gate (EPLG) of 4.5 % for a 100-qubit chain.

Parameters the paper does not quote (single-qubit gate error, two-qubit gate
error and duration, readout error) are filled in with values typical of the
Eagle r3 generation and are clearly marked as assumptions; every figure
reproduced in :mod:`repro.experiments` depends only on the quoted numbers plus
the readout error, and the latter is exposed so sensitivity can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DeviceError

__all__ = [
    "QubitCalibration",
    "GateCalibration",
    "DeviceCalibration",
    "ibm_brisbane_calibration",
    "IBM_BRISBANE_T1",
    "IBM_BRISBANE_T2",
    "IBM_BRISBANE_ID_ERROR",
    "IBM_BRISBANE_ID_DURATION",
    "IBM_BRISBANE_EPLG_100",
]

#: Median relaxation time (seconds) quoted in the paper.
IBM_BRISBANE_T1 = 233.04e-6

#: Median dephasing time (seconds) quoted in the paper.
IBM_BRISBANE_T2 = 145.75e-6

#: Median identity-gate error probability quoted in the paper.
IBM_BRISBANE_ID_ERROR = 2.41e-4

#: Identity-gate duration (seconds) quoted in the paper.
IBM_BRISBANE_ID_DURATION = 60e-9

#: Error per layered gate for a 100-qubit chain quoted in the paper.
IBM_BRISBANE_EPLG_100 = 0.045

# Values not quoted in the paper; typical Eagle r3 medians (assumptions).
_ASSUMED_SX_ERROR = 2.4e-4
_ASSUMED_SX_DURATION = 60e-9
_ASSUMED_TWO_QUBIT_ERROR = 7.0e-3
_ASSUMED_TWO_QUBIT_DURATION = 660e-9
_ASSUMED_READOUT_ERROR = 1.3e-2
_ASSUMED_READOUT_DURATION = 1.2e-6


@dataclass(frozen=True)
class QubitCalibration:
    """Calibration of a single physical qubit."""

    t1: float
    t2: float
    readout_error: float = _ASSUMED_READOUT_ERROR
    readout_duration: float = _ASSUMED_READOUT_DURATION
    frequency: float = 5.0e9

    def __post_init__(self):
        if self.t1 <= 0 or self.t2 <= 0:
            raise DeviceError("T1 and T2 must be positive")
        if self.t2 > 2 * self.t1 + 1e-12:
            raise DeviceError(f"unphysical calibration: T2={self.t2} > 2*T1={2 * self.t1}")
        if not 0 <= self.readout_error <= 1:
            raise DeviceError("readout_error must lie in [0, 1]")


@dataclass(frozen=True)
class GateCalibration:
    """Calibration of one gate type (averaged over qubits)."""

    name: str
    error: float
    duration: float
    num_qubits: int = 1

    def __post_init__(self):
        if not 0 <= self.error <= 1:
            raise DeviceError(f"gate error must lie in [0, 1], got {self.error}")
        if self.duration < 0:
            raise DeviceError("gate duration must be non-negative")
        if self.num_qubits < 1:
            raise DeviceError("gates act on at least one qubit")


@dataclass
class DeviceCalibration:
    """Full calibration of a device: per-qubit records plus per-gate medians.

    ``qubit_defaults`` is used for any qubit without an explicit entry in
    ``qubits``, which lets small simulations avoid materialising 127 records.
    """

    qubit_defaults: QubitCalibration
    gates: dict[str, GateCalibration] = field(default_factory=dict)
    qubits: dict[int, QubitCalibration] = field(default_factory=dict)
    #: Mutation counter bumped by every ``add_gate``/``set_qubit`` call, so
    #: derived artefacts (the device's memoised noise model) can detect
    #: staleness without deep comparison.
    version: int = 0

    def qubit(self, index: int) -> QubitCalibration:
        """Calibration record for the given qubit (falls back to the default)."""
        return self.qubits.get(int(index), self.qubit_defaults)

    def gate(self, name: str) -> GateCalibration:
        """Calibration record for the given gate name."""
        key = name.lower()
        if key not in self.gates:
            raise DeviceError(f"no calibration for gate {name!r}")
        return self.gates[key]

    def has_gate(self, name: str) -> bool:
        """True if the calibration contains the given gate name."""
        return name.lower() in self.gates

    def add_gate(self, calibration: GateCalibration) -> "DeviceCalibration":
        """Add or replace a gate calibration record."""
        self.gates[calibration.name.lower()] = calibration
        self.version += 1
        return self

    def set_qubit(self, index: int, calibration: QubitCalibration) -> "DeviceCalibration":
        """Override the calibration of one qubit."""
        self.qubits[int(index)] = calibration
        self.version += 1
        return self

    def set_qubit_defaults(self, calibration: QubitCalibration) -> "DeviceCalibration":
        """Replace the fallback qubit record (aging support).

        Like every mutation, bumps ``version`` so memoised noise models
        invalidate — :class:`repro.network.dynamics.CalibrationAging` uses
        this to age a device in place.
        """
        self.qubit_defaults = calibration
        self.version += 1
        return self

    def eplg(self, chain_length: int = 100) -> float:
        """Error per layered gate over a chain of the given length.

        Derived from the two-qubit layer fidelity: a layer over an
        ``n``-qubit chain contains ``n - 1`` two-qubit gates, so the layer
        fidelity is ``(1 - e_2q)**(n-1)`` and
        ``EPLG = 1 - layer_fidelity**(1/(n-1)) ≈ e_2q``.  The value reported
        for the 100-qubit chain on ``ibm_brisbane`` (4.5 %) corresponds to the
        full-layer error ``1 - (1 - e_2q)**(n-1)`` being dominated by the
        worst edges; this helper reports the idealised homogeneous estimate.
        """
        if chain_length < 2:
            raise DeviceError("EPLG needs a chain of at least two qubits")
        two_qubit = self.gates.get("cx") or self.gates.get("ecr")
        if two_qubit is None:
            raise DeviceError("calibration has no two-qubit gate entry")
        layer_fidelity = (1.0 - two_qubit.error) ** (chain_length - 1)
        return 1.0 - layer_fidelity ** (1.0 / (chain_length - 1))


def ibm_brisbane_calibration() -> DeviceCalibration:
    """Calibration matching the ``ibm_brisbane`` medians quoted in the paper.

    Gates not quoted in the paper carry typical Eagle r3 values and are
    documented as assumptions in the module docstring.
    """
    qubit_defaults = QubitCalibration(t1=IBM_BRISBANE_T1, t2=IBM_BRISBANE_T2)
    calibration = DeviceCalibration(qubit_defaults=qubit_defaults)
    single_qubit_gates = {
        "id": (IBM_BRISBANE_ID_ERROR, IBM_BRISBANE_ID_DURATION),
        "x": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
        "y": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
        "z": (0.0, 0.0),  # virtual-Z: implemented in software, error-free
        "h": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
        "s": (0.0, 0.0),
        "sdg": (0.0, 0.0),
        "t": (0.0, 0.0),
        "tdg": (0.0, 0.0),
        "rz": (0.0, 0.0),
        "rx": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
        "ry": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
        "p": (0.0, 0.0),
        "u3": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
        "unitary": (_ASSUMED_SX_ERROR, _ASSUMED_SX_DURATION),
    }
    for name, (error, duration) in single_qubit_gates.items():
        calibration.add_gate(GateCalibration(name, error, duration, num_qubits=1))
    for name in ("cx", "cz", "cy", "ch", "swap", "ecr"):
        calibration.add_gate(
            GateCalibration(
                name,
                _ASSUMED_TWO_QUBIT_ERROR,
                _ASSUMED_TWO_QUBIT_DURATION,
                num_qubits=2,
            )
        )
    return calibration
