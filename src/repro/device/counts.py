"""Measurement-count containers and distribution metrics.

:class:`Counts` is what :class:`~repro.device.backend.NoisyBackend` returns.
Besides histogram conveniences it implements the two metrics the paper's
evaluation uses:

* *accuracy* — the fraction of shots landing on the expected outcome (Fig. 3
  plots accuracy versus channel length);
* *fidelity to an ideal distribution* — the classical (Bhattacharyya/Hellinger)
  fidelity between the measured histogram and the ideal one (the paper quotes
  "average fidelity of message outcomes is at least 0.95" for Fig. 2).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.exceptions import DeviceError

__all__ = ["Counts"]


class Counts(Mapping):
    """An immutable histogram of measurement outcomes.

    Keys are outcome bitstrings; values are non-negative integers.
    """

    def __init__(self, data: Mapping[str, int], shots: int | None = None):
        cleaned: dict[str, int] = {}
        for key, value in dict(data).items():
            count = int(value)
            if count < 0:
                raise DeviceError(f"negative count for outcome {key!r}")
            if count:
                cleaned[str(key)] = count
        self._data = cleaned
        self._shots = int(shots) if shots is not None else sum(cleaned.values())
        if self._shots < sum(cleaned.values()):
            raise DeviceError("shots cannot be smaller than the sum of counts")

    # -- Mapping interface --------------------------------------------------------
    def __getitem__(self, key: str) -> int:
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str, default: int = 0) -> int:
        return self._data.get(key, default)

    # -- basic statistics ------------------------------------------------------------
    @property
    def shots(self) -> int:
        """Total number of shots (includes shots that produced no recorded outcome)."""
        return self._shots

    def total(self) -> int:
        """Sum of all recorded counts."""
        return sum(self._data.values())

    def probabilities(self) -> dict[str, float]:
        """Counts normalised by the number of shots."""
        if self._shots == 0:
            return {}
        return {key: value / self._shots for key, value in self._data.items()}

    def most_frequent(self) -> str:
        """The outcome with the highest count.

        Ties break towards the lexicographically smallest outcome string
        (never by dict insertion order), matching
        :meth:`repro.quantum.simulator.SimulationResult.most_frequent` so the
        answer is identical across simulator backends and platforms.
        """
        if not self._data:
            raise DeviceError("counts are empty")
        return min(self._data.items(), key=lambda item: (-item[1], item[0]))[0]

    def outcome_probability(self, outcome: str) -> float:
        """Relative frequency of one outcome."""
        if self._shots == 0:
            return 0.0
        return self._data.get(outcome, 0) / self._shots

    # -- metrics used by the paper -------------------------------------------------------
    def accuracy(self, expected: str) -> float:
        """Fraction of shots that produced the expected outcome."""
        return self.outcome_probability(expected)

    def error_rate(self, expected: str) -> float:
        """Fraction of shots that produced anything other than the expected outcome."""
        return 1.0 - self.accuracy(expected)

    def fidelity(self, other: "Counts | Mapping[str, float]") -> float:
        """Classical fidelity ``(sum_x sqrt(p_x q_x))^2`` to another distribution.

        *other* may be another :class:`Counts` or an already-normalised
        probability mapping (e.g. the ideal simulation result).
        """
        own = self.probabilities()
        if isinstance(other, Counts):
            reference = other.probabilities()
        else:
            reference = {str(k): float(v) for k, v in dict(other).items()}
            total = sum(reference.values())
            if total <= 0:
                raise DeviceError("reference distribution has no weight")
            reference = {k: v / total for k, v in reference.items()}
        overlap = 0.0
        for key in set(own) | set(reference):
            overlap += math.sqrt(own.get(key, 0.0) * reference.get(key, 0.0))
        return overlap**2

    def hellinger_distance(self, other: "Counts | Mapping[str, float]") -> float:
        """Hellinger distance ``sqrt(1 - sqrt(F))`` to another distribution."""
        return math.sqrt(max(0.0, 1.0 - math.sqrt(self.fidelity(other))))

    def marginal(self, positions: list[int]) -> "Counts":
        """Marginalise the histogram onto the given bit positions (in order)."""
        merged: dict[str, int] = {}
        for key, value in self._data.items():
            try:
                reduced = "".join(key[p] for p in positions)
            except IndexError as exc:
                raise DeviceError(
                    f"position out of range for outcome {key!r}"
                ) from exc
            merged[reduced] = merged.get(reduced, 0) + value
        return Counts(merged, shots=self._shots)

    def merged_with(self, other: "Counts") -> "Counts":
        """Combine two histograms (e.g. repeated experiment batches)."""
        merged = dict(self._data)
        for key, value in other.items():
            merged[key] = merged.get(key, 0) + value
        return Counts(merged, shots=self._shots + other.shots)

    def __repr__(self) -> str:
        preview = dict(sorted(self._data.items(), key=lambda kv: -kv[1])[:4])
        return f"Counts(shots={self._shots}, top={preview})"
