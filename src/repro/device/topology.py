"""Qubit connectivity graphs.

``ibm_brisbane`` uses the 127-qubit heavy-hexagonal ("Eagle") layout: seven
rows of qubits connected in chains, with four bridge qubits between
consecutive rows.  :func:`heavy_hex_coupling_map` reconstructs that layout
(127 nodes, 144 edges, maximum degree 3); :func:`linear_coupling_map` provides
the simple chain used for EPLG-style layered-gate benchmarks.

Graphs are returned as :class:`networkx.Graph` instances so distance, path and
subgraph queries are available to higher layers.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import DeviceError

__all__ = [
    "heavy_hex_coupling_map",
    "linear_coupling_map",
    "coupling_distance",
    "coupling_path",
    "EAGLE_NUM_QUBITS",
]

#: Number of qubits of the IBM Eagle (r3) processor family, e.g. ``ibm_brisbane``.
EAGLE_NUM_QUBITS = 127

#: Number of full-length rows in the Eagle heavy-hex layout.
_NUM_ROWS = 7

#: Number of qubit columns in a full row.
_ROW_LENGTH = 15

#: Number of bridge qubits between two consecutive rows.
_BRIDGES_PER_GAP = 4


def heavy_hex_coupling_map() -> nx.Graph:
    """Build the 127-qubit Eagle heavy-hexagonal coupling map.

    Layout (matching the published ``ibm_washington``/``ibm_brisbane`` maps):

    * Row 0 holds qubits for columns 0–13, rows 1–5 hold columns 0–14, and
      row 6 holds columns 1–14, giving ``14 + 5*15 + 14 = 103`` row qubits.
    * Between rows *r* and *r+1* sit four bridge qubits.  For even *r* they
      attach at columns 0, 4, 8 and 12; for odd *r* at columns 2, 6, 10
      and 14.  ``6 * 4 = 24`` bridges bring the total to 127 qubits.
    * Qubits are numbered row by row, interleaving each row with the bridge
      group below it, which reproduces IBM's numbering scheme.

    Returns a graph whose nodes carry a ``"kind"`` attribute (``"row"`` or
    ``"bridge"``) and ``"row"``/``"column"`` coordinates.
    """
    graph = nx.Graph(name="heavy_hex_127")
    next_index = 0
    row_qubits: list[dict[int, int]] = []

    for row in range(_NUM_ROWS):
        columns = _row_columns(row)
        mapping: dict[int, int] = {}
        for column in columns:
            graph.add_node(next_index, kind="row", row=row, column=column)
            mapping[column] = next_index
            next_index += 1
        # Chain the row qubits left to right.
        for left, right in zip(columns, columns[1:]):
            graph.add_edge(mapping[left], mapping[right])
        row_qubits.append(mapping)

        if row < _NUM_ROWS - 1:
            for bridge_slot in range(_BRIDGES_PER_GAP):
                column = _bridge_column(row, bridge_slot)
                graph.add_node(
                    next_index, kind="bridge", row=row + 0.5, column=column
                )
                next_index += 1

    # Second pass: connect bridges now that both adjacent rows exist.
    bridge_index = 0
    next_index = 0
    for row in range(_NUM_ROWS):
        next_index += len(_row_columns(row))
        if row >= _NUM_ROWS - 1:
            break
        for bridge_slot in range(_BRIDGES_PER_GAP):
            column = _bridge_column(row, bridge_slot)
            bridge = next_index
            upper = row_qubits[row].get(column)
            lower = row_qubits[row + 1].get(column)
            if upper is None or lower is None:
                raise DeviceError(
                    f"bridge at row {row} column {column} has no anchor qubit"
                )
            graph.add_edge(bridge, upper)
            graph.add_edge(bridge, lower)
            next_index += 1
            bridge_index += 1

    if graph.number_of_nodes() != EAGLE_NUM_QUBITS:
        raise DeviceError(
            f"heavy-hex construction produced {graph.number_of_nodes()} qubits, "
            f"expected {EAGLE_NUM_QUBITS}"
        )
    return graph


def _row_columns(row: int) -> list[int]:
    """Columns populated in the given row of the Eagle layout."""
    if row == 0:
        return list(range(0, _ROW_LENGTH - 1))
    if row == _NUM_ROWS - 1:
        return list(range(1, _ROW_LENGTH))
    return list(range(0, _ROW_LENGTH))


def _bridge_column(row: int, bridge_slot: int) -> int:
    """Column at which the given bridge below *row* attaches."""
    offset = 0 if row % 2 == 0 else 2
    return offset + 4 * bridge_slot


def linear_coupling_map(num_qubits: int) -> nx.Graph:
    """A simple 1-D chain of *num_qubits* qubits (used for EPLG-style chains)."""
    if num_qubits < 1:
        raise DeviceError("a coupling map needs at least one qubit")
    graph = nx.Graph(name=f"linear_{num_qubits}")
    graph.add_nodes_from(range(num_qubits), kind="row")
    graph.add_edges_from((i, i + 1) for i in range(num_qubits - 1))
    return graph


def coupling_distance(graph: nx.Graph, qubit_a: int, qubit_b: int) -> int:
    """Number of coupling-map edges on the shortest path between two qubits."""
    try:
        return int(nx.shortest_path_length(graph, qubit_a, qubit_b))
    except (nx.NodeNotFound, nx.NetworkXNoPath) as exc:
        raise DeviceError(str(exc)) from exc


def coupling_path(graph: nx.Graph, qubit_a: int, qubit_b: int) -> list[int]:
    """Shortest path (list of qubits) between two qubits on the coupling map."""
    try:
        return [int(q) for q in nx.shortest_path(graph, qubit_a, qubit_b)]
    except (nx.NodeNotFound, nx.NetworkXNoPath) as exc:
        raise DeviceError(str(exc)) from exc
