"""Noisy backend: executes circuits under a device model's noise.

:class:`NoisyBackend` is the library's analogue of submitting a circuit to
``ibm_brisbane`` through Qiskit: it validates the circuit against the device,
derives the noise model once, runs a simulator and returns a
:class:`~repro.device.counts.Counts` histogram.  An ideal device model yields
an exact (but still sampled) execution, which is what the paper calls the
"ideal simulation".

Backend selection: the ``simulator_backend`` knob (``"auto"``, ``"dense"``,
``"stabilizer"``, ``"stabilizer_batched"``) is resolved per circuit batch by
:func:`repro.quantum.dispatch.select_backend`.  ``auto`` routes
Clifford-only circuits whose applicable noise is Pauli-diagonal to the
:class:`~repro.quantum.stabilizer.StabilizerSimulator` — same counts
contract, polynomial cost — and everything else (including the default
``ibm_brisbane`` model, whose thermal relaxation is not a Pauli channel) to
the dense density-matrix path.  Whole-batch submissions
(:meth:`NoisyBackend.run_batch`) on that same eligible class resolve to the
vectorized :class:`~repro.quantum.tableau_batch.BatchedStabilizerSimulator`,
which amortises per-circuit work across the batch while keeping counts
bit-identical.  The resolved backend and the dispatch reason are recorded
in every :class:`BackendJob`'s metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from collections.abc import Sequence

from repro.device.counts import Counts
from repro.device.device_model import DeviceModel
from repro.exceptions import DeviceError
from repro.quantum.batch import PropagatorCache
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.dispatch import BACKEND_CHOICES, select_backend
from repro.quantum.simulator import DensityMatrixSimulator, SimulationResult
from repro.quantum.stabilizer import StabilizerSimulator
from repro.quantum.density import DensityMatrix
from repro.utils.rng import as_rng

__all__ = ["NoisyBackend", "BackendJob"]


@dataclass
class BackendJob:
    """Record of one backend execution (circuit, shots, result)."""

    circuit_name: str
    shots: int
    counts: Counts
    metadata: dict = field(default_factory=dict)


class NoisyBackend:
    """Execute circuits under a :class:`~repro.device.device_model.DeviceModel`.

    Parameters
    ----------
    device:
        The device model; defaults to the ``ibm_brisbane`` preset.
    seed:
        Seed or generator for all sampling performed by this backend.
    simulator_backend:
        ``"auto"`` (default: stabilizer fast path when provably exact —
        vectorized-batched on ``run_batch`` — dense otherwise), ``"dense"``
        (always the density-matrix simulator), ``"stabilizer"`` or
        ``"stabilizer_batched"`` (forced; raise on ineligible circuits).
    cache:
        Optional shared :class:`~repro.quantum.batch.PropagatorCache` for the
        dense simulator.  Sweeps that create one backend per point (for
        deterministic seeding) can pass a sweep-owned cache so points reuse
        each other's compiled step propagators; safe for serial execution
        only — the cache is not thread-safe.
    """

    def __init__(
        self,
        device: DeviceModel | None = None,
        seed=None,
        simulator_backend: str = "auto",
        cache: "PropagatorCache | None" = None,
    ):
        if simulator_backend not in BACKEND_CHOICES:
            raise DeviceError(
                f"unknown simulator backend {simulator_backend!r}; "
                f"choose from {BACKEND_CHOICES}"
            )
        self.device = device or DeviceModel.ibm_brisbane()
        self._rng = as_rng(seed)
        self.simulator_backend = simulator_backend
        self._noise_model = self.device.noise_model()
        # The one normalisation rule every consumer (dense simulator,
        # stabilizer simulator, dispatch analysis) shares: an ideal model is
        # represented as "no noise model".
        self._effective_noise = (
            None if self._noise_model.is_ideal() else self._noise_model
        )
        self._simulator = DensityMatrixSimulator(
            noise_model=self._effective_noise,
            seed=self._rng,
            cache=cache,
        )
        self._stabilizer: StabilizerSimulator | None = None
        self._batched_stabilizer = None
        self.jobs: list[BackendJob] = []

    def _stabilizer_simulator(self) -> StabilizerSimulator:
        if self._stabilizer is None:
            self._stabilizer = StabilizerSimulator(
                noise_model=self._effective_noise, seed=self._rng
            )
        return self._stabilizer

    def _batched_stabilizer_simulator(self):
        if self._batched_stabilizer is None:
            from repro.quantum.tableau_batch import BatchedStabilizerSimulator

            # Wraps (and shares the analytic-distribution cache of) the
            # serial stabilizer engine, so serial and batched submissions
            # reuse each other's resolved circuit structures.
            self._batched_stabilizer = BatchedStabilizerSimulator(
                serial=self._stabilizer_simulator(), seed=self._rng
            )
        return self._batched_stabilizer

    def _dispatch(
        self,
        circuits: "QuantumCircuit | Sequence[QuantumCircuit]",
        batch: bool = False,
    ):
        return select_backend(
            self.simulator_backend, circuits, self._effective_noise, batch=batch
        )

    # -- queries -----------------------------------------------------------------
    @property
    def name(self) -> str:
        """Backend name (the device name)."""
        return self.device.name

    @property
    def noise_model(self):
        """The derived noise model (read-only)."""
        return self._noise_model

    def is_noisy(self) -> bool:
        """True if executions apply any gate or readout noise."""
        return not self._noise_model.is_ideal()

    # -- execution -----------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> Counts:
        """Execute *circuit* with *shots* repetitions and return the counts.

        The circuit routes through the backend resolved by the dispatch
        layer (see the class docstring); a fixed seed yields bit-identical
        counts whichever backend ``auto`` resolves to on noiseless Clifford
        circuits.
        """
        self._validate(circuit)
        decision = self._dispatch(circuit)
        if decision.backend == "stabilizer_batched":
            result = self._batched_stabilizer_simulator().run(
                circuit, shots=shots, rng=self._rng
            )
        elif decision.use_stabilizer:
            result = self._stabilizer_simulator().run(
                circuit, shots=shots, rng=self._rng
            )
        else:
            result = self._simulator.run(circuit, shots=shots, rng=self._rng)
        counts = Counts(result.counts, shots=shots)
        metadata = dict(result.metadata)
        metadata["backend"] = decision.backend
        metadata["dispatch_reason"] = decision.reason
        self.jobs.append(
            BackendJob(
                circuit_name=circuit.name,
                shots=shots,
                counts=counts,
                metadata=metadata,
            )
        )
        return counts

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: int = 1024
    ) -> list[Counts]:
        """Execute several circuits through the batched simulator path.

        Each circuit is compiled once into a cached propagator (see
        :mod:`repro.quantum.batch`) and sampled with a single multinomial
        draw, which is the fast path the experiment sweeps use.  One
        :class:`BackendJob` is recorded per circuit, exactly as with
        repeated :meth:`run` calls.

        Parameters
        ----------
        circuits:
            Circuits to execute, in order.
        shots:
            Shots sampled per circuit.

        Returns
        -------
        list of Counts
            One histogram per circuit, in submission order.
        """
        for circuit in circuits:
            self._validate(circuit)
        decision = self._dispatch(circuits, batch=True)
        if decision.backend == "stabilizer_batched":
            batch = self._batched_stabilizer_simulator().run_batch(
                circuits, shots=shots, rng=self._rng
            )
        elif decision.use_stabilizer:
            batch = self._stabilizer_simulator().run_batch(
                circuits, shots=shots, rng=self._rng
            )
        else:
            batch = self._simulator.run_batch(circuits, shots=shots, rng=self._rng)
        histograms: list[Counts] = []
        for circuit, result in zip(circuits, batch):
            counts = Counts(result.counts, shots=shots)
            metadata = dict(result.metadata)
            metadata["backend"] = decision.backend
            metadata["dispatch_reason"] = decision.reason
            self.jobs.append(
                BackendJob(
                    circuit_name=circuit.name,
                    shots=shots,
                    counts=counts,
                    metadata=metadata,
                )
            )
            histograms.append(counts)
        return histograms

    def run_result(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute *circuit* and return the full simulator result (incl. the state).

        Always runs the dense density-matrix simulator: callers of this
        method want the final state, which the stabilizer backend does not
        materialise.
        """
        self._validate(circuit)
        return self._simulator.run(circuit, shots=shots, rng=self._rng)

    def final_density_matrix(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Final mixed state of *circuit* under the device noise (no sampling)."""
        self._validate(circuit)
        return self._simulator.final_density_matrix(circuit)

    def circuit_duration(self, circuit: QuantumCircuit) -> float:
        """Wall-clock duration of the circuit: sum of calibrated gate durations.

        The protocol circuits are sequential on each qubit (no parallel layers
        matter for the paper's figures), so the simple sum over instructions is
        the relevant quantity: ``η`` identity gates take ``η * 60 ns``.
        """
        total = 0.0
        for instruction in circuit.instructions:
            if instruction.kind == "gate":
                total += self.device.gate_duration(instruction.name) * instruction.repetitions
        return total

    # -- internals -------------------------------------------------------------------
    def _validate(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits > self.device.num_qubits:
            raise DeviceError(
                f"circuit needs {circuit.num_qubits} qubits but {self.device.name!r} "
                f"has only {self.device.num_qubits}"
            )

    def __repr__(self) -> str:
        return f"NoisyBackend(device={self.device.name!r}, noisy={self.is_noisy()})"
