"""Noisy backend: executes circuits under a device model's noise.

:class:`NoisyBackend` is the library's analogue of submitting a circuit to
``ibm_brisbane`` through Qiskit: it validates the circuit against the device,
derives the noise model once, runs the density-matrix simulator and returns a
:class:`~repro.device.counts.Counts` histogram.  An ideal device model yields
an exact (but still sampled) execution, which is what the paper calls the
"ideal simulation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from collections.abc import Sequence

from repro.device.counts import Counts
from repro.device.device_model import DeviceModel
from repro.exceptions import DeviceError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import DensityMatrixSimulator, SimulationResult
from repro.quantum.density import DensityMatrix
from repro.utils.rng import as_rng

__all__ = ["NoisyBackend", "BackendJob"]


@dataclass
class BackendJob:
    """Record of one backend execution (circuit, shots, result)."""

    circuit_name: str
    shots: int
    counts: Counts
    metadata: dict = field(default_factory=dict)


class NoisyBackend:
    """Execute circuits under a :class:`~repro.device.device_model.DeviceModel`.

    Parameters
    ----------
    device:
        The device model; defaults to the ``ibm_brisbane`` preset.
    seed:
        Seed or generator for all sampling performed by this backend.
    """

    def __init__(self, device: DeviceModel | None = None, seed=None):
        self.device = device or DeviceModel.ibm_brisbane()
        self._rng = as_rng(seed)
        self._noise_model = self.device.noise_model()
        self._simulator = DensityMatrixSimulator(
            noise_model=None if self._noise_model.is_ideal() else self._noise_model,
            seed=self._rng,
        )
        self.jobs: list[BackendJob] = []

    # -- queries -----------------------------------------------------------------
    @property
    def name(self) -> str:
        """Backend name (the device name)."""
        return self.device.name

    @property
    def noise_model(self):
        """The derived noise model (read-only)."""
        return self._noise_model

    def is_noisy(self) -> bool:
        """True if executions apply any gate or readout noise."""
        return not self._noise_model.is_ideal()

    # -- execution -----------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> Counts:
        """Execute *circuit* with *shots* repetitions and return the counts."""
        self._validate(circuit)
        result = self._simulator.run(circuit, shots=shots, rng=self._rng)
        counts = Counts(result.counts, shots=shots)
        self.jobs.append(
            BackendJob(
                circuit_name=circuit.name,
                shots=shots,
                counts=counts,
                metadata=dict(result.metadata),
            )
        )
        return counts

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: int = 1024
    ) -> list[Counts]:
        """Execute several circuits through the batched simulator path.

        Each circuit is compiled once into a cached propagator (see
        :mod:`repro.quantum.batch`) and sampled with a single multinomial
        draw, which is the fast path the experiment sweeps use.  One
        :class:`BackendJob` is recorded per circuit, exactly as with
        repeated :meth:`run` calls.

        Parameters
        ----------
        circuits:
            Circuits to execute, in order.
        shots:
            Shots sampled per circuit.

        Returns
        -------
        list of Counts
            One histogram per circuit, in submission order.
        """
        for circuit in circuits:
            self._validate(circuit)
        batch = self._simulator.run_batch(circuits, shots=shots, rng=self._rng)
        histograms: list[Counts] = []
        for circuit, result in zip(circuits, batch):
            counts = Counts(result.counts, shots=shots)
            self.jobs.append(
                BackendJob(
                    circuit_name=circuit.name,
                    shots=shots,
                    counts=counts,
                    metadata=dict(result.metadata),
                )
            )
            histograms.append(counts)
        return histograms

    def run_result(self, circuit: QuantumCircuit, shots: int = 1024) -> SimulationResult:
        """Execute *circuit* and return the full simulator result (incl. the state)."""
        self._validate(circuit)
        return self._simulator.run(circuit, shots=shots, rng=self._rng)

    def final_density_matrix(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Final mixed state of *circuit* under the device noise (no sampling)."""
        self._validate(circuit)
        return self._simulator.final_density_matrix(circuit)

    def circuit_duration(self, circuit: QuantumCircuit) -> float:
        """Wall-clock duration of the circuit: sum of calibrated gate durations.

        The protocol circuits are sequential on each qubit (no parallel layers
        matter for the paper's figures), so the simple sum over instructions is
        the relevant quantity: ``η`` identity gates take ``η * 60 ns``.
        """
        total = 0.0
        for instruction in circuit.instructions:
            if instruction.kind == "gate":
                total += self.device.gate_duration(instruction.name)
        return total

    # -- internals -------------------------------------------------------------------
    def _validate(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits > self.device.num_qubits:
            raise DeviceError(
                f"circuit needs {circuit.num_qubits} qubits but {self.device.name!r} "
                f"has only {self.device.num_qubits}"
            )

    def __repr__(self) -> str:
        return f"NoisyBackend(device={self.device.name!r}, noisy={self.is_noisy()})"
