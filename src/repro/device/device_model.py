"""Device models: topology + calibration → executable noise model.

:class:`DeviceModel` is the bridge between the static calibration data and the
simulators: it owns the coupling map and calibration and derives the
:class:`~repro.quantum.noise_model.NoiseModel` (per-gate depolarizing error,
thermal relaxation over the gate duration, and readout error) that
:class:`~repro.device.backend.NoisyBackend` feeds to the density-matrix
simulator.

Two presets cover the paper's needs: :meth:`DeviceModel.ibm_brisbane` for the
noisy-hardware emulation and :meth:`DeviceModel.ideal` for the noise-free
reference ("ideal simulation") the figures are compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.device.calibration import (
    DeviceCalibration,
    QubitCalibration,
    ibm_brisbane_calibration,
)
from repro.device.topology import (
    EAGLE_NUM_QUBITS,
    heavy_hex_coupling_map,
    linear_coupling_map,
)
from repro.exceptions import DeviceError
from repro.quantum.channels import depolarizing_channel, thermal_relaxation_channel
from repro.quantum.noise_model import NoiseModel, ReadoutError

__all__ = ["DeviceModel"]


@dataclass
class DeviceModel:
    """A NISQ device: name, size, connectivity and calibration.

    Parameters
    ----------
    name:
        Human-readable device name (appears in result metadata).
    num_qubits:
        Number of physical qubits.
    coupling_map:
        Connectivity graph; ``None`` means all-to-all (used by the ideal
        preset and by small logical simulations).
    calibration:
        :class:`~repro.device.calibration.DeviceCalibration`; ``None`` means a
        perfectly calibrated (noise-free) device.
    include_thermal_relaxation:
        If True (default), every gate with a nonzero duration also applies
        T1/T2 relaxation in addition to its depolarizing error.  Exposed so
        the Fig. 3 ablation can separate the two contributions.
    """

    name: str
    num_qubits: int
    coupling_map: nx.Graph | None = None
    calibration: DeviceCalibration | None = None
    include_thermal_relaxation: bool = True
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.num_qubits < 1:
            raise DeviceError("a device needs at least one qubit")
        if self.coupling_map is not None:
            if self.coupling_map.number_of_nodes() != self.num_qubits:
                raise DeviceError(
                    f"coupling map has {self.coupling_map.number_of_nodes()} nodes "
                    f"but the device declares {self.num_qubits} qubits"
                )

    # -- presets -----------------------------------------------------------------
    @classmethod
    def ibm_brisbane(cls, include_thermal_relaxation: bool = True) -> "DeviceModel":
        """The 127-qubit Eagle r3 device used by the paper's evaluation."""
        return cls(
            name="ibm_brisbane",
            num_qubits=EAGLE_NUM_QUBITS,
            coupling_map=heavy_hex_coupling_map(),
            calibration=ibm_brisbane_calibration(),
            include_thermal_relaxation=include_thermal_relaxation,
            metadata={
                "processor": "Eagle r3",
                "basis_gates": ["id", "rz", "sx", "x", "ecr"],
                "eplg_100q": 0.045,
            },
        )

    @classmethod
    def ideal(cls, num_qubits: int = 2, name: str = "ideal") -> "DeviceModel":
        """A perfect device with all-to-all connectivity (the paper's ideal reference)."""
        return cls(name=name, num_qubits=num_qubits, coupling_map=None, calibration=None)

    @classmethod
    def linear_chain(
        cls,
        num_qubits: int,
        calibration: DeviceCalibration | None = None,
        name: str = "linear_chain",
    ) -> "DeviceModel":
        """A 1-D chain device (used for EPLG-style layered benchmarks)."""
        return cls(
            name=name,
            num_qubits=num_qubits,
            coupling_map=linear_coupling_map(num_qubits),
            calibration=calibration or ibm_brisbane_calibration(),
        )

    # -- queries -------------------------------------------------------------------
    def is_ideal(self) -> bool:
        """True if the device carries no calibration (and therefore no noise)."""
        return self.calibration is None

    def qubit_calibration(self, qubit: int) -> QubitCalibration:
        """Calibration of one qubit; raises for ideal devices."""
        if self.calibration is None:
            raise DeviceError(f"device {self.name!r} is ideal and has no calibration")
        return self.calibration.qubit(qubit)

    def supports_coupling(self, qubit_a: int, qubit_b: int) -> bool:
        """True if a two-qubit gate between the given qubits is directly available."""
        if self.coupling_map is None:
            return True
        return self.coupling_map.has_edge(qubit_a, qubit_b)

    def validate_qubits(self, qubits: list[int]) -> None:
        """Raise if any listed qubit does not exist on the device."""
        for qubit in qubits:
            if not 0 <= int(qubit) < self.num_qubits:
                raise DeviceError(
                    f"qubit {qubit} does not exist on {self.name!r} "
                    f"({self.num_qubits} qubits)"
                )

    # -- noise model ---------------------------------------------------------------------
    def noise_model(self) -> NoiseModel:
        """Derive the executable noise model from the calibration.

        Each calibrated gate receives a depolarizing channel with the
        calibrated error probability; gates with nonzero duration additionally
        receive thermal relaxation over that duration (if enabled).  Readout
        errors are attached symmetrically with the calibrated probability.

        The derived model is memoised per calibration version: every backend
        built for the same (unchanged) device shares one
        :class:`~repro.quantum.noise_model.NoiseModel` instance, so its cache
        token is stable and compiled propagators can be reused across
        backends.  Mutating the calibration (``add_gate``/``set_qubit``)
        invalidates the memo.
        """
        # The memo pins the calibration *object* (identity, not equality) plus
        # its version counter: DeviceModel is mutable, so both in-place
        # mutation (version bump) and swapping in a different calibration
        # object must invalidate.  Holding the reference keeps the object
        # alive, so an identity check can never alias a recycled id.
        memo = self.__dict__.get("_noise_model_memo")
        if (
            memo is not None
            and memo[0] is self.calibration
            and memo[1] == (None if self.calibration is None else self.calibration.version)
            and memo[2] == self.include_thermal_relaxation
        ):
            return memo[3]
        model = self._build_noise_model()
        self.__dict__["_noise_model_memo"] = (
            self.calibration,
            None if self.calibration is None else self.calibration.version,
            self.include_thermal_relaxation,
            model,
        )
        return model

    def _build_noise_model(self) -> NoiseModel:
        model = NoiseModel(name=f"{self.name}_noise")
        if self.calibration is None:
            return model

        qubit_cal = self.calibration.qubit_defaults
        for name, gate_cal in self.calibration.gates.items():
            if gate_cal.error > 0:
                model.add_all_qubit_error(
                    depolarizing_channel(gate_cal.error, num_qubits=1), name
                )
            if self.include_thermal_relaxation and gate_cal.duration > 0:
                model.add_all_qubit_error(
                    thermal_relaxation_channel(
                        qubit_cal.t1, qubit_cal.t2, gate_cal.duration
                    ),
                    name,
                )
        if qubit_cal.readout_error > 0:
            model.add_readout_error(ReadoutError.symmetric(qubit_cal.readout_error))
        for index, cal in self.calibration.qubits.items():
            model.add_readout_error(ReadoutError.symmetric(cal.readout_error), qubit=index)
        return model

    def gate_duration(self, gate_name: str) -> float:
        """Duration of a calibrated gate in seconds (0 for ideal devices)."""
        if self.calibration is None or not self.calibration.has_gate(gate_name):
            return 0.0
        return self.calibration.gate(gate_name).duration

    def gate_error(self, gate_name: str) -> float:
        """Error probability of a calibrated gate (0 for ideal devices)."""
        if self.calibration is None or not self.calibration.has_gate(gate_name):
            return 0.0
        return self.calibration.gate(gate_name).error

    def __repr__(self) -> str:
        kind = "ideal" if self.is_ideal() else "noisy"
        return f"DeviceModel(name={self.name!r}, num_qubits={self.num_qubits}, {kind})"
