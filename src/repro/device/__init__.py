"""NISQ device modelling: topology, calibration, noise and a noisy backend.

The paper's evaluation runs the UA-DI-QSDC protocol on IBM's ``ibm_brisbane``
(127-qubit Eagle r3) device.  This subpackage provides an offline stand-in:

* :mod:`repro.device.topology` — the heavy-hexagonal coupling map;
* :mod:`repro.device.calibration` — per-qubit/per-gate calibration records,
  with the medians quoted in the paper (§IV-A);
* :mod:`repro.device.device_model` — :class:`DeviceModel`, which derives a
  :class:`~repro.quantum.noise_model.NoiseModel` from the calibration;
* :mod:`repro.device.backend` — :class:`NoisyBackend`, which executes
  :class:`~repro.quantum.circuit.QuantumCircuit` objects under that noise;
* :mod:`repro.device.counts` — :class:`Counts`, a result histogram with the
  fidelity/accuracy metrics used by the paper's figures.
"""

from repro.device.backend import NoisyBackend
from repro.device.calibration import (
    DeviceCalibration,
    GateCalibration,
    QubitCalibration,
    ibm_brisbane_calibration,
)
from repro.device.counts import Counts
from repro.device.device_model import DeviceModel
from repro.device.topology import heavy_hex_coupling_map, linear_coupling_map

__all__ = [
    "NoisyBackend",
    "DeviceCalibration",
    "GateCalibration",
    "QubitCalibration",
    "ibm_brisbane_calibration",
    "Counts",
    "DeviceModel",
    "heavy_hex_coupling_map",
    "linear_coupling_map",
]
