"""``python -m repro.telemetry`` — inspect, convert and compare trace files.

Subcommands
-----------
``summarize TRACE``
    Print the span tree and metrics tables of a native trace file.
``export TRACE --format chrome|folded|summary [-o OUT]``
    Convert a native trace to Chrome trace-event JSON (Perfetto /
    ``chrome://tracing``), folded flamegraph stacks, or the plain summary.
``diff BEFORE AFTER``
    Compare two traces: per-span-name count/duration changes and counter
    deltas.

Exit codes: 0 on success, 1 for a malformed trace file, 2 for a missing
file or bad usage (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import TelemetryError
from repro.telemetry.export import (
    TraceDocument,
    diff_documents,
    summarize,
    to_chrome_trace,
    to_folded_stacks,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect, convert and compare repro telemetry trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="print span tree + metrics of a trace")
    p_sum.add_argument("trace", help="path to a native trace JSON file")
    p_sum.add_argument(
        "--max-depth", type=int, default=None, help="limit span tree depth"
    )

    p_exp = sub.add_parser("export", help="convert a trace to another format")
    p_exp.add_argument("trace", help="path to a native trace JSON file")
    p_exp.add_argument(
        "--format",
        choices=("chrome", "folded", "summary"),
        default="chrome",
        help="output format (default: chrome trace-event JSON)",
    )
    p_exp.add_argument(
        "-o", "--output", default=None, help="output file (default: stdout)"
    )

    p_diff = sub.add_parser("diff", help="compare two traces")
    p_diff.add_argument("before", help="baseline trace JSON file")
    p_diff.add_argument("after", help="comparison trace JSON file")

    return parser


def _load(path: str) -> TraceDocument:
    file = Path(path)
    if not file.is_file():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        raise SystemExit(2)
    try:
        return TraceDocument.loads(file.read_text(encoding="utf-8"))
    except TelemetryError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(1)


def _emit(text: str, output: "str | None") -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n", encoding="utf-8")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "summarize":
        document = _load(args.trace)
        print(summarize(document, max_depth=args.max_depth))
        return 0

    if args.command == "export":
        document = _load(args.trace)
        if args.format == "chrome":
            from repro.artifacts.schema import canonical_dumps

            text = canonical_dumps(to_chrome_trace(document), indent=2)
        elif args.format == "folded":
            text = to_folded_stacks(document)
        else:
            text = summarize(document)
        _emit(text, args.output)
        return 0

    # diff
    before = _load(args.before)
    after = _load(args.after)
    print(diff_documents(before, after))
    return 0
