"""Entry point for ``python -m repro.telemetry``."""

from __future__ import annotations

import os
import sys

from repro.telemetry.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Summaries and exports are meant to be piped (head, grep, ...);
        # a closed pipe is a normal way for the consumer to stop reading.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
