"""Labelled metrics: counters, gauges and histograms with a cardinality guard.

The registry is Prometheus-shaped but in-process and snapshot-based: hot
paths call :meth:`MetricsRegistry.inc` / :meth:`observe` / :meth:`set_gauge`
with keyword labels, and a consumer takes one deterministic
:meth:`snapshot` at the end of a capture (the snapshot lands in trace
documents and, for ``--trace`` experiment runs, in the run artifact).

Label sets are bounded per metric (:attr:`MetricsRegistry.max_series`):
beyond the cap, new label combinations collapse into one ``__overflow__``
series and a drop counter increments, so an instrumentation mistake (e.g.
labelling by session id) degrades to an aggregate instead of unbounded
memory growth.  The guard is tested by the telemetry suite.

Histograms use base-2 exponential buckets keyed by the exponent
(``bucket b`` counts values in ``(2**(b-1), 2**b]``; zero and negative
values land in the ``"zero"`` bucket) plus exact count/sum/min/max — enough
to read latency shapes without configuring boundaries per metric.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = ["MetricsRegistry", "OVERFLOW_LABELS"]

#: Label set that absorbs series beyond the per-metric cardinality cap.
OVERFLOW_LABELS = (("__overflow__", "true"),)

_LabelKey = tuple


class _Histogram:
    """Mutable accumulator behind one histogram series."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: dict[str, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if value <= 0:
            bucket = "zero"
        else:
            bucket = str(math.ceil(math.log2(value)) if value > 1e-300 else 0)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "buckets": {key: self.buckets[key] for key in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Thread-safe registry of labelled counters, gauges and histograms.

    Parameters
    ----------
    max_series:
        Cardinality cap per (kind, metric name): the maximum number of
        distinct label sets recorded before new ones collapse into the
        ``__overflow__`` series.
    """

    def __init__(self, max_series: int = 128):
        if max_series < 1:
            raise ValueError("max_series must be positive")
        self.max_series = int(max_series)
        self.dropped_series = 0
        self._lock = threading.Lock()
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._histograms: dict[str, dict[_LabelKey, _Histogram]] = {}

    # -- internals ---------------------------------------------------------------
    def _series(self, store: dict, name: str, labels: dict[str, Any], factory):
        """Find-or-create one series, enforcing the cardinality cap."""
        key: _LabelKey = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        metric = store.get(name)
        if metric is None:
            metric = store[name] = {}
        series = metric.get(key)
        if series is None:
            if len(metric) >= self.max_series and key != OVERFLOW_LABELS:
                self.dropped_series += 1
                key = OVERFLOW_LABELS
                series = metric.get(key)
            if series is None:
                series = metric[key] = factory()
        return metric, key, series

    # -- recording ---------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add *value* to the counter series selected by *labels*."""
        with self._lock:
            metric, key, current = self._series(self._counters, name, labels, float)
            metric[key] = current + float(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge series selected by *labels* to *value* (last write wins)."""
        with self._lock:
            metric, key, _ = self._series(self._gauges, name, labels, float)
            metric[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the histogram series selected by *labels*."""
        with self._lock:
            _, _, series = self._series(self._histograms, name, labels, _Histogram)
            series.observe(float(value))

    # -- reading -----------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0.0 if never incremented)."""
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            return self._counters.get(name, {}).get(key, 0.0)

    def snapshot(self) -> dict[str, Any]:
        """Deterministic JSON-friendly dump of every series.

        Series are keyed by their label set rendered as ``k=v`` pairs joined
        with commas (empty label set renders as ``""``), sorted, so two
        identical workloads produce byte-identical snapshots.
        """

        def render(metric: dict) -> dict[str, Any]:
            out = {}
            for key in sorted(metric):
                label = ",".join(f"{k}={v}" for k, v in key)
                value = metric[key]
                out[label] = value.to_dict() if isinstance(value, _Histogram) else value
            return out

        with self._lock:
            return {
                "counters": {n: render(m) for n, m in sorted(self._counters.items())},
                "gauges": {n: render(m) for n, m in sorted(self._gauges.items())},
                "histograms": {
                    n: render(m) for n, m in sorted(self._histograms.items())
                },
                "dropped_series": self.dropped_series,
            }
