"""Structured telemetry: hierarchical tracing, metrics, and trace export.

The subsystem is zero-dependency (stdlib only) and off by default.  The
instrumented library calls the no-op-fast helpers in
:mod:`repro.telemetry.runtime`; enabling capture is one context manager::

    from repro import telemetry

    with telemetry.capture() as session:
        service.send(b"hello")
    print(session.document.dumps())

Trace files round-trip through :class:`~repro.telemetry.export.TraceDocument`
and are inspected with ``python -m repro.telemetry summarize|export|diff``.
Deterministic traces (for tests and trace diffing across code versions) use
the tick clock: ``telemetry.capture(clock="ticks")``.
"""

from repro.telemetry.clock import Clock, TickClock, WallClock, resolve_clock
from repro.telemetry.export import (
    TraceDocument,
    diff_documents,
    span_rollup,
    summarize,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import (
    TelemetrySession,
    active_session,
    capture,
    clock_mark,
    counter_inc,
    current_trace_id,
    enabled,
    event,
    gauge_set,
    observe,
    record_span,
    register_propagator_cache,
    span,
    start,
    stop,
)
from repro.telemetry.spans import ROOT_SPAN_ID, Span
from repro.telemetry.tracer import Tracer

__all__ = [
    "Clock",
    "WallClock",
    "TickClock",
    "resolve_clock",
    "Span",
    "ROOT_SPAN_ID",
    "Tracer",
    "MetricsRegistry",
    "TelemetrySession",
    "TraceDocument",
    "start",
    "stop",
    "capture",
    "enabled",
    "active_session",
    "span",
    "record_span",
    "event",
    "counter_inc",
    "gauge_set",
    "observe",
    "clock_mark",
    "current_trace_id",
    "register_propagator_cache",
    "to_chrome_trace",
    "to_folded_stacks",
    "summarize",
    "span_rollup",
    "diff_documents",
]
