"""Explicit clocks for the tracer: wall time for profiling, ticks for tests.

Every timestamp a telemetry session records comes from one injected
:class:`Clock` instance — the tracer never calls :func:`time.perf_counter`
directly.  That injection point is what makes traces *reproducible*: a
:class:`TickClock` advances by a fixed amount per observation, so two runs of
the same deterministic workload (same seeds, serial executor) produce
byte-identical trace documents, which the telemetry determinism tests pin.

:class:`WallClock` is the profiling default; its unit is seconds
(``perf_counter`` origin-shifted to the session start, so exported traces
begin at t≈0).
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "TickClock", "resolve_clock"]


class Clock:
    """Timestamp source contract: ``now()`` plus a unit tag for exporters.

    ``unit`` is ``"s"`` (seconds — Chrome export multiplies by 1e6 to get
    microseconds) or ``"ticks"`` (logical time — exported one tick per
    microsecond).
    """

    #: Exporter unit tag; subclasses override.
    unit = "s"
    #: Name used in trace documents and ``resolve_clock``.
    kind = "abstract"

    def now(self) -> float:  # pragma: no cover - interface only
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall time in seconds, origin-shifted to construction time."""

    unit = "s"
    kind = "wall"

    def __init__(self):
        self._origin = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._origin


class TickClock(Clock):
    """Deterministic logical clock: every observation advances by one tick.

    Durations measured with a tick clock count *clock observations*, not
    elapsed time — which is exactly the property the determinism tests need:
    a fixed workload observes the clock a fixed number of times in a fixed
    order (under the serial executor), so all timestamps are reproducible.
    """

    unit = "ticks"
    kind = "ticks"

    def __init__(self, resolution: float = 1.0):
        self._time = 0.0
        self.resolution = float(resolution)

    def now(self) -> float:
        current = self._time
        self._time += self.resolution
        return current


def resolve_clock(spec: "str | Clock | None") -> Clock:
    """Build a clock from a spec: ``"wall"`` (default), ``"ticks"`` or an instance."""
    if spec is None or spec == "wall":
        return WallClock()
    if spec == "ticks":
        return TickClock()
    if isinstance(spec, Clock):
        return spec
    raise ValueError(f"unknown clock spec {spec!r}; use 'wall', 'ticks' or a Clock")
