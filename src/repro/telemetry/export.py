"""Trace documents and exporters: native JSON, Chrome trace events, folded
stacks, plain-text summaries, and trace diffs.

A :class:`TraceDocument` is the unit of persistence: the span list (flat,
parent-linked), the metrics snapshot, and clock metadata, serialised through
the artifacts layer's canonical JSON (sorted keys, stable float formatting)
so a deterministic workload produces a byte-identical trace file.

Exporters re-tree the flat span list on demand:

* :func:`to_chrome_trace` — Chrome trace-event JSON (``ph: "X"`` complete
  events) loadable in Perfetto / ``chrome://tracing``; tick clocks export one
  tick per microsecond.
* :func:`to_folded_stacks` — ``root;child;leaf self_µs`` lines for
  ``flamegraph.pl``-style tooling, aggregated over identical stacks.
* :func:`summarize` — human-readable span tree with durations plus the
  metrics tables, for terminal inspection.
* :func:`diff_documents` — per-span-name count/total-duration comparison and
  counter deltas between two documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import TelemetryError
from repro.telemetry.spans import ROOT_SPAN_ID, Span

__all__ = [
    "TraceDocument",
    "to_chrome_trace",
    "to_folded_stacks",
    "summarize",
    "span_rollup",
    "diff_documents",
]

SCHEMA_VERSION = 1

#: Export scale: clock units → Chrome-trace microseconds.
_UNIT_TO_MICROSECONDS = {"s": 1e6, "ticks": 1.0}


@dataclass
class TraceDocument:
    """A finished capture: spans + metrics + clock metadata."""

    clock_kind: str
    clock_unit: str
    spans: list[Span]
    metrics: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "clock": {"kind": self.clock_kind, "unit": self.clock_unit},
            "spans": [span.to_dict() for span in self.spans],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceDocument":
        if not isinstance(data, dict) or "spans" not in data:
            raise TelemetryError("not a trace document: missing 'spans'")
        clock = data.get("clock", {})
        return cls(
            clock_kind=str(clock.get("kind", "wall")),
            clock_unit=str(clock.get("unit", "s")),
            spans=[Span.from_dict(item) for item in data["spans"]],
            metrics=dict(data.get("metrics", {})),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    def dumps(self, *, indent: "int | None" = 2) -> str:
        from repro.artifacts.schema import canonical_dumps

        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def loads(cls, text: str) -> "TraceDocument":
        from repro.artifacts.schema import ArtifactSchemaError, canonical_loads

        try:
            data = canonical_loads(text)
        except (ValueError, ArtifactSchemaError) as error:
            raise TelemetryError(f"invalid trace JSON: {error}") from error
        return cls.from_dict(data)

    def children_index(self) -> dict[int, list[Span]]:
        """Map span id → children, in document (commit) order."""
        index: dict[int, list[Span]] = {span.span_id: [] for span in self.spans}
        for span in self.spans:
            if span.parent_id is not None:
                index.setdefault(span.parent_id, []).append(span)
        return index

    def root(self) -> Span:
        for span in self.spans:
            if span.parent_id is None:
                return span
        raise TelemetryError("trace document has no root span")


# -- Chrome trace events -------------------------------------------------------
def to_chrome_trace(document: TraceDocument) -> dict[str, Any]:
    """Render as a Chrome trace-event JSON object (``ph: "X"`` events)."""
    scale = _UNIT_TO_MICROSECONDS.get(document.clock_unit, 1e6)
    events = []
    for span in document.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * scale,
                "dur": span.duration * scale,
                "pid": 1,
                "tid": span.thread,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": document.clock_kind, "unit": document.clock_unit},
    }


# -- folded stacks -------------------------------------------------------------
def to_folded_stacks(document: TraceDocument) -> str:
    """Render as folded-stack lines (``a;b;c self_time``), one per stack.

    Self time is the span's duration minus its children's durations, in
    integer microseconds (ticks export 1:1); stacks repeat-aggregate so the
    output feeds flamegraph tooling directly.
    """
    scale = _UNIT_TO_MICROSECONDS.get(document.clock_unit, 1e6)
    children = document.children_index()
    totals: dict[str, float] = {}

    def walk(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.name}" if prefix else span.name
        child_time = sum(child.duration for child in children.get(span.span_id, []))
        self_time = max(0.0, span.duration - child_time) * scale
        totals[stack] = totals.get(stack, 0.0) + self_time
        for child in children.get(span.span_id, []):
            walk(child, stack)

    walk(document.root(), "")
    return "\n".join(f"{stack} {int(round(value))}" for stack, value in totals.items())


# -- plain-text summary --------------------------------------------------------
def span_rollup(document: TraceDocument) -> dict[str, Any]:
    """Aggregate spans by name: count and total/max duration (clock units).

    This is the compact shape attached to run artifacts — small, stable and
    diff-friendly, unlike the full span list.
    """
    rollup: dict[str, dict[str, float]] = {}
    for span in document.spans:
        entry = rollup.setdefault(span.name, {"count": 0, "total": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += span.duration
        entry["max"] = max(entry["max"], span.duration)
    return {name: rollup[name] for name in sorted(rollup)}


def _format_duration(value: float, unit: str) -> str:
    if unit == "ticks":
        return f"{value:.0f}t"
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.3f}ms"


def summarize(document: TraceDocument, *, max_depth: "int | None" = None) -> str:
    """Human-readable span tree plus metrics tables."""
    children = document.children_index()
    unit = document.clock_unit
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        attrs = ""
        if span.attributes:
            rendered = ", ".join(
                f"{key}={span.attributes[key]}" for key in sorted(span.attributes)
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"{indent}{span.name} ({_format_duration(span.duration, unit)}){attrs}"
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    lines.append(f"trace: clock={document.clock_kind} unit={unit} spans={len(document.spans)}")
    walk(document.root(), 0)

    metrics = document.metrics
    for kind in ("counters", "gauges"):
        table = metrics.get(kind, {})
        if table:
            lines.append("")
            lines.append(f"{kind}:")
            for name in sorted(table):
                for label, value in table[name].items():
                    suffix = f"{{{label}}}" if label else ""
                    lines.append(f"  {name}{suffix} = {value:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(histograms):
            for label, stats in histograms[name].items():
                suffix = f"{{{label}}}" if label else ""
                lines.append(
                    f"  {name}{suffix}: count={stats['count']} sum={stats['sum']:g}"
                    f" min={stats['min']} max={stats['max']}"
                )
    dropped = metrics.get("dropped_series", 0)
    if dropped:
        lines.append("")
        lines.append(f"dropped_series: {dropped}")
    return "\n".join(lines)


# -- diff ----------------------------------------------------------------------
def diff_documents(before: TraceDocument, after: TraceDocument) -> str:
    """Compare two documents: span-name rollups and counter deltas."""
    unit = after.clock_unit
    lines = []
    rollup_a, rollup_b = span_rollup(before), span_rollup(after)
    names = sorted(set(rollup_a) | set(rollup_b))
    lines.append("spans (count, total):")
    for name in names:
        a = rollup_a.get(name, {"count": 0, "total": 0.0})
        b = rollup_b.get(name, {"count": 0, "total": 0.0})
        d_count = int(b["count"] - a["count"])
        d_total = b["total"] - a["total"]
        marker = "=" if d_count == 0 and abs(d_total) < 1e-12 else "~"
        lines.append(
            f"  {marker} {name}: count {int(a['count'])} -> {int(b['count'])}"
            f" ({d_count:+d}), total {_format_duration(a['total'], unit)}"
            f" -> {_format_duration(b['total'], unit)}"
        )

    def flat_counters(doc: TraceDocument) -> dict[str, float]:
        out = {}
        for name, table in doc.metrics.get("counters", {}).items():
            for label, value in table.items():
                out[f"{name}{{{label}}}" if label else name] = value
        return out

    counters_a, counters_b = flat_counters(before), flat_counters(after)
    keys = sorted(set(counters_a) | set(counters_b))
    if keys:
        lines.append("counters:")
        for key in keys:
            a, b = counters_a.get(key, 0.0), counters_b.get(key, 0.0)
            marker = "=" if a == b else "~"
            lines.append(f"  {marker} {key}: {a:g} -> {b:g} ({b - a:+g})")
    return "\n".join(lines)
