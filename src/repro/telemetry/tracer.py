"""The recording tracer: span lifecycle, parenting, thread mapping.

One :class:`Tracer` exists per telemetry session.  It hands out spans through
three entry points:

* :meth:`Tracer.span` — a context manager bracketing a code region;
* :meth:`Tracer.record` — an already-timed span (used by call sites that
  measured ``start`` themselves, e.g. the protocol transcript, whose phase
  boundaries are the *gaps between* ``record_phase`` calls);
* :meth:`Tracer.event` — a zero-duration marker.

Parenting uses a :class:`contextvars.ContextVar`: within one thread, spans
nest lexically.  Worker threads (the sweep substrate's thread pools) start
with an empty context, so their spans attach to the synthetic root span —
the trace stays one connected tree whatever executor runs the workload.
All tracer state is mutated under one lock; the clock is only read by the
thread owning the span, so a deterministic :class:`~repro.telemetry.clock.TickClock`
yields reproducible timestamps under the serial executor.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.clock import Clock
from repro.telemetry.spans import ROOT_SPAN_ID, Span

__all__ = ["Tracer"]

#: The innermost open span of the current execution context (per thread /
#: context); ``None`` means "attach to the root".
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_telemetry_current_span", default=None
)


class Tracer:
    """Span factory and collector for one telemetry session."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self._lock = threading.Lock()
        self._next_id = ROOT_SPAN_ID + 1
        self._threads: dict[int, int] = {}
        self._finished: list[Span] = []
        self.root = Span(
            span_id=ROOT_SPAN_ID,
            parent_id=None,
            name="trace",
            category="root",
            start=clock.now(),
            thread=self._thread_index(),
        )

    # -- internals ---------------------------------------------------------------
    def _thread_index(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            index = self._threads.get(ident)
            if index is None:
                index = len(self._threads)
                self._threads[ident] = index
            return index

    def _allocate(self, name: str, category: str, attributes: dict[str, Any]) -> Span:
        parent = _CURRENT_SPAN.get()
        parent_id = ROOT_SPAN_ID if parent is None else parent.span_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            thread=self._thread_index(),
            attributes=attributes,
        )

    def _commit(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- public API --------------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, category: str = "span", attributes: "dict[str, Any] | None" = None
    ) -> Iterator[Span]:
        """Open a child span of the current context; close it on exit.

        The yielded :class:`Span` is live — callers may add attributes while
        it is open.  The span is committed (appended to the finished list)
        when the block exits, including on exceptions, in which case an
        ``error`` attribute records the exception type.
        """
        span = self._allocate(name, category, dict(attributes or {}))
        token = _CURRENT_SPAN.set(span)
        span.start = self.clock.now()
        try:
            yield span
        except BaseException as error:
            span.attributes.setdefault("error", type(error).__name__)
            raise
        finally:
            span.end = self.clock.now()
            _CURRENT_SPAN.reset(token)
            self._commit(span)

    def record(
        self,
        name: str,
        category: str = "span",
        *,
        start: "float | None" = None,
        end: "float | None" = None,
        attributes: "dict[str, Any] | None" = None,
    ) -> Span:
        """Record an already-timed span as a child of the current context.

        ``start``/``end`` default to "now" (making the span an instant); a
        caller that held its own start mark passes it explicitly.
        """
        if end is None:
            end = self.clock.now()
        if start is None:
            start = end
        span = self._allocate(name, category, dict(attributes or {}))
        span.start = float(start)
        span.end = float(end)
        self._commit(span)
        return span

    def event(self, name: str, category: str = "event", **attributes: Any) -> Span:
        """Record a zero-duration marker at the current time."""
        return self.record(name, category, attributes=attributes)

    def current_span(self) -> "Span | None":
        """The innermost open span of this execution context (None = root)."""
        return _CURRENT_SPAN.get()

    def snapshot(self) -> list[Span]:
        """Copy of the committed spans so far (root excluded, still open)."""
        with self._lock:
            return list(self._finished)

    def finish(self) -> list[Span]:
        """Close the root span and return every span, root first.

        Finished spans keep commit order (which is deterministic under the
        serial executor); the root is prepended so ``spans[0]`` is always the
        trace envelope.
        """
        with self._lock:
            if self.root.end is None:
                self.root.end = self.clock.now()
            return [self.root, *self._finished]
