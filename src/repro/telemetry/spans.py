"""The span model: one timed, attributed node of a hierarchical trace.

A :class:`Span` is deliberately a plain mutable dataclass rather than an
object wired to the tracer: the tracer owns ids, parenting and clock reads,
and a finished span is pure data that serialises to one JSON object.  The
hierarchy is encoded by ``parent_id`` (the synthetic root span has id 0 and
parent ``None``), which keeps trace documents flat, streamable and easy to
re-tree in exporters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ROOT_SPAN_ID", "Span"]

#: Id of the synthetic root span every trace contains.
ROOT_SPAN_ID = 0


@dataclass
class Span:
    """One node of the span tree.

    Attributes
    ----------
    span_id:
        Dense per-trace id (0 is the synthetic root).
    parent_id:
        Id of the enclosing span (``None`` only on the root).  Spans started
        on worker threads with no active parent attach to the root, so a
        threaded execution pass still yields one connected tree.
    name:
        Dotted span name, e.g. ``"protocol.session"`` or ``"phase.encoding"``.
    category:
        Coarse grouping used by exporters (``"service"``, ``"protocol"``,
        ``"phase"``, ``"network"``, ``"sim"``, ...).
    start, end:
        Clock readings (unit defined by the session clock).  ``end`` is None
        while the span is open.
    thread:
        Dense index of the OS thread the span ran on (0 = first seen).
    attributes:
        JSON-friendly key/value payload (counts, seeds, outcomes, reasons).
    """

    span_id: int
    parent_id: "int | None"
    name: str
    category: str = "span"
    start: float = 0.0
    end: "float | None" = None
    thread: int = 0
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span duration in clock units (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready representation (see ``TraceDocument``)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Parse a dict produced by :meth:`to_dict`."""
        return cls(
            span_id=int(data["id"]),
            parent_id=None if data.get("parent") is None else int(data["parent"]),
            name=str(data["name"]),
            category=str(data.get("category", "span")),
            start=float(data.get("start", 0.0)),
            end=None if data.get("end") is None else float(data["end"]),
            thread=int(data.get("thread", 0)),
            attributes=dict(data.get("attributes", {})),
        )
