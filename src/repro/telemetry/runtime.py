"""Process-wide telemetry switchboard: the only API instrumented code calls.

Instrumentation sites throughout the library (service, protocol, network,
quantum) never talk to :class:`~repro.telemetry.tracer.Tracer` or
:class:`~repro.telemetry.metrics.MetricsRegistry` directly — they call the
module-level helpers here (:func:`span`, :func:`counter_inc`,
:func:`gauge_set`, :func:`observe`, :func:`record_span`, :func:`clock_mark`).
When no session is active (the default), every helper reduces to one
``is None`` check and returns a shared no-op object, which is what keeps
disabled-mode overhead far below the 2% budget the overhead benchmark pins.

A session is activated with :func:`start`/:func:`stop` or the
:func:`capture` context manager; :func:`stop` returns a
:class:`~repro.telemetry.export.TraceDocument` bundling the span tree, the
metrics snapshot, and clock metadata.

:class:`~repro.quantum.batch.PropagatorCache` instances self-register here
(via a ``WeakSet``) at construction; their counters are folded into the
metrics snapshot at capture time rather than on every cache access, so the
cache hot path carries no telemetry cost even when tracing is on.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.clock import Clock, resolve_clock
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span
from repro.telemetry.tracer import Tracer

__all__ = [
    "TelemetrySession",
    "start",
    "stop",
    "capture",
    "enabled",
    "active_session",
    "span",
    "record_span",
    "event",
    "counter_inc",
    "gauge_set",
    "observe",
    "clock_mark",
    "current_trace_id",
    "register_propagator_cache",
]


class _NullSpan:
    """Shared inert stand-in yielded by :func:`span` while telemetry is off."""

    __slots__ = ()
    span_id = -1

    @property
    def attributes(self) -> dict[str, Any]:
        # A fresh throwaway dict per access: writes are silently discarded
        # instead of accumulating on shared state.
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

# Caches register themselves even when telemetry is off (registration happens
# once per cache, not per access); an active session aggregates their counters
# into the snapshot.  WeakSet so telemetry never extends a cache's lifetime.
_propagator_caches: "weakref.WeakSet[Any]" = weakref.WeakSet()

_lock = threading.Lock()
_session: "TelemetrySession | None" = None


class TelemetrySession:
    """One capture window: a tracer, a metrics registry, and their clock."""

    def __init__(self, clock: "str | Clock | None" = None, max_series: int = 128):
        self.clock = resolve_clock(clock)
        self.tracer = Tracer(self.clock)
        self.metrics = MetricsRegistry(max_series=max_series)
        self._cache_baseline = self._cache_totals()

    @staticmethod
    def _cache_totals() -> dict[str, float]:
        totals = {"hits": 0.0, "misses": 0.0, "evictions": 0.0, "bytes_in_use": 0.0}
        for cache in list(_propagator_caches):
            totals["hits"] += getattr(cache, "hits", 0)
            totals["misses"] += getattr(cache, "misses", 0)
            totals["evictions"] += getattr(cache, "evictions", 0)
            totals["bytes_in_use"] += getattr(cache, "bytes_in_use", 0)
        return totals

    def _fold_cache_metrics(self) -> None:
        """Write propagator-cache counter deltas into the metrics registry.

        The baseline advances after each fold so mid-session snapshots (the
        artifact attachment) and the final :meth:`finish` never double-count.
        """
        totals = self._cache_totals()
        for key in ("hits", "misses", "evictions"):
            delta = totals[key] - self._cache_baseline[key]
            if delta:
                self.metrics.inc(f"propagator_cache.{key}", delta)
        self._cache_baseline = totals
        self.metrics.set_gauge("propagator_cache.bytes_in_use", totals["bytes_in_use"])

    def snapshot_document(self) -> "Any":
        """Mid-session trace document: committed spans + current metrics.

        Unlike :meth:`finish` this does not close the root span or end the
        session; the artifacts pipeline uses it to attach telemetry to a
        :class:`~repro.artifacts.schema.RunArtifact` while capture continues.
        """
        from repro.telemetry.export import TraceDocument

        self._fold_cache_metrics()
        return TraceDocument(
            clock_kind=self.clock.kind,
            clock_unit=self.clock.unit,
            spans=self.tracer.snapshot(),
            metrics=self.metrics.snapshot(),
        )

    def finish(self) -> "Any":
        """Close the trace and build the exportable document."""
        from repro.telemetry.export import TraceDocument

        self._fold_cache_metrics()
        spans = self.tracer.finish()
        return TraceDocument(
            clock_kind=self.clock.kind,
            clock_unit=self.clock.unit,
            spans=spans,
            metrics=self.metrics.snapshot(),
        )


# -- session lifecycle ---------------------------------------------------------
def start(clock: "str | Clock | None" = None, max_series: int = 128) -> TelemetrySession:
    """Activate a telemetry session (error if one is already active)."""
    global _session
    with _lock:
        if _session is not None:
            from repro.exceptions import TelemetryError

            raise TelemetryError("a telemetry session is already active")
        _session = TelemetrySession(clock, max_series=max_series)
        return _session


def stop() -> "Any":
    """Deactivate the session and return its :class:`TraceDocument`."""
    global _session
    with _lock:
        session = _session
        _session = None
    if session is None:
        from repro.exceptions import TelemetryError

        raise TelemetryError("no telemetry session is active")
    return session.finish()


@contextmanager
def capture(clock: "str | Clock | None" = None, max_series: int = 128) -> Iterator[TelemetrySession]:
    """Context manager form of :func:`start`/:func:`stop`.

    The session object gains a ``document`` attribute holding the finished
    :class:`TraceDocument` once the block exits.
    """
    session = start(clock, max_series=max_series)
    try:
        yield session
    finally:
        global _session
        with _lock:
            if _session is session:
                _session = None
        session.document = session.finish()


def enabled() -> bool:
    """True while a telemetry session is active."""
    return _session is not None


def active_session() -> "TelemetrySession | None":
    """The active session, or None."""
    return _session


# -- instrumentation fast path -------------------------------------------------
def span(name: str, category: str = "span", attributes: "dict[str, Any] | None" = None):
    """Context manager opening a span, or a shared no-op when disabled."""
    session = _session
    if session is None:
        return _NULL_SPAN
    return session.tracer.span(name, category, attributes)


def record_span(
    name: str,
    category: str = "span",
    *,
    start: "float | None" = None,
    end: "float | None" = None,
    attributes: "dict[str, Any] | None" = None,
) -> "Span | None":
    """Record an already-timed span; no-op (returns None) when disabled."""
    session = _session
    if session is None:
        return None
    return session.tracer.record(name, category, start=start, end=end, attributes=attributes)


def event(name: str, category: str = "event", **attributes: Any) -> "Span | None":
    """Record a zero-duration marker; no-op when disabled."""
    session = _session
    if session is None:
        return None
    return session.tracer.event(name, category, **attributes)


def counter_inc(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment a counter; no-op when disabled."""
    session = _session
    if session is not None:
        session.metrics.inc(name, value, **labels)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    """Set a gauge; no-op when disabled."""
    session = _session
    if session is not None:
        session.metrics.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation; no-op when disabled."""
    session = _session
    if session is not None:
        session.metrics.observe(name, value, **labels)


def clock_mark() -> "float | None":
    """Read the session clock (for caller-timed ``record_span``); None when off."""
    session = _session
    if session is None:
        return None
    return session.clock.now()


def current_trace_id() -> "int | None":
    """Id of the innermost open span of this context; None when disabled.

    Used by the logging layer to stamp ``%(trace_id)s`` onto log records so
    log lines correlate with exported spans.
    """
    session = _session
    if session is None:
        return None
    current = session.tracer.current_span()
    return session.tracer.root.span_id if current is None else current.span_id


def register_propagator_cache(cache: Any) -> None:
    """Register a PropagatorCache for snapshot-time counter aggregation."""
    _propagator_caches.add(cache)
