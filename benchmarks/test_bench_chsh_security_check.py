"""Bench ``sec-chsh``: the DI security check on honest noisy channels.

Paper artefact: §II (both security-check rounds) and the §IV requirement that
the sampled CHSH value satisfy ``S = 2√2 − ε > 2`` for the protocol to
proceed.  Regenerates the estimator-convergence table (mean S, spread and pass
rate versus the check-pair budget ``d``) and the analytic CHSH-versus-η curve,
including the maximum channel length over which device independence can still
be certified.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import render_result, run_chsh_experiment
from repro.quantum.bell import TSIRELSON_BOUND


def test_bench_chsh_security_check(benchmark, record, capsys):
    result = run_once(
        benchmark,
        run_chsh_experiment,
        pair_budgets=(64, 128, 256, 512, 1024),
        repetitions=12,
        eta=10,
        eta_sweep=(0, 100, 200, 400, 700, 1000, 2000),
        seed=11,
    )

    with capsys.disabled():
        print()
        print(render_result(result))

    # Shape checks: the estimator converges to ~2√2 at η=10, its spread shrinks
    # as 1/sqrt(d), the pass rate approaches 1 with larger budgets, and the
    # analytic CHSH-vs-η curve decays monotonically through the classical bound.
    largest = result.convergence[-1]
    assert abs(largest.mean_value - TSIRELSON_BOUND) < 0.15
    assert largest.pass_rate == 1.0
    spreads = [point.empirical_standard_deviation for point in result.convergence]
    assert spreads[-1] < spreads[0]

    chsh_values = [value for _, value in result.chsh_vs_eta]
    assert all(a >= b for a, b in zip(chsh_values, chsh_values[1:]))
    assert result.max_di_channel_length is not None

    record(
        convergence=[
            {
                "d": point.num_pairs,
                "mean": point.mean_value,
                "std": point.empirical_standard_deviation,
                "pass_rate": point.pass_rate,
            }
            for point in result.convergence
        ],
        chsh_vs_eta=result.chsh_vs_eta,
        max_di_channel_length=result.max_di_channel_length,
    )
