"""Bench ``atk-leakage``: classical-channel information leakage (paper §III-E).

A passive eavesdropper records every public announcement of repeated protocol
sessions run with two different secret messages.  The bench reports the
total-variation distance between her view distributions (statistically
indistinguishable from 0 for the honest protocol) and verifies structurally
that message-pair measurement outcomes are never announced.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.attacks import ClassicalEavesdropper, run_leakage_experiment
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol


def _run():
    config = ProtocolConfig.default(
        message_length=16, identity_pairs=4, check_pairs_per_round=48, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    report = run_leakage_experiment(
        config,
        message_a="1011001110001111",
        message_b="0100110001110000",
        sessions_per_message=12,
        rng=77,
    )

    # One full session with the eavesdropper attached, to inspect her view.
    eve = ClassicalEavesdropper(rng=78)
    result = UADIQSDCProtocol(config.with_seed(123), attack=eve).run("1011001110001111")
    return report, eve, result


def test_bench_information_leakage(benchmark, record, capsys):
    report, eve, session_result = run_once(benchmark, _run)

    with capsys.disabled():
        print()
        print(
            "information leakage: between-message TV distance = "
            f"{report.total_variation_distance:.3f}, within-message null = "
            f"{report.within_message_tv_distance:.3f}, excess = "
            f"{report.excess_tv_distance:.3f} "
            f"(MI upper bound {report.mutual_information_upper_bound:.3f} bits)"
        )
        print(f"  topics Eve overheard: {eve.overheard_topics()}")

    # The passive listener does not disturb the protocol ...
    assert session_result.success
    # ... never hears message-pair outcomes ...
    assert not eve.heard_message_outcomes()
    assert not report.message_outcomes_announced
    # ... and her view does not distinguish the messages beyond the sampling null.
    assert report.excess_tv_distance <= 0.4
    assert report.mutual_information_upper_bound <= 0.4

    record(
        tv_distance=report.total_variation_distance,
        within_message_tv_distance=report.within_message_tv_distance,
        excess_tv_distance=report.excess_tv_distance,
        mi_upper_bound=report.mutual_information_upper_bound,
        overheard_topics=eve.overheard_topics(),
    )
