"""Bench ``atk-intercept``: intercept-and-resend detection (paper §III-B, §IV).

Eve measures every transmitted qubit in a fixed basis and resends it; the
entanglement collapses and the protocol catches her — either at identity
verification (the Bell outcomes she forwards are scrambled) or at the second
DI security check, whose CHSH value cannot exceed the classical bound of 2.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.attacks import InterceptResendAttack, evaluate_attack
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol.config import ProtocolConfig


def _run():
    # A generous authentication tolerance forces the runs through to the
    # second CHSH round so the bench reports the CHSH collapse the paper
    # describes; a second evaluation with normal tolerances shows the attack
    # is caught even earlier in the default configuration.
    permissive = ProtocolConfig.default(
        message_length=16, identity_pairs=12, check_pairs_per_round=96, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    permissive.authentication_tolerance = 0.95
    chsh_focused = evaluate_attack(
        permissive,
        lambda rng: InterceptResendAttack(rng=rng),
        "1011001110001111",
        trials=10,
        rng=5,
    )

    default_config = ProtocolConfig.default(
        message_length=16, identity_pairs=8, check_pairs_per_round=96, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    default_detection = evaluate_attack(
        default_config,
        lambda rng: InterceptResendAttack(theta=math.pi / 2, rng=rng),
        "1011001110001111",
        trials=10,
        rng=6,
    )
    return chsh_focused, default_detection


def test_bench_attack_intercept_resend(benchmark, record, capsys):
    chsh_focused, default_detection = run_once(benchmark, _run)

    with capsys.disabled():
        print()
        print(
            "intercept-resend (computational basis, permissive auth): "
            f"detection {chsh_focused.detection_rate:.2f}, "
            f"mean round-2 CHSH {chsh_focused.mean_chsh_round2:.3f} (classical bound 2)"
        )
        print(
            "intercept-resend (diagonal basis, default config):      "
            f"detection {default_detection.detection_rate:.2f}, abort reasons "
            f"{default_detection.abort_reasons}"
        )

    assert chsh_focused.detection_rate == 1.0
    assert default_detection.detection_rate == 1.0
    assert chsh_focused.messages_delivered == 0
    # Once the runs reach round 2, the CHSH estimate sits at or below the
    # classical bound (sampling noise margin included).
    assert chsh_focused.mean_chsh_round2 is not None
    assert chsh_focused.mean_chsh_round2 <= 2.0 + 0.3

    record(
        detection_rate=chsh_focused.detection_rate,
        mean_round2_chsh=chsh_focused.mean_chsh_round2,
        default_abort_reasons=default_detection.abort_reasons,
    )
