"""Bench ``network_scale``: sessions/second on a quick grid topology.

Starts the bench trajectory for network-scale performance: 50 concurrent
Poisson sessions on a 3×3 trusted-relay grid (a full UA-DI-QSDC session per
hop), scheduled deterministically and executed through the threaded worker
pool.  Records both the *simulated* throughput (sessions per simulated
second — the operator-facing metric) and the *wall-clock* session execution
rate (hop sessions simulated per real second — the engine-speed metric this
bench exists to track).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.experiments import render_result, run_network_scale
from repro.network.sessions import STATUS_REJECTED


def test_bench_network_throughput(benchmark, record, capsys):
    started = time.perf_counter()
    result = run_once(
        benchmark,
        run_network_scale,
        rows=3,
        cols=3,
        num_sessions=50,
        message_length=8,
        check_pairs=32,
        qubit_capacity=220,
        executor="thread",
        seed=7,
    )
    elapsed = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(render_result(result))

    # Shape: a 9-node grid carrying 50 sessions, none lost to bookkeeping.
    assert result.num_nodes == 9
    assert result.num_sessions == 50
    assert (
        result.delivered_count + result.aborted_count + result.rejected_count == 50
    )
    # The network must actually deliver traffic (small DI-check budgets make
    # statistical aborts common, but far from total).
    assert result.delivered_count >= 15
    assert result.mean_chsh is not None and result.mean_chsh > 2.0
    # CI-quick budget: the whole simulation stays under 10 s of wall clock.
    assert elapsed < 10.0

    hop_sessions = sum(len(r.hop_reports) for r in result.records)
    record(
        delivered=result.delivered_count,
        aborted=result.aborted_count,
        rejected=result.count(STATUS_REJECTED),
        simulated_throughput_sessions_per_s=result.throughput_sessions,
        simulated_throughput_bits_per_s=result.throughput_bits,
        hop_sessions_executed=hop_sessions,
        wall_clock_hop_sessions_per_s=hop_sessions / elapsed,
        mean_qber=result.mean_qber,
        mean_chsh=result.mean_chsh,
    )
