"""Bench ``fig2``: regenerate Fig. 2 (decoded-outcome histograms at η = 10).

Paper artefact: Fig. 2(a)–(d).  Runs the two-qubit emulation circuit for each
of the four 2-bit messages on the ``ibm_brisbane`` device model with 1024
shots and compares the histograms with the paper's (dominant outcome = the
encoded message, dominant-outcome probability ≈ 0.93–0.95).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import PAPER_FIG2_COUNTS, render_result, run_fig2


def test_bench_fig2_message_counts(benchmark, record, capsys):
    result = run_once(benchmark, run_fig2, eta=10, shots=1024, seed=2024)

    with capsys.disabled():
        print()
        print(render_result(result))
        print("  paper counts for reference:")
        for message, counts in PAPER_FIG2_COUNTS.items():
            print(f"    message {message}: {counts}")

    # Shape checks: every panel is dominated by the encoded message and the
    # dominant-outcome probability is in the paper's ballpark.
    for panel in result.panels:
        assert max(panel.counts, key=panel.counts.get) == panel.message
        paper_accuracy = PAPER_FIG2_COUNTS[panel.message][panel.message] / 1024
        assert abs(panel.accuracy - paper_accuracy) < 0.06

    assert result.average_fidelity > 0.9  # paper: ≥ 0.95 (their fidelity metric)

    record(
        average_fidelity=result.average_fidelity,
        minimum_accuracy=result.minimum_accuracy,
        counts={panel.message: panel.counts for panel in result.panels},
    )
