"""Ablation benches for the design choices called out in DESIGN.md §6.

Three ablations, each regenerating a small comparison series:

* **Channel noise composition** — Fig. 3 accuracy with depolarizing-only
  versus depolarizing + thermal relaxation per identity gate, showing that
  decoherence (not just gate error) drives the decay at long channel lengths.
* **DI-check sample size** — CHSH estimate spread and false-abort rate versus
  the number of check pairs ``d`` (the paper's "several hundred to a few
  thousand pairs" guidance).
* **Check-bit fraction** — probability that the integrity check catches a
  tampered message as a function of the number of check bits.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.chsh_analysis import chsh_vs_channel_length
from repro.analysis.statistics import chsh_standard_error
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol.chsh import DISecurityCheck
from repro.quantum.bell import BellState, bell_state
from repro.utils.bits import hamming_distance, random_bits
from repro.utils.rng import as_rng


def test_bench_ablation_channel_noise_composition(benchmark, record, capsys):
    """Depolarizing-only vs depolarizing + thermal relaxation channel models."""

    def run():
        etas = [10, 200, 700, 1500, 3000]
        with_relaxation = chsh_vs_channel_length(etas, include_thermal_relaxation=True)
        without_relaxation = chsh_vs_channel_length(etas, include_thermal_relaxation=False)
        return etas, with_relaxation, without_relaxation

    etas, with_relaxation, without_relaxation = run_once(benchmark, run)

    with capsys.disabled():
        print()
        print("Ablation — channel noise composition (analytic CHSH of |Φ+⟩):")
        print("  eta    depol+relaxation   depol only")
        for (eta, s_full), (_, s_depol) in zip(with_relaxation, without_relaxation):
            print(f"  {eta:>5d}      {s_full:.3f}            {s_depol:.3f}")

    full_values = dict(with_relaxation)
    depol_values = dict(without_relaxation)
    # Thermal relaxation is negligible at η=10 but dominates at η=3000.
    assert abs(full_values[10] - depol_values[10]) < 0.05
    assert depol_values[3000] - full_values[3000] > 0.5

    record(
        etas=etas,
        chsh_with_relaxation=with_relaxation,
        chsh_depolarizing_only=without_relaxation,
    )


def test_bench_ablation_di_check_sample_size(benchmark, record, capsys):
    """False-abort rate of the honest DI check versus the check-pair budget d."""

    def run():
        channel = IdentityChainChannel(eta=10)
        pair = channel.transmit(bell_state(BellState.PHI_PLUS).density_matrix(), 0)
        check = DISecurityCheck()
        generator = as_rng(17)
        rows = []
        for budget in (16, 32, 64, 128, 256, 512):
            values = [
                check.estimate([pair] * budget, rng=generator).value for _ in range(20)
            ]
            false_aborts = sum(1 for value in values if value <= 2.0) / len(values)
            rows.append(
                {
                    "d": budget,
                    "mean": float(np.mean(values)),
                    "std": float(np.std(values, ddof=1)),
                    "predicted_std": chsh_standard_error(budget),
                    "false_abort_rate": false_aborts,
                }
            )
        return rows

    rows = run_once(benchmark, run)

    with capsys.disabled():
        print()
        print("Ablation — DI-check sample size (honest η=10 channel, 20 repetitions):")
        print("  d      mean S   std    predicted std   false-abort rate")
        for row in rows:
            print(
                f"  {row['d']:<6d} {row['mean']:.3f}   {row['std']:.3f}      "
                f"{row['predicted_std']:.3f}          {row['false_abort_rate']:.2f}"
            )

    # The spread shrinks roughly as 1/sqrt(d) and false aborts disappear for
    # the budgets the paper recommends (several hundred pairs).
    assert rows[-1]["std"] < rows[0]["std"]
    assert rows[-1]["false_abort_rate"] == 0.0

    record(rows=rows)


def test_bench_ablation_check_bit_fraction(benchmark, record, capsys):
    """Probability that the check bits catch a tampered message vs their number."""

    def run():
        generator = as_rng(23)
        message_pairs = 32  # 64-bit combined string
        tamper_fraction = 0.25
        rows = []
        for num_check in (2, 4, 8, 16, 32):
            caught = 0
            trials = 200
            for _ in range(trials):
                combined_length = 2 * message_pairs
                check_positions = generator.choice(
                    combined_length, size=num_check, replace=False
                )
                check_bits = random_bits(num_check, rng=generator)
                # Channel/eavesdropper flips each combined bit independently.
                flips = generator.random(combined_length) < tamper_fraction
                received_check = tuple(
                    int(check_bits[i]) ^ int(flips[position])
                    for i, position in enumerate(check_positions)
                )
                if hamming_distance(received_check, check_bits) > 0:
                    caught += 1
            theoretical = 1.0 - (1.0 - tamper_fraction) ** num_check
            rows.append(
                {
                    "check_bits": num_check,
                    "empirical_detection": caught / trials,
                    "theoretical_detection": theoretical,
                }
            )
        return rows

    rows = run_once(benchmark, run)

    with capsys.disabled():
        print()
        print("Ablation — check-bit fraction (25% bit-flip tampering, 64-bit string):")
        print("  c     empirical detection   1-(1-q)^c")
        for row in rows:
            print(
                f"  {row['check_bits']:<5d} {row['empirical_detection']:.3f}"
                f"                 {row['theoretical_detection']:.3f}"
            )

    assert all(
        later["empirical_detection"] >= earlier["empirical_detection"] - 0.05
        for earlier, later in zip(rows, rows[1:])
    )
    assert rows[-1]["empirical_detection"] > 0.99
    for row in rows:
        assert abs(row["empirical_detection"] - row["theoretical_detection"]) < 0.12

    record(rows=rows)
