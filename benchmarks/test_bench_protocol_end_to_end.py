"""Bench ``e2e``: full UA-DI-QSDC sessions on ideal and η=10 channels (paper §II).

Regenerates the end-to-end behaviour every other experiment relies on: the
protocol delivers the message on both channels, the CHSH checks sit near
2√2 − ε, the identity verifications report (near-)zero error for honest
parties, and the residual message bit-error rate on the noisy channel is
small.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import render_result, run_end_to_end
from repro.quantum.bell import CLASSICAL_CHSH_BOUND


def test_bench_protocol_end_to_end(benchmark, record, capsys):
    result = run_once(
        benchmark,
        run_end_to_end,
        num_sessions=5,
        message_length=32,
        eta=10,
        identity_pairs=8,
        check_pairs=192,
        seed=42,
    )

    with capsys.disabled():
        print()
        print(render_result(result))

    assert result.ideal_delivery_rate >= 0.8
    assert result.noisy_delivery_rate >= 0.6
    assert result.mean_chsh_round1 > CLASSICAL_CHSH_BOUND
    assert result.mean_noisy_message_error < 0.05

    record(
        ideal_delivery_rate=result.ideal_delivery_rate,
        noisy_delivery_rate=result.noisy_delivery_rate,
        mean_chsh_round1=result.mean_chsh_round1,
        mean_noisy_message_error=result.mean_noisy_message_error,
    )
