"""Shared helpers for the benchmark/reproduction harness.

Every benchmark in this directory regenerates one artefact of the paper's
evaluation (a table, a figure, or a security simulation) and records the
paper-comparable numbers in ``benchmark.extra_info`` so they survive into the
pytest-benchmark JSON output.  Wall-clock timing is a by-product; the asserts
verify that the *shape* of each result matches the paper.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Execute *func* exactly once under the benchmark fixture.

    The reproduction harnesses are deterministic simulations, not
    micro-kernels; a single round keeps the total runtime manageable while
    still recording the time-to-regenerate for every artefact.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def record(benchmark):
    """Store a key/value pair in the benchmark's extra info."""

    def _record(**values):
        for key, value in values.items():
            benchmark.extra_info[key] = value

    return _record
