"""Shared helpers for the benchmark/reproduction harness.

Every benchmark in this directory regenerates one artefact of the paper's
evaluation (a table, a figure, or a security simulation) and records the
paper-comparable numbers in ``benchmark.extra_info`` so they survive into the
pytest-benchmark JSON output.  Wall-clock timing is a by-product; the asserts
verify that the *shape* of each result matches the paper.

Trajectory emission
-------------------
When the ``REPRO_BENCH_TRAJECTORY`` environment variable names an output
path, the whole session is additionally aggregated into one versioned
:class:`repro.artifacts.trajectory.Trajectory` JSON file — per-bench timing
samples plus every numeric ``extra_info`` value as a drift-gated metric.
This is how the committed ``BENCH_<n>.json`` files are produced::

    REPRO_BENCH_TRAJECTORY=BENCH_6.json PYTHONPATH=src python -m pytest benchmarks -q

and how CI's ``bench-trajectory`` job regenerates the current trajectory it
gates against the committed baseline (see ``docs/artifacts.md``).
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Any

import pytest

#: Wall-clock-derived extra_info keys (elapsed seconds, measured throughput,
#: speedups, overhead fractions).  These vary machine to machine, so they are
#: recorded as context in the trajectory's ``info`` block instead of the
#: strictly drift-gated ``metrics`` — timing regressions are already gated
#: by the bootstrap-CI ratio test on the samples themselves.  Simulated
#: (virtual-clock) throughputs are deterministic and stay gated.
_VOLATILE_KEY_RE = re.compile(
    r"(^|_)seconds$|seconds_per|nanoseconds|^wall_clock_"
    r"|^bits_per_second$|overhead_fraction$|(^|_)speedup$"
)


def run_once(benchmark, func, *args, **kwargs):
    """Execute *func* exactly once under the benchmark fixture.

    The reproduction harnesses are deterministic simulations, not
    micro-kernels; a single round keeps the total runtime manageable while
    still recording the time-to-regenerate for every artefact.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def record(benchmark):
    """Store a key/value pair in the benchmark's extra info."""

    def _record(**values):
        for key, value in values.items():
            benchmark.extra_info[key] = value

    return _record


def _is_metric(value: Any) -> bool:
    """Whether an ``extra_info`` value is drift-gateable (numbers, all the way down).

    Booleans and ``None`` count (a flipped claim or a lost crossing is drift);
    strings and mixed containers are context, not results, and land in the
    record's ``info`` block instead.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_metric(item) for item in value)
    if isinstance(value, dict):
        return all(isinstance(key, str) and _is_metric(item) for key, item in value.items())
    # numpy scalars quack like floats
    return hasattr(value, "item") and not hasattr(value, "__len__")


def _bench_samples(meta: Any) -> list[float]:
    """Raw per-round timing samples of one pytest-benchmark ``Metadata``."""
    stats = getattr(meta, "stats", None)
    data = getattr(stats, "data", None)
    if data:
        return [float(sample) for sample in data]
    sorted_data = getattr(stats, "sorted_data", None)
    return [float(sample) for sample in sorted_data] if sorted_data else []


def pytest_sessionfinish(session, exitstatus):
    """Aggregate the session's benchmarks into a trajectory file (opt-in)."""
    path = os.environ.get("REPRO_BENCH_TRAJECTORY")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return

    from repro.artifacts import BenchmarkRecord, Trajectory, environment_fingerprint

    target = Path(path)
    trajectory = Trajectory(
        label=target.stem, environment=environment_fingerprint()
    )
    for meta in sorted(benchmarks, key=lambda m: m.fullname):
        samples = _bench_samples(meta)
        if not samples:
            continue
        metrics = {
            key: value
            for key, value in meta.extra_info.items()
            if _is_metric(value) and not _VOLATILE_KEY_RE.search(key)
        }
        info = {
            key: value for key, value in meta.extra_info.items() if key not in metrics
        }
        trajectory.add(
            BenchmarkRecord(
                name=meta.fullname,
                samples=samples,
                rounds=len(samples),
                metrics=metrics,
                info=info,
            )
        )
    trajectory.write(target)
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(
            f"wrote benchmark trajectory {target} "
            f"({len(trajectory.records)} benchmarks)"
        )
