"""Bench the vectorized batched-tableau backend against the serial stabilizer.

Two workloads:

* **Analytic session batches** — the paper-default session shape (one
  two-qubit message-transfer circuit per session, Pauli + readout noise)
  submitted as batches of 1/64/1024 sessions.  Counts must stay bit-identical
  to a serial loop under the same seed, and the batched path must amortize
  below 1 ms per session at batch ≥ 64.  Both paths share the analytic
  distribution cache, so the recorded speedup here reflects plan reuse, not
  the tableau engine.
* **Trajectory shot batches** — a reset-bearing circuit forced onto the
  per-shot trajectory path, where the batch axis is the shot count and the
  engine's whole-batch gate/noise updates replace the serial per-shot Python
  loop.  This is the genuinely vectorized regime: the gate asserts a ≥ 5×
  win at 1024 shots (measured ≈ 100×, so timing noise cannot flake it).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.emulation import build_message_transfer_circuit
from repro.quantum.channels import depolarizing_channel, pauli_channel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise_model import NoiseModel, ReadoutError
from repro.quantum.stabilizer import StabilizerSimulator
from repro.quantum.tableau_batch import BatchedStabilizerSimulator

SHOTS = 1024
MESSAGES = ("00", "01", "10", "11")


def _pauli_model() -> NoiseModel:
    model = NoiseModel("bench_batch_pauli")
    model.add_all_qubit_error(depolarizing_channel(2.41e-4), "id")
    model.add_all_qubit_error(pauli_channel(0.004, 0.002, 0.006), "cx")
    model.add_readout_error(ReadoutError.symmetric(0.013))
    return model


def _session_circuits(count: int) -> list:
    # Fresh circuit objects per session, as the protocol runner submits them.
    return [
        build_message_transfer_circuit(MESSAGES[i % len(MESSAGES)], eta=30)
        for i in range(count)
    ]


def _reset_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="reset_reuse")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.reset(1)
    circuit.h(1)
    circuit.cx(1, 2)
    circuit.measure_all()
    return circuit


def _serial_counts(model, circuits, seed):
    simulator = StabilizerSimulator(noise_model=model)
    rng = np.random.default_rng(seed)
    return [simulator.run(circuit, shots=SHOTS, rng=rng).counts for circuit in circuits]


def _batched_counts(model, circuits, seed):
    simulator = BatchedStabilizerSimulator(noise_model=model)
    batch = simulator.run_batch(circuits, shots=SHOTS, rng=np.random.default_rng(seed))
    return [result.counts for result in batch.results]


def test_bench_batched_analytic_session_batches(benchmark, record):
    model = _pauli_model()
    seed = 9
    timings = {}
    for batch_size in (1, 64, 1024):
        circuits = _session_circuits(batch_size)

        start = time.perf_counter()
        serial = _serial_counts(model, circuits, seed)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = _batched_counts(model, circuits, seed)
        batched_seconds = time.perf_counter() - start

        # One multinomial per circuit in submission order on both paths:
        # equal seeds mean bit-identical histograms at every batch size.
        assert batched == serial

        timings[batch_size] = (serial_seconds, batched_seconds)

    # Perf gate: the paper-default session amortizes under 1 ms once the
    # batch is large enough to amortize plan construction (measured ≈ 0.4 ms
    # on first resolution, ≈ 0.01 ms on plan reuse).
    for batch_size in (64, 1024):
        amortized_ms = timings[batch_size][1] * 1000.0 / batch_size
        assert amortized_ms < 1.0, (
            f"batched session amortization regressed: {amortized_ms:.3f} ms "
            f"per session at batch {batch_size}"
        )

    run_once(benchmark, _batched_counts, model, _session_circuits(1024), seed)
    record(
        shots=SHOTS,
        batch_sizes=[1, 64, 1024],
        counts_bit_identical=True,
        batch1024_serial_seconds=timings[1024][0],
        batch1024_batched_seconds=timings[1024][1],
        batched_session_amortized_seconds=timings[1024][1] / 1024,
        analytic_batch_speedup=timings[1024][0] / timings[1024][1],
    )


def test_bench_batched_trajectory_shot_batches(benchmark, record):
    model = _pauli_model()
    timings = {}
    for shots in (1, 64, 1024):
        serial = StabilizerSimulator(noise_model=model)
        start = time.perf_counter()
        serial_result = serial.run(
            _reset_circuit(),
            shots=shots,
            rng=np.random.default_rng(5),
            method="trajectory",
        )
        serial_seconds = time.perf_counter() - start

        batched = BatchedStabilizerSimulator(noise_model=model)
        start = time.perf_counter()
        batched_result = batched.run(
            _reset_circuit(),
            shots=shots,
            rng=np.random.default_rng(5),
            method="trajectory",
        )
        batched_seconds = time.perf_counter() - start

        assert serial_result.shots == batched_result.shots == shots
        assert batched_result.metadata["stabilizer_mode"] == "trajectory"
        timings[shots] = (serial_seconds, batched_seconds)

    # Perf gate: the whole-batch tableau updates must beat the serial
    # per-shot loop by ≥ 5× at 1024 shots (measured ≈ 100×).
    speedup_1024 = timings[1024][0] / timings[1024][1]
    assert speedup_1024 >= 5.0, (
        f"batched trajectory speedup regressed to {speedup_1024:.1f}x "
        "at 1024 shots"
    )
    amortized_ms = timings[1024][1] * 1000.0 / 1024
    assert amortized_ms < 1.0, (
        f"batched trajectory shot amortization regressed: {amortized_ms:.4f} ms"
    )

    def _trajectory_run():
        return BatchedStabilizerSimulator(noise_model=model).run(
            _reset_circuit(),
            shots=1024,
            rng=np.random.default_rng(5),
            method="trajectory",
        )

    run_once(benchmark, _trajectory_run)
    record(
        shot_batches=[1, 64, 1024],
        shots1024_serial_seconds=timings[1024][0],
        shots1024_batched_seconds=timings[1024][1],
        trajectory_shot_amortized_seconds=timings[1024][1] / 1024,
        trajectory_batch_speedup=speedup_1024,
    )
