"""Bench the concurrent delivery runtime: sustained msgs/sec vs worker count.

Two angles on the same subsystem:

* **Simulated scaling** — the virtual-clock load harness drives the same
  admission/backpressure machinery as the live engine with a deterministic
  physics-derived service-time model, so throughput at 1/4/8 workers is
  bit-stable machine to machine and drift-gated in the trajectory.
* **Wall-clock engine rate** — a short burst of *real* replay-mode sends
  through :class:`~repro.runtime.engine.DeliveryEngine` versus the serial
  oracle.  Those numbers depend on the machine, so they are recorded under
  ``wall_clock_*`` names that the trajectory routes to context ``info``.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import run_once
from repro.api.config import ServiceConfig
from repro.runtime.engine import DeliveryEngine, serial_reference
from repro.runtime.loadgen import ServiceTimeModel, simulate_load

WORKER_COUNTS = (1, 4, 8)
MESSAGES = 4_000
#: 10 ms mean service time -> 100 msgs/s per worker of simulated capacity.
MODEL = ServiceTimeModel(base_time=0.01, per_hop_time=0.0, jitter=0.05)
#: Offered load far above eight workers' capacity so throughput is
#: capacity-limited (and therefore scales with the worker count).
ARRIVAL_RATE = 2_000.0

LIVE_SENDS = 24
LIVE_WORKERS = 4


def _sustained_load() -> dict[int, object]:
    return {
        workers: simulate_load(
            messages=MESSAGES,
            service_model=MODEL,
            seed=23,
            arrival="poisson",
            arrival_rate=ARRIVAL_RATE,
            workers=workers,
            policy="block",
        )
        for workers in WORKER_COUNTS
    }


def test_bench_runtime_throughput(benchmark, record):
    results = run_once(benchmark, _sustained_load)

    serial = results[1]
    # Conservation + block policy: every offered message is delivered.
    for workers, result in results.items():
        assert result.offered == MESSAGES
        assert result.delivered == MESSAGES
        assert result.dropped == 0, workers
    # Saturated servers: adding workers must raise sustained throughput,
    # and near-saturation each run keeps its workers busy.
    assert results[4].throughput > 2.0 * serial.throughput
    assert results[8].throughput > 1.5 * results[4].throughput
    assert serial.utilization > 0.95

    metrics = {}
    for workers, result in results.items():
        metrics[f"simulated_throughput_w{workers}"] = result.throughput
        metrics[f"simulated_p99_latency_w{workers}"] = result.latency_percentiles()[
            "p99"
        ]
    metrics["simulated_scaling_w4"] = results[4].throughput / serial.throughput
    metrics["simulated_scaling_w8"] = results[8].throughput / serial.throughput
    record(**metrics)


def test_bench_runtime_engine_vs_serial(benchmark, record):
    """Wall-clock msgs/sec of the live engine against the serial oracle."""
    config = ServiceConfig.ideal()
    payloads = [f"bench message {index}" for index in range(LIVE_SENDS)]

    def concurrent_run():
        with DeliveryEngine(
            config, max_workers=LIVE_WORKERS, seed=99
        ) as engine:
            return engine.send_many(payloads)

    started = time.perf_counter()
    deliveries = run_once(benchmark, concurrent_run)
    concurrent_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    oracle = serial_reference(config, payloads, seed=99)
    serial_elapsed = time.perf_counter() - started

    # Replay contract: the concurrent engine resolves every request to a
    # report byte-identical to the serial reference.
    assert len(deliveries) == len(oracle) == LIVE_SENDS
    for delivery, reference in zip(deliveries, oracle):
        assert delivery.status == "delivered"
        assert json.dumps(delivery.report.summary(), sort_keys=True) == json.dumps(
            reference.summary(), sort_keys=True
        )

    record(
        delivered=sum(1 for delivery in deliveries if delivery.ok),
        engine_workers=LIVE_WORKERS,
        wall_clock_engine_msgs_per_s=LIVE_SENDS / concurrent_elapsed,
        wall_clock_serial_msgs_per_s=LIVE_SENDS / serial_elapsed,
        wall_clock_engine_seconds=concurrent_elapsed,
        wall_clock_serial_seconds=serial_elapsed,
    )
