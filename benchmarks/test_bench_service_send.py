"""Bench the messaging-service facade: overhead vs the raw protocol, and
batch-backend throughput on a multi-fragment payload.

The facade promises to be a *thin* layer: in unframed single-fragment mode a
``MessagingService.send`` runs exactly one ``UADIQSDCProtocol`` session with
the same seed as a direct call, so everything it adds (validation, codec,
job/report construction) must stay within a few percent of the raw run.  The
second benchmark records the throughput of a framed multi-fragment payload
fanned out through the batch backend.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.api import MessagingService, ServiceConfig
from repro.protocol.runner import UADIQSDCProtocol

MESSAGE = "1011001110001111"
SEED = 404


def _facade_config() -> ServiceConfig:
    return (
        ServiceConfig.ideal(seed=SEED)
        .with_identity_pairs(2)
        .with_check_pairs(64)
        .with_framing(False)
        .with_retries(0)
    )


def _run_direct(config: ServiceConfig, repeats: int) -> None:
    for _ in range(repeats):
        protocol_config = config.protocol_config(len(MESSAGE), seed=SEED)
        UADIQSDCProtocol(protocol_config).run(MESSAGE)


def _run_facade(service: MessagingService, repeats: int) -> None:
    for _ in range(repeats):
        service.send(MESSAGE, kind="bits")


def _best_of(func, *args, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_facade_overhead_vs_direct_run(benchmark, record):
    config = _facade_config()
    service = MessagingService(config)
    repeats = 10

    # Same seed, same protocol parameters: both paths execute bit-identical
    # quantum sessions, so the timing difference *is* the facade overhead.
    direct = service.send(MESSAGE, kind="bits").fragments[0].attempts[0].raw
    reference = UADIQSDCProtocol(config.protocol_config(len(MESSAGE), seed=SEED)).run(
        MESSAGE
    )
    assert direct.summary() == reference.summary()

    _run_direct(config, 2)  # warm both paths before timing
    _run_facade(service, 2)
    direct_time = _best_of(_run_direct, config, repeats)
    facade_time = _best_of(_run_facade, service, repeats)
    overhead = facade_time / direct_time - 1.0

    run_once(benchmark, _run_facade, service, repeats)

    # The memoised session fast path shrank a direct run to a few
    # milliseconds, so the facade's fixed per-send cost (fragmentation,
    # seed derivation, report assembly) is bounded both relatively and
    # absolutely: small against the session, and under 2 ms outright.
    per_send_overhead = (facade_time - direct_time) / repeats
    assert overhead < 0.25 or per_send_overhead < 0.002, (
        f"facade adds {overhead:.1%} ({per_send_overhead * 1e3:.2f} ms/send) over a "
        f"direct UADIQSDCProtocol.run "
        f"(direct {direct_time:.3f}s vs facade {facade_time:.3f}s for {repeats} sends)"
    )
    record(
        direct_seconds=direct_time,
        facade_seconds=facade_time,
        overhead_fraction=overhead,
        overhead_seconds_per_send=per_send_overhead,
    )


def test_bench_batch_backend_multi_fragment_throughput(benchmark, record):
    payload = bytes(range(64))  # 512 bits -> 16 fragments of 32 bits
    config = (
        ServiceConfig.ideal(seed=SEED)
        .with_backend("batch")
        .with_identity_pairs(2)
        .with_check_pairs(64)
        .with_fragment_bits(32)
        .with_executor("thread")
    )
    service = MessagingService(config)

    start = time.perf_counter()
    report = run_once(benchmark, service.send, payload)
    elapsed = time.perf_counter() - start

    assert report.success and report.delivered_payload == payload
    assert report.num_fragments == 16
    assert elapsed < 30.0, f"multi-fragment batch send took {elapsed:.1f}s"
    record(
        num_fragments=report.num_fragments,
        total_attempts=report.total_attempts,
        payload_bits=report.num_payload_bits,
        bits_per_second=report.num_payload_bits / elapsed,
    )
