"""Microbenchmarks of the quantum-simulation substrate.

These are conventional timing benchmarks (many rounds) of the primitives every
experiment is built on: statevector gate application, density-matrix channel
application, Bell-state measurement sampling, a full noisy backend execution
of the Fig. 2 circuit, and one complete protocol session.  They put the
per-artefact regeneration times of the other benches into context and guard
against performance regressions in the substrate.
"""

from __future__ import annotations

from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.device.backend import NoisyBackend
from repro.device.device_model import DeviceModel
from repro.experiments.emulation import build_message_transfer_circuit
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol
from repro.quantum.bell import BellState, bell_state
from repro.quantum.channels import depolarizing_channel, thermal_relaxation_channel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import bell_measurement_counts
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.states import Statevector


def test_bench_statevector_gate_application(benchmark):
    """Apply a 10-gate layer to an 8-qubit statevector."""
    circuit = QuantumCircuit(8)
    for qubit in range(8):
        circuit.h(qubit)
    for qubit in range(7):
        circuit.cx(qubit, qubit + 1)
    simulator = StatevectorSimulator(seed=0)

    result = benchmark(simulator.final_statevector, circuit)
    assert isinstance(result, Statevector)
    assert result.num_qubits == 8


def test_bench_density_channel_application(benchmark):
    """Apply the composed η=100 identity-chain channel to one EPR pair."""
    channel = IdentityChainChannel(eta=100)
    pair = bell_state(BellState.PHI_PLUS).density_matrix()

    noisy = benchmark(channel.transmit, pair, 0)
    assert noisy.num_qubits == 2
    assert noisy.purity() < 1.0


def test_bench_kraus_composition(benchmark):
    """Compose depolarizing and thermal-relaxation Kraus channels."""
    relaxation = thermal_relaxation_channel(233.04e-6, 145.75e-6, 60e-9)

    composed = benchmark(depolarizing_channel(2.41e-4).compose, relaxation)
    assert composed.num_qubits == 1


def test_bench_bell_measurement_sampling(benchmark):
    """Sample 1024 Bell-state measurements of a noisy pair."""
    noisy = depolarizing_channel(0.05).apply(
        bell_state(BellState.PHI_PLUS).density_matrix(), [0]
    )

    counts = benchmark(bell_measurement_counts, noisy, [0, 1], 1024, 7)
    assert sum(counts.values()) == 1024


def test_bench_noisy_backend_fig2_circuit(benchmark):
    """Run the Fig. 2 emulation circuit (η=10) on the ibm_brisbane backend."""
    backend = NoisyBackend(DeviceModel.ibm_brisbane(), seed=5)
    circuit = build_message_transfer_circuit("10", eta=10)

    counts = benchmark(backend.run, circuit, 1024)
    assert counts.shots == 1024


def test_bench_full_protocol_session(benchmark):
    """One complete UA-DI-QSDC session (16-bit message, d=64, ideal channel)."""
    config = ProtocolConfig.default(
        message_length=16, check_pairs_per_round=64, seed=3
    ).with_channel(NoiselessChannel())

    def session():
        return UADIQSDCProtocol(config).run("1011001110001111")

    result = benchmark(session)
    assert result.success
