"""Bench ``fig_sla``: the SLA sweep under time-varying conditions.

Tracks the cost of the dynamic reservation pass plus QoS-weighted admission
on top of the static scheduler: a quick offered-load × condition-profile
sweep (static and drift_outage cells) with three priority classes.  Records
the goodput knee per profile and the delivery/reroute totals so the
trajectory gate catches both performance and behavioural drift of the
network digital twin.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.experiments import render_result
from repro.experiments.fig_sla import run_fig_sla


def test_bench_sla(benchmark, record, capsys):
    started = time.perf_counter()
    result = run_once(
        benchmark,
        run_fig_sla,
        num_sessions=24,
        loads=(0.6, 1.5, 3.0),
        profiles=("static", "drift_outage"),
        check_pairs=16,
        executor="thread",
        seed=13,
    )
    elapsed = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(render_result(result))

    # Shape: the full 2-profile × 3-load grid, every session accounted for.
    assert len(result.points) == 6
    for point in result.points:
        network = point.result
        assert (
            network.delivered_count + network.aborted_count + network.rejected_count
            == 24
        )
    # The sweep must deliver traffic and the dynamic cells must disturb it.
    delivered = sum(point.result.delivered_count for point in result.points)
    reroutes = sum(
        point.result.reroute_count
        for point in result.points
        if point.profile == "drift_outage"
    )
    assert delivered >= 20
    assert reroutes > 0
    # CI-quick budget: the whole sweep stays under 10 s of wall clock.
    assert elapsed < 10.0

    record(
        delivered=delivered,
        reroutes=reroutes,
        static_knee_load=result.goodput_knee("static"),
        drift_outage_knee_load=result.goodput_knee("drift_outage"),
        static_goodput_light=result.point("static", 0.6).goodput_bits,
        static_goodput_heavy=result.point("static", 3.0).goodput_bits,
        drift_outage_goodput_light=result.point("drift_outage", 0.6).goodput_bits,
        drift_outage_goodput_heavy=result.point("drift_outage", 3.0).goodput_bits,
        wall_clock_points_per_s=len(result.points) / elapsed,
    )
