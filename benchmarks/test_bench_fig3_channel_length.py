"""Bench ``fig3``: regenerate Fig. 3 (accuracy versus channel length).

Paper artefact: Fig. 3.  Sweeps the η-identity-gate channel on the
``ibm_brisbane`` device model and reports the accuracy of Bob's Bell-state
measurement per channel length, the exponential-decay fit and the threshold
crossing.  The paper observes a monotonic decay that falls below 60 % around
η ≈ 700 on hardware; the device model reproduces the decay shape, with the
crossing in the several-hundred-to-thousand-gate regime (see EXPERIMENTS.md
for the quantitative comparison).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import render_result, run_fig3
from repro.experiments.fig3_channel_length import PAPER_FIG3_THRESHOLD


def test_bench_fig3_channel_length(benchmark, record, capsys):
    etas = [10, 50, 100, 150, 200, 300, 400, 500, 600, 700, 850, 1000, 1200, 1500, 2000]
    # simulator_backend="auto" is the dispatched path: ibm_brisbane's thermal
    # relaxation is non-Pauli, so auto resolves to the dense simulator and
    # the figures stay bit-identical to earlier releases — the ~20x speedup
    # over the seed workload (763 ms -> 34 ms on the reference machine) comes
    # from the run-length-encoded η-chains, shared propagator caches and the
    # memoised device noise model underneath the dispatch layer.
    result = run_once(
        benchmark,
        run_fig3,
        etas=etas,
        shots=512,
        messages=("00", "01", "10", "11"),
        seed=2024,
        simulator_backend="auto",
    )

    with capsys.disabled():
        print()
        print(render_result(result))

    # Shape checks: monotonic decay from >0.9 at η=10 towards the 1/4 floor,
    # crossing the paper's 60 % threshold within the swept range.
    assert result.points[0].accuracy > 0.9
    assert result.is_monotonically_decreasing(tolerance=0.05)
    crossing = result.crossing(PAPER_FIG3_THRESHOLD)
    assert crossing is not None and 400 < crossing < 2000
    fit = result.decay_fit()
    assert fit["eta0"] > 0

    record(
        etas=result.etas,
        accuracies=result.accuracies,
        crossing_eta_60pct=crossing,
        decay_fit=fit,
        simulator_backend="auto",
    )
