"""Bench the telemetry layer's disabled-mode cost on the service hot path.

The telemetry tentpole promises near-zero overhead when no session is
active: every instrumentation point guards on a module-level ``_session is
None`` check and returns a shared no-op immediately.  Two measurements back
that claim:

* a direct micro-measurement of the no-op helpers (span enter/exit,
  ``counter_inc``, ``clock_mark``) — nanoseconds per call — scaled by a
  generous touchpoint budget per ``send()`` and compared against the
  measured send duration (this is the gated <2% assertion: same-machine,
  same-process, so timer noise largely cancels);
* an end-to-end traced-vs-untraced send pair recorded as context, showing
  what an *enabled* session costs for the same workload.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro import telemetry
from repro.api import MessagingService, ServiceConfig
from repro.telemetry import runtime

MESSAGE = "1011001110001111"
SEED = 513

# Upper bound on instrumentation touchpoints a single-fragment send crosses
# (service.send span, attempt wave, fragment attempt, protocol session,
# ~8 phase marks, counters, cache registrations) — deliberately inflated.
TOUCHPOINTS_PER_SEND = 64


def _noop_cost_per_call(loops: int = 20_000) -> float:
    """Seconds per disabled-mode instrumentation call, best of 3."""
    assert not runtime.enabled()

    def burn() -> None:
        for _ in range(loops):
            with runtime.span("bench", "bench"):
                pass
            runtime.counter_inc("bench")
            runtime.clock_mark()

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        burn()
        best = min(best, time.perf_counter() - start)
    return best / (loops * 3)  # three helper calls per loop


def _best_send_seconds(service: MessagingService, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        report = service.send(MESSAGE, kind="bits")
        best = min(best, time.perf_counter() - start)
        assert report.success
    return best


def test_bench_disabled_telemetry_send_overhead(benchmark, record):
    config = (
        ServiceConfig.ideal(seed=SEED)
        .with_identity_pairs(2)
        .with_check_pairs(64)
        .with_framing(False)
        .with_retries(0)
    )
    service = MessagingService(config)
    service.send(MESSAGE, kind="bits")  # warm caches before timing

    noop_cost = _noop_cost_per_call()
    send_seconds = _best_send_seconds(service)
    overhead_seconds = noop_cost * TOUCHPOINTS_PER_SEND
    overhead_fraction = overhead_seconds / send_seconds

    run_once(benchmark, service.send, MESSAGE, kind="bits")

    assert overhead_fraction < 0.02, (
        f"disabled-mode telemetry costs {overhead_fraction:.2%} of a send "
        f"({noop_cost * 1e9:.0f} ns/call x {TOUCHPOINTS_PER_SEND} touchpoints "
        f"vs {send_seconds * 1e3:.2f} ms/send)"
    )

    # Context: what tracing costs when it is actually on.
    with telemetry.capture():
        start = time.perf_counter()
        service.send(MESSAGE, kind="bits")
        traced_seconds = time.perf_counter() - start

    record(
        noop_nanoseconds_per_call=noop_cost * 1e9,
        send_seconds=send_seconds,
        disabled_overhead_fraction=overhead_fraction,
        traced_send_seconds=traced_seconds,
    )
