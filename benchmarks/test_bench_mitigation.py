"""Bench ``mitigation``: error mitigation on the Fig. 3 channel (paper §IV-B outlook).

The paper suggests error mitigation as the way to keep the protocol reliable
over longer channels without error-correcting codes.  This bench regenerates
the mitigation study: raw versus readout-mitigated versus zero-noise-
extrapolated accuracy for several channel lengths.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import render_result, run_mitigation_study


def test_bench_mitigation_study(benchmark, record, capsys):
    result = run_once(
        benchmark,
        run_mitigation_study,
        etas=(100, 300, 500, 700),
        shots=512,
        messages=("00", "01", "10", "11"),
        noise_scales=(1.0, 1.5, 2.0, 3.0),
        seed=2025,
    )

    with capsys.disabled():
        print()
        print(render_result(result))

    # Both techniques must help on average, and ZNE must recover most of the
    # accuracy lost to the channel at every studied length.
    assert result.improvement("readout") > 0.0
    assert result.improvement("zne") > 0.05
    for point in result.points:
        assert point.readout_mitigated_accuracy >= point.raw_accuracy - 0.02
        assert point.zne_accuracy >= point.raw_accuracy

    record(
        points=[
            {
                "eta": point.eta,
                "raw": point.raw_accuracy,
                "readout_mitigated": point.readout_mitigated_accuracy,
                "zne": point.zne_accuracy,
            }
            for point in result.points
        ],
        mean_gain_readout=result.improvement("readout"),
        mean_gain_zne=result.improvement("zne"),
    )
