"""Bench the stabilizer fast path against the dense simulators.

Two workloads:

* the Fig. 3-shaped two-qubit message-transfer circuits under a
  Pauli-diagonal device model — the class ``auto`` dispatch accelerates
  without approximation;
* a seven-qubit entanglement-distribution line, beyond
  ``MAX_SUPEROP_QUBITS`` — the regime where dense superoperator compilation
  is unavailable and sequential density simulation pays exponential cost,
  while the tableau stays polynomial.

Both assert *exact* count agreement between backends (equal probability
vectors + equal seeds ⇒ equal multinomials) and a wall-clock win for the
stabilizer path; the asserted speedup floors are far below the measured
ratios so timing noise cannot flake the suite.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.quantum.channels import depolarizing_channel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise_model import NoiseModel, ReadoutError
from repro.quantum.simulator import DensityMatrixSimulator
from repro.quantum.stabilizer import StabilizerSimulator


def _pauli_model() -> NoiseModel:
    model = NoiseModel("bench_pauli")
    model.add_all_qubit_error(depolarizing_channel(2.41e-4), "id")
    model.add_all_qubit_error(depolarizing_channel(1e-3), "cx")
    model.add_readout_error(ReadoutError.symmetric(0.013))
    return model


def _distribution_line(num_qubits: int, eta: int) -> QuantumCircuit:
    """GHZ distribution across a line, each link idling through an η-chain."""
    circuit = QuantumCircuit(num_qubits, name=f"line{num_qubits}_eta{eta}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
        circuit.repeat("id", qubit + 1, eta)
    circuit.measure_all()
    return circuit


def _run(simulator, circuits, shots, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    return [simulator.run(circuit, shots=shots, rng=rng).counts for circuit in circuits]


def test_bench_stabilizer_vs_dense_multiqubit_line(benchmark, record):
    model = _pauli_model()
    shots, seed = 1024, 7
    circuits = [_distribution_line(7, eta) for eta in (20, 40, 60)]

    dense = DensityMatrixSimulator(noise_model=model)
    start = time.perf_counter()
    dense_counts = _run(dense, circuits, shots, seed)
    dense_seconds = time.perf_counter() - start

    stab = StabilizerSimulator(noise_model=model)
    start = time.perf_counter()
    stab_counts = _run(stab, circuits, shots, seed)
    stab_seconds = time.perf_counter() - start

    # Identical distributions, identical seeds -> identical histograms.
    assert stab_counts == dense_counts

    # Timed artefact: the stabilizer run (the dense timing above is the
    # baseline the record keeps).
    run_once(
        benchmark,
        _run,
        StabilizerSimulator(noise_model=model),
        circuits,
        shots,
        seed,
    )

    speedup = dense_seconds / max(stab_seconds, 1e-9)
    record(
        dense_seconds=dense_seconds,
        stabilizer_seconds=stab_seconds,
        speedup=speedup,
        num_qubits=7,
    )
    # Measured >100x here; assert a 5x floor so CI noise cannot flake.
    assert speedup > 5, (
        f"stabilizer path only {speedup:.1f}x faster than dense "
        f"({stab_seconds:.3f}s vs {dense_seconds:.3f}s)"
    )
