"""Bench ``atk-entangle``: entangle-and-measure detection (paper §III-D, §IV).

Eve couples an ancilla to every transmitted qubit.  By the monogamy of
entanglement, the stronger her probe the more the Alice–Bob entanglement is
disturbed: the bench sweeps the probe strength and shows the CHSH value of the
second security check falling from ≈ 2√2 (no probe) through the classical
bound (strength ≈ 0.5) to ≈ 0 (full CNOT probe), at which point detection is
certain.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.attacks import EntangleMeasureAttack, evaluate_attack
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol.config import ProtocolConfig


def _run():
    config = ProtocolConfig.default(
        message_length=16, identity_pairs=12, check_pairs_per_round=96, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    config.authentication_tolerance = 0.95

    sweep = []
    for index, strength in enumerate((0.0, 0.25, 0.5, 0.75, 1.0)):
        evaluation = evaluate_attack(
            config,
            lambda rng, s=strength: EntangleMeasureAttack(strength=s, rng=rng),
            "1011001110001111",
            trials=6,
            rng=31 + index,
        )
        sweep.append((strength, evaluation))
    return sweep


def test_bench_attack_entangle_measure(benchmark, record, capsys):
    sweep = run_once(benchmark, _run)

    with capsys.disabled():
        print()
        print("probe strength | predicted CHSH | measured round-2 CHSH | detection rate")
        for strength, evaluation in sweep:
            predicted = 2 * math.sqrt(2) * math.sqrt(1 - strength)
            measured = evaluation.mean_chsh_round2
            print(
                f"      {strength:.2f}     |     {predicted:.3f}      |        "
                f"{measured if measured is None else round(measured, 3)}          |     "
                f"{evaluation.detection_rate:.2f}"
            )

    by_strength = dict(sweep)
    # No probe: the protocol behaves honestly (little or no detection).
    assert by_strength[0.0].detection_rate <= 0.5
    # Full probe: always detected, nothing delivered, CHSH collapses to ≈ 0.
    assert by_strength[1.0].detection_rate == 1.0
    assert by_strength[1.0].messages_delivered == 0
    assert abs(by_strength[1.0].mean_chsh_round2) < 1.0
    # The information/disturbance trade-off is monotonic: stronger probes give
    # lower CHSH values.
    chsh_series = [
        evaluation.mean_chsh_round2
        for _, evaluation in sweep
        if evaluation.mean_chsh_round2 is not None
    ]
    assert all(a >= b - 0.35 for a, b in zip(chsh_series, chsh_series[1:]))

    record(
        sweep=[
            {
                "strength": strength,
                "detection_rate": evaluation.detection_rate,
                "mean_round2_chsh": evaluation.mean_chsh_round2,
            }
            for strength, evaluation in sweep
        ]
    )
