"""Bench ``atk-impersonation``: impersonation-attack detection (paper §III-A, §IV).

Regenerates the impersonation simulation in both directions (Eve as Alice and
Eve as Bob) and the detection-probability curve ``1 − (1/4)^l`` as a function
of the identity length, comparing the empirical detection rate against the
paper's analytic expression.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.attacks import ImpersonationAttack, evaluate_attack
from repro.channel.quantum_channel import IdentityChainChannel
from repro.experiments import render_result, run_impersonation_sweep
from repro.protocol.config import ProtocolConfig


def _run():
    config = ProtocolConfig.default(
        message_length=16, identity_pairs=8, check_pairs_per_round=64, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    eve_as_bob = evaluate_attack(
        config, lambda rng: ImpersonationAttack("bob", rng=rng), "1011001110001111",
        trials=12, rng=1,
    )
    eve_as_alice = evaluate_attack(
        config, lambda rng: ImpersonationAttack("alice", rng=rng), "1011001110001111",
        trials=12, rng=2,
    )
    sweep = run_impersonation_sweep(
        identity_lengths=(1, 2, 3, 4, 6, 8), trials=40, check_pairs=32, seed=3
    )
    return eve_as_bob, eve_as_alice, sweep


def test_bench_attack_impersonation(benchmark, record, capsys):
    eve_as_bob, eve_as_alice, sweep = run_once(benchmark, _run)

    with capsys.disabled():
        print()
        print(f"Eve impersonating Bob  : detection rate {eve_as_bob.detection_rate:.2f}, "
              f"mean D_A mismatch {eve_as_bob.mean_bob_authentication_error:.2f} (theory 0.75)")
        print(f"Eve impersonating Alice: detection rate {eve_as_alice.detection_rate:.2f}")
        print(render_result(sweep))

    # With l=8 identity pairs, detection is essentially certain and no message leaks.
    assert eve_as_bob.detection_rate == 1.0
    assert eve_as_alice.detection_rate == 1.0
    assert eve_as_bob.messages_delivered == 0
    assert eve_as_bob.mean_bob_authentication_error > 0.5

    # The sweep follows the paper's 1 - (1/4)^l curve within sampling error.
    for point in sweep:
        margin = 3 * (point.theoretical_detection_probability * 0.25 / point.trials) ** 0.5 + 0.15
        assert abs(
            point.empirical_detection_rate - point.theoretical_detection_probability
        ) <= margin

    record(
        detection_rate_eve_as_bob=eve_as_bob.detection_rate,
        detection_rate_eve_as_alice=eve_as_alice.detection_rate,
        sweep=[
            {
                "l": point.identity_pairs,
                "empirical": point.empirical_detection_rate,
                "theory": point.theoretical_detection_probability,
            }
            for point in sweep
        ],
    )
