"""Bench ``table1``: regenerate Table I (protocol feature comparison).

Paper artefact: Table I.  Regenerates the feature matrix from the baseline
implementations and backs every row with a functional run of the protocol on
the same η=10 identity-gate channel.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import render_result, run_table1


def test_bench_table1_comparison(benchmark, record, capsys):
    result = run_once(
        benchmark, run_table1, functional=True, check_pairs=96, eta=10, seed=7
    )

    with capsys.disabled():
        print()
        print(render_result(result))

    # Shape checks against the paper's Table I.
    assert len(result.features) == 5
    assert result.only_proposed_has_authentication
    qubit_costs = {row.name: row.qubits_per_message_bit for row in result.features}
    assert qubit_costs["Zeng et al. 2023 (hyper-encoding)"] == 0.5
    assert qubit_costs["Zhou et al. 2023 (single-photon)"] == 2.0
    assert qubit_costs["Proposed protocol (UA-DI-QSDC)"] == 1.0

    delivered = result.functional.delivered_correctly()
    record(
        delivered_per_protocol=delivered,
        rows=[row.as_row() for row in result.features],
    )
    # On a short (η=10) channel every protocol implementation must work.
    assert all(delivered.values())
