"""Bench ``atk-mitm``: man-in-the-middle detection (paper §III-C, §IV).

Eve keeps Alice's transmitted qubits and forwards fresh uncorrelated qubits to
Bob.  Because Bob's halves are then uncorrelated with what he receives, the
second DI security check measures a CHSH value far below the classical bound
(≈ 0 for random substituted qubits) and the protocol aborts in every session.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.attacks import ManInTheMiddleAttack, evaluate_attack
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol.config import ProtocolConfig


def _run():
    permissive = ProtocolConfig.default(
        message_length=16, identity_pairs=12, check_pairs_per_round=96, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    permissive.authentication_tolerance = 0.95
    chsh_focused = evaluate_attack(
        permissive,
        lambda rng: ManInTheMiddleAttack(rng=rng),
        "1011001110001111",
        trials=10,
        rng=21,
    )
    default_config = ProtocolConfig.default(
        message_length=16, identity_pairs=8, check_pairs_per_round=96, eta=10
    ).with_channel(IdentityChainChannel(eta=10))
    default_detection = evaluate_attack(
        default_config,
        lambda rng: ManInTheMiddleAttack(substitute="maximally_mixed", rng=rng),
        "1011001110001111",
        trials=10,
        rng=22,
    )
    return chsh_focused, default_detection


def test_bench_attack_mitm(benchmark, record, capsys):
    chsh_focused, default_detection = run_once(benchmark, _run)

    with capsys.disabled():
        print()
        print(
            "man-in-the-middle (random pure substitutes): "
            f"detection {chsh_focused.detection_rate:.2f}, "
            f"mean round-2 CHSH {chsh_focused.mean_chsh_round2:.3f} (uncorrelated qubits → ≈ 0)"
        )
        print(
            "man-in-the-middle (maximally mixed substitutes, default config): "
            f"detection {default_detection.detection_rate:.2f}, abort reasons "
            f"{default_detection.abort_reasons}"
        )

    assert chsh_focused.detection_rate == 1.0
    assert default_detection.detection_rate == 1.0
    assert chsh_focused.messages_delivered == default_detection.messages_delivered == 0
    assert chsh_focused.mean_chsh_round2 is not None
    assert abs(chsh_focused.mean_chsh_round2) < 1.0

    record(
        detection_rate=chsh_focused.detection_rate,
        mean_round2_chsh=chsh_focused.mean_chsh_round2,
        default_abort_reasons=default_detection.abort_reasons,
    )
