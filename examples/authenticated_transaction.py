"""Authenticated financial-transaction transfer (paper §V application scenario).

The paper's conclusion highlights financial transactions and critical
infrastructure as target applications: the receiver must be certain the order
came from the authentic sender, and the sender must be certain only the
authentic receiver can read it.  This example encodes a small payment order,
transmits it with UA-DI-QSDC, and then shows what happens when an impostor who
does not know the pre-shared identity tries to collect the same order.

Run with::

    python examples/authenticated_transaction.py
"""

from __future__ import annotations

import json

from repro.attacks import ImpersonationAttack
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol import Identity, ProtocolConfig, UADIQSDCProtocol


def encode_record(record: dict) -> str:
    """Serialise a small JSON record as a bitstring (8 bits per byte)."""
    payload = json.dumps(record, separators=(",", ":")).encode("ascii")
    return "".join(format(byte, "08b") for byte in payload)


def decode_record(bits: str) -> dict:
    """Inverse of :func:`encode_record`."""
    data = bytes(int(bits[i:i + 8], 2) for i in range(0, len(bits), 8))
    return json.loads(data.decode("ascii"))


def build_config(message_bits: str, seed: int) -> ProtocolConfig:
    """Protocol parameters shared by the honest and the attacked session."""
    return ProtocolConfig(
        message_length=len(message_bits),
        num_check_bits=16,
        identity_pairs=8,
        check_pairs_per_round=128,
        channel=IdentityChainChannel(eta=20),
        alice_identity=Identity.from_string("1101001011010010", owner="bank"),
        bob_identity=Identity.from_string("0011100101101100", owner="broker"),
        seed=seed,
    )


def main() -> None:
    order = {"op": "BUY", "sym": "QKD", "qty": 5}
    message_bits = encode_record(order)

    print("Authenticated transaction transfer with UA-DI-QSDC")
    print("===================================================")
    print(f"order: {order}  ({len(message_bits)} bits)")
    print()

    # Honest session: the genuine broker receives and verifies the order.
    honest = UADIQSDCProtocol(build_config(message_bits, seed=31)).run(message_bits)
    print("1) genuine broker (knows the pre-shared identity)")
    print(f"   protocol succeeded : {honest.success}")
    if honest.delivered_message_string:
        print(f"   order received     : {decode_record(honest.delivered_message_string)}")
    print(f"   identity mismatch  : {honest.bob_authentication_error:.2f}")
    print()

    # Attack session: an impostor tries to receive the order without id_B.
    impostor = ImpersonationAttack("bob", rng=5)
    attacked = UADIQSDCProtocol(build_config(message_bits, seed=32), attack=impostor).run(
        message_bits
    )
    print("2) impostor broker (guesses the identity at random)")
    print(f"   protocol succeeded : {attacked.success}")
    print(f"   abort reason       : {attacked.abort_reason.value}")
    print(f"   identity mismatch  : {attacked.bob_authentication_error:.2f} "
          "(expected ≈ 0.75 for random guesses)")
    print(f"   order delivered    : {attacked.delivered_message_string}")
    print()
    print("The impostor is rejected before the bank discloses which EPR pairs")
    print("carry the order, so no part of the transaction leaks; the genuine")
    print(f"broker is detected as authentic with probability 1-(1/4)^l = "
          f"{ImpersonationAttack.detection_probability(8):.8f} against impostors.")


if __name__ == "__main__":
    main()
