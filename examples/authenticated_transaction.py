"""Authenticated financial-transaction transfer (paper §V application scenario).

The paper's conclusion highlights financial transactions and critical
infrastructure as target applications: the receiver must be certain the order
came from the authentic sender, and the sender must be certain only the
authentic receiver can read it.  This example sends a small JSON payment
order as *bytes* through the :class:`~repro.api.service.MessagingService`
facade, then shows an impostor who does not know the pre-shared identity
failing to collect the same order — every fragment session (first attempt
and retransmission alike) is rejected at identity verification, so the
delivery fails as a whole.

Run with::

    python examples/authenticated_transaction.py
"""

from __future__ import annotations

import json

from repro import MessagingService, ServiceConfig
from repro.attacks import ImpersonationAttack
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol import Identity


def build_config(seed: int) -> ServiceConfig:
    """Service parameters shared by the honest and the attacked delivery."""
    return (
        ServiceConfig.paper_default(seed=seed)
        .with_channel(IdentityChainChannel(eta=20))
        .with_check_pairs(128)
        .with_fragment_bits(32)
        .with_retries(4)
        .with_identities(
            Identity.from_string("1101001011010010", owner="bank"),
            Identity.from_string("0011100101101100", owner="broker"),
        )
    )


def main() -> None:
    order = {"op": "BUY", "sym": "QKD", "qty": 5}
    payload = json.dumps(order, separators=(",", ":")).encode("ascii")

    print("Authenticated transaction transfer with UA-DI-QSDC")
    print("===================================================")
    print(f"order: {order}  ({8 * len(payload)} bits)")
    print()

    # Honest delivery: the genuine broker receives and verifies the order.
    honest = MessagingService(build_config(seed=31)).send(payload)
    print("1) genuine broker (knows the pre-shared identity)")
    print(f"   delivery succeeded : {honest.success} "
          f"({honest.num_fragments} fragments, {honest.total_attempts} sessions)")
    if honest.success:
        print(f"   order received     : {json.loads(honest.delivered_payload)}")
    print()

    # Attacked delivery: an impostor tries to receive the order without id_B.
    impostor_config = build_config(seed=32).with_attack_factory(
        lambda index, attempt, rng: ImpersonationAttack("bob", rng=rng)
    )
    attacked = MessagingService(impostor_config).send(payload)
    mismatches = [
        attempt.bob_authentication_error
        for fragment in attacked.fragments
        for attempt in fragment.attempts
        if attempt.bob_authentication_error is not None
    ]
    print("2) impostor broker (guesses the identity at random, every attempt)")
    print(f"   delivery succeeded : {attacked.success}")
    print(f"   abort reasons      : {attacked.abort_reasons()}")
    print(f"   identity mismatch  : "
          f"{sum(mismatches) / len(mismatches):.2f} mean over "
          f"{len(mismatches)} sessions (expected ≈ 0.75 for random guesses)")
    print(f"   order delivered    : {attacked.delivered_payload}")
    print()
    print("The impostor is rejected before the bank discloses which EPR pairs")
    print("carry the order, so no part of the transaction leaks; a genuine")
    print(f"identity of l=8 pairs detects impostors with probability "
          f"1-(1/4)^l = {ImpersonationAttack.detection_probability(8):.8f}.")


if __name__ == "__main__":
    main()
