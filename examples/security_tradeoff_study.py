"""Security trade-off study: ROC curves and the leakage/detection frontier.

Runs the ``fig_security`` scenario grid at a small size and walks through the
quantitative security analysis it produces:

* the ROC of the unified detection statistic for selected adversaries
  (printed as operating points; the AUC summarises separability);
* the information-leakage versus detection-probability frontier across the
  intercept-resend and entangle-measure strength sweeps — Eve's best
  achievable positions;
* the statistical power table: sessions an operator must watch before an
  adversary is caught with 95 % confidence;
* the finite-sample CHSH confidence bounds that justify the paper's choice
  of DI-round size.

Plots (``security_roc.png``, ``security_frontier.png``) are written when
matplotlib is installed; in minimal environments (like CI) the study prints
the same data as text and exits cleanly.

Run with::

    python examples/security_tradeoff_study.py
"""

from __future__ import annotations

from repro.experiments.fig_security import run_fig_security
from repro.experiments.report import render_security

ROC_SCENARIOS = ("intercept_resend@1", "entangle_measure@0.5", "classical_passive")


def try_plot(result) -> bool:
    """Write PNG plots when matplotlib is available; return True on success."""
    try:
        import matplotlib
    except ImportError:
        return False
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, axis = plt.subplots(figsize=(5, 4))
    for name in ROC_SCENARIOS:
        roc = result.point(name).roc
        if roc is None:
            continue
        axis.step(
            roc.false_positive_rates,
            roc.true_positive_rates,
            where="post",
            label=f"{name} (AUC {roc.auc:.2f})",
        )
    axis.plot([0, 1], [0, 1], ls="--", c="grey", lw=0.8)
    axis.set_xlabel("false-alarm rate (honest sessions)")
    axis.set_ylabel("detection rate (attacked sessions)")
    axis.set_title("ROC of the unified eavesdropping detector")
    axis.legend(loc="lower right", fontsize=8)
    figure.tight_layout()
    figure.savefig("security_roc.png", dpi=150)

    figure, axis = plt.subplots(figsize=(5, 4))
    swept = [p for p in result.points if p.information_gain is not None]
    axis.scatter(
        [p.information_gain for p in swept],
        [p.detection_rate for p in swept],
        c="tab:blue",
        label="strength sweep points",
    )
    frontier = result.frontier
    axis.plot(
        [p.information_gain for p in frontier],
        [p.detection_rate for p in frontier],
        "o-",
        c="tab:red",
        label="Eve-optimal frontier",
    )
    axis.set_xlabel("Eve's normalised information gain")
    axis.set_ylabel("per-session detection probability")
    axis.set_title("Information-leakage vs detection trade-off")
    axis.legend(loc="lower right", fontsize=8)
    figure.tight_layout()
    figure.savefig("security_frontier.png", dpi=150)
    return True


def main() -> None:
    result = run_fig_security(
        trials=5, check_pairs=48, identity_pairs=4, strengths=(0.25, 0.5, 1.0),
        seed=7,
    )
    print(render_security(result))

    print()
    print("ROC operating points (false-alarm -> detection):")
    for name in ROC_SCENARIOS:
        roc = result.point(name).roc
        pairs = ", ".join(
            f"{fpr:.2f}->{tpr:.2f}"
            for fpr, tpr in zip(roc.false_positive_rates, roc.true_positive_rates)
        )
        print(f"  {name:<24s} AUC={roc.auc:.3f}   {pairs}")

    print()
    if try_plot(result):
        print("wrote security_roc.png and security_frontier.png")
    else:
        print("matplotlib not installed — skipped PNG plots (text output above is complete)")


if __name__ == "__main__":
    main()
