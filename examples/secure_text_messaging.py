"""Secure text messaging over a noisy quantum channel.

The paper motivates UA-DI-QSDC with applications such as secure
communications between parties who must also be sure *who* they are talking
to.  This example sends a short ASCII text from Alice to Bob over the
η-identity-gate channel, shows the classical transcript an eavesdropper would
see (no message content), and verifies the received text.

Run with::

    python examples/secure_text_messaging.py
"""

from __future__ import annotations

from repro.attacks import ClassicalEavesdropper
from repro.channel.quantum_channel import IdentityChainChannel
from repro.protocol import Identity, ProtocolConfig, UADIQSDCProtocol


def text_to_bits(text: str) -> str:
    """Encode ASCII text as a bitstring (8 bits per character)."""
    return "".join(format(byte, "08b") for byte in text.encode("ascii"))


def bits_to_text(bits: str) -> str:
    """Decode a bitstring produced by :func:`text_to_bits`."""
    data = bytes(int(bits[i:i + 8], 2) for i in range(0, len(bits), 8))
    return data.decode("ascii", errors="replace")


def main() -> None:
    plaintext = "MEET 9PM"
    message_bits = text_to_bits(plaintext)

    # The pre-shared secrets both parties hold (2l bits each).
    alice_identity = Identity.from_string("1101001011010010", owner="alice")
    bob_identity = Identity.from_string("0011100101101100", owner="bob")

    config = ProtocolConfig(
        message_length=len(message_bits),
        num_check_bits=16,
        identity_pairs=alice_identity.num_pairs,
        check_pairs_per_round=256,
        channel=IdentityChainChannel(eta=50),   # a 3 µs channel
        alice_identity=alice_identity,
        bob_identity=bob_identity,
        seed=2024,
    )

    # A passive eavesdropper taps the public classical channel.
    eavesdropper = ClassicalEavesdropper(rng=1)
    result = UADIQSDCProtocol(config, attack=eavesdropper).run(message_bits)

    print("Secure text messaging with UA-DI-QSDC")
    print("=====================================")
    print(f"plaintext sent        : {plaintext!r} ({len(message_bits)} bits)")
    print(f"channel               : {config.channel.name} "
          f"({config.channel.duration() * 1e6:.1f} µs)")
    print(f"protocol succeeded    : {result.success}")
    if result.delivered_message_string is not None:
        received = bits_to_text(result.delivered_message_string)
        print(f"plaintext received    : {received!r}")
        print(f"bit errors            : {result.message_bit_error_rate:.4f}")
    print(f"CHSH round 1 / 2      : {result.chsh_round1.value:.3f} / "
          f"{result.chsh_round2.value:.3f}")
    print(f"identity checks       : Bob mismatch {result.bob_authentication_error:.2f}, "
          f"Alice mismatch {result.alice_authentication_error:.2f}")
    print()
    print("what the eavesdropper saw on the classical channel:")
    for topic in eavesdropper.overheard_topics():
        print(f"  - {topic}")
    print("  (no message-pair measurement outcomes are ever announced;")
    print("   the plaintext never appears on the classical channel)")


if __name__ == "__main__":
    main()
