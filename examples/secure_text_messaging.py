"""Secure text messaging over a noisy quantum channel.

The paper motivates UA-DI-QSDC with applications such as secure
communications between parties who must also be sure *who* they are talking
to.  This example sends a short text from Alice to Bob through the
:class:`~repro.api.service.MessagingService` facade over the η=50
identity-gate channel (the ≈3 µs NISQ link), shows the classical transcript a
passive eavesdropper would see (no message content), and verifies the
received text.

The text ↔ bit conversions come from the shared payload codec
(:mod:`repro.api.codec`) — the facade applies them automatically for ``str``
payloads; they are also importable for standalone use::

    from repro.api.codec import text_to_bits, bits_to_text

Run with::

    python examples/secure_text_messaging.py
"""

from __future__ import annotations

from repro import MessagingService, ServiceConfig
from repro.attacks import ClassicalEavesdropper
from repro.protocol import Identity


def main() -> None:
    plaintext = "MEET 9PM"

    # The pre-shared secrets both parties hold (2l bits each).
    alice_identity = Identity.from_string("1101001011010010", owner="alice")
    bob_identity = Identity.from_string("0011100101101100", owner="bob")

    # A passive eavesdropper taps the public classical channel of every
    # fragment session.
    eavesdropper = ClassicalEavesdropper(rng=1)

    # On the η=50 channel individual frames pick up bit errors the protocol's
    # check-bit tolerance lets through; the facade's CRC verification catches
    # them and retransmits, so the retry budget is what buys exact delivery.
    config = (
        ServiceConfig.noisy_nisq(seed=42)            # η=50 ≈ 3 µs channel
        .with_fragment_bits(32)
        .with_retries(12)
        .with_identities(alice_identity, bob_identity)
        .with_identity_pairs(alice_identity.num_pairs)
        .with_attack_factory(lambda index, attempt, rng: eavesdropper)
    )
    service = MessagingService(config)
    report = service.send(plaintext)

    print("Secure text messaging with UA-DI-QSDC")
    print("=====================================")
    print(f"plaintext sent        : {plaintext!r} ({report.num_payload_bits} bits, "
          f"{report.num_fragments} fragments)")
    print(f"channel               : {config.channel.name} "
          f"({config.channel.duration() * 1e6:.1f} µs)")
    print(f"delivery succeeded    : {report.success} "
          f"({report.total_attempts} sessions, "
          f"{report.retransmissions} retransmissions)")
    print(f"plaintext received    : {report.delivered_payload!r}")
    print(f"mean CHSH round 1     : {report.mean_chsh_round1:.3f}")
    print(f"mean check-bit QBER   : {report.mean_qber:.4f}")
    print()
    print("what the eavesdropper saw on the classical channel:")
    for topic in eavesdropper.overheard_topics():
        print(f"  - {topic}")
    print("  (no message-pair measurement outcomes are ever announced;")
    print("   the plaintext never appears on the classical channel)")


if __name__ == "__main__":
    main()
