"""Quickstart: send one authenticated, device-independent secure message.

Runs a single UA-DI-QSDC session with the paper's default parameters (η = 10
identity-gate channel, 8 identity pairs, 256 check pairs per DI round) and
prints what each protocol phase reported.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.protocol import ProtocolConfig, UADIQSDCProtocol


def main() -> None:
    message = "1011001110001111"

    config = ProtocolConfig.default(message_length=len(message), seed=7, eta=10)
    protocol = UADIQSDCProtocol(config)
    result = protocol.run(message)

    print("UA-DI-QSDC quickstart")
    print("=====================")
    print(f"channel                : {config.channel.name}")
    print(f"EPR pairs shared       : {config.total_pairs} "
          f"(message {config.num_message_pairs}, identity 2x{config.identity_pairs}, "
          f"DI checks 2x{config.check_pairs_per_round})")
    print(f"message sent           : {result.sent_message_string}")
    print(f"message delivered      : {result.delivered_message_string}")
    print(f"delivered correctly    : {result.message_delivered_correctly()}")
    print(f"CHSH round 1           : {result.chsh_round1.value:.3f} "
          f"(threshold {config.chsh_settings.threshold}, ideal 2.828)")
    print(f"CHSH round 2           : {result.chsh_round2.value:.3f}")
    print(f"Bob-identity mismatch  : {result.bob_authentication_error:.3f}")
    print(f"Alice-identity mismatch: {result.alice_authentication_error:.3f}")
    print(f"check-bit error rate   : {result.check_bit_error_rate:.3f}")
    print()
    print("phase-by-phase outcome:")
    for phase in result.phases:
        status = "ok" if phase.passed else "FAILED"
        print(f"  {phase.name:<24s} {status}   {phase.details}")


if __name__ == "__main__":
    main()
