"""Quickstart: send one authenticated, device-independent secure message.

The whole service API in three lines::

    from repro import MessagingService, ServiceConfig

    report = MessagingService(ServiceConfig.paper_default(seed=7)).send("hi Bob!")
    assert report.success

Below, the same send with the full :class:`~repro.api.report.DeliveryReport`
printed: how the payload was encoded and fragmented, what every protocol
session reported, and the security metrics of the delivery.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MessagingService, ServiceConfig


def main() -> None:
    service = MessagingService(
        ServiceConfig.paper_default(seed=7).with_fragment_bits(32)
    )
    report = service.send("hi Bob!")

    print("UA-DI-QSDC quickstart — MessagingService facade")
    print("===============================================")
    print(f"backend                : {report.backend}")
    print(f"payload sent           : {report.sent_payload!r} "
          f"({report.payload_kind}, {report.num_payload_bits} bits)")
    print(f"fragments              : {report.num_fragments} "
          f"(≤{service.config.fragment_bits} payload bits each + 64-bit frame header)")
    print(f"delivered              : {report.success}")
    print(f"payload received       : {report.delivered_payload!r}")
    print(f"protocol sessions run  : {report.total_attempts} "
          f"({report.retransmissions} retransmissions)")
    print(f"mean CHSH (round 1)    : {report.mean_chsh_round1:.3f} "
          f"(classical bound 2, ideal 2.828)")
    print(f"mean check-bit QBER    : {report.mean_qber:.3f}")
    print()
    print("per-fragment delivery:")
    for fragment in report.fragments:
        attempts = ", ".join(
            f"attempt {a.attempt}: "
            + ("ok" if a.success and a.frame_intact else a.abort_reason)
            for a in fragment.attempts
        )
        print(f"  fragment {fragment.index}  ({fragment.num_payload_bits} bits)  {attempts}")


if __name__ == "__main__":
    main()
