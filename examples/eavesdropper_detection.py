"""Eavesdropper detection, scenario-driven: every registered adversary vs the protocol.

Reproduces, at example scale, the §III/§IV security story through the
adversarial scenario engine: each canonical preset of
:mod:`repro.attacks.scenarios` — strength-parameterised channel attacks,
late-onset and intermittent schedules, impersonation, composed
multi-adversary stacks, source tampering and the passive classical tap — is
evaluated against full protocol sessions and its detection statistics
printed.  The declarative specs used here are exactly the ones
``ProtocolConfig.scenario``, ``ServiceConfig.with_scenario`` and network
``SessionRequest.scenario`` accept, so any line of the table can be replayed
on any execution layer.

Run with::

    python examples/eavesdropper_detection.py

Doctest sanity (the analytic anchors the table is checked against)::

    >>> from repro.attacks import ImpersonationAttack, SourceTamperAttack
    >>> round(ImpersonationAttack.detection_probability(8), 6)
    0.999985
    >>> round(SourceTamperAttack.critical_strength(), 3)
    0.293
"""

from __future__ import annotations

from repro import ServiceConfig
from repro.attacks import (
    ImpersonationAttack,
    evaluate_attack,
    list_scenarios,
)

MESSAGE = "1011001110001111"
TRIALS = 4


def main() -> None:
    # The per-session protocol parameters come from the service-level
    # builder: paper defaults (η=10 channel, l=8) with lighter DI rounds,
    # mapped onto a ProtocolConfig for the attack-evaluation harness.
    service_config = ServiceConfig.paper_default().with_check_pairs(64)
    config = service_config.protocol_config(message_length=len(MESSAGE), seed=0)

    print("Eavesdropper detection with UA-DI-QSDC — scenario registry sweep")
    print("================================================================")
    print(f"{'scenario':<30s} {'detected':>9s} {'delivered':>10s}  abort reasons")

    honest = evaluate_attack(config, None, MESSAGE, trials=TRIALS, rng=100)
    print(
        f"{'honest (no attack)':<30s} {honest.detection_rate:>8.0%} "
        f"{honest.messages_delivered:>10d}  {honest.abort_reasons or '-'}"
    )
    for index, (name, schedule, _description) in enumerate(list_scenarios()):
        evaluation = evaluate_attack(
            config, schedule.attack_factory(), MESSAGE, trials=TRIALS, rng=101 + index
        )
        print(
            f"{name:<30s} {evaluation.detection_rate:>8.0%} "
            f"{evaluation.messages_delivered:>10d}  {evaluation.abort_reasons or '-'}"
        )

    print()
    print("impersonation detection probability vs identity length l  (theory 1-(1/4)^l):")
    for identity_pairs in (1, 2, 4, 8):
        theoretical = ImpersonationAttack.detection_probability(identity_pairs)
        print(f"  l = {identity_pairs:<2d}  ->  {theoretical:.6f}")


if __name__ == "__main__":
    import doctest

    failures, _tests = doctest.testmod()
    if failures:
        raise SystemExit(f"{failures} doctest failure(s)")
    main()
