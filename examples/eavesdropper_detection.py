"""Eavesdropper detection: run every attack of the paper against the protocol.

Reproduces, at example scale, the §III/§IV security story: impersonation of
either party is caught by identity verification with probability
``1 − (1/4)^l``, and every channel attack (intercept-and-resend,
man-in-the-middle, entangle-and-measure) collapses the CHSH value of the DI
security check below the classical bound of 2.

Run with::

    python examples/eavesdropper_detection.py
"""

from __future__ import annotations

from repro import ServiceConfig
from repro.attacks import (
    EntangleMeasureAttack,
    ImpersonationAttack,
    InterceptResendAttack,
    ManInTheMiddleAttack,
    evaluate_attack,
)

MESSAGE = "1011001110001111"


def main() -> None:
    # The per-session protocol parameters come from the service-level
    # builder: paper defaults (η=10 channel, l=8) with lighter DI rounds,
    # mapped onto a ProtocolConfig for the attack-evaluation harness.
    service_config = ServiceConfig.paper_default().with_check_pairs(96)
    config = service_config.protocol_config(message_length=len(MESSAGE), seed=0)

    scenarios = {
        "honest session (no attack)": None,
        "Eve impersonates Bob": lambda rng: ImpersonationAttack("bob", rng=rng),
        "Eve impersonates Alice": lambda rng: ImpersonationAttack("alice", rng=rng),
        "intercept-and-resend": lambda rng: InterceptResendAttack(rng=rng),
        "man-in-the-middle": lambda rng: ManInTheMiddleAttack(rng=rng),
        "entangle-and-measure": lambda rng: EntangleMeasureAttack(strength=1.0, rng=rng),
    }

    print("Eavesdropper detection with UA-DI-QSDC")
    print("======================================")
    print(f"{'scenario':<30s} {'detected':>9s} {'delivered':>10s}  abort reasons")
    for index, (name, factory) in enumerate(scenarios.items()):
        evaluation = evaluate_attack(config, factory, MESSAGE, trials=6, rng=100 + index)
        print(
            f"{name:<30s} {evaluation.detection_rate:>8.0%} "
            f"{evaluation.messages_delivered:>10d}  {evaluation.abort_reasons or '-'}"
        )

    print()
    print("impersonation detection probability vs identity length l  (theory 1-(1/4)^l):")
    for identity_pairs in (1, 2, 4, 8):
        theoretical = ImpersonationAttack.detection_probability(identity_pairs)
        print(f"  l = {identity_pairs:<2d}  ->  {theoretical:.6f}")


if __name__ == "__main__":
    main()
