"""Secure messaging across a multi-node QSDC network.

The paper's protocol secures one Alice–Bob link; a deployment is a network
of users and trusted relays.  This example:

1. delivers one real payload corner to corner across a metro-style grid
   through the :class:`~repro.api.service.MessagingService` facade
   (network backend: every fragment is routed, admitted under per-node
   qubit-capacity constraints, and forwarded hop by hop with a full
   UA-DI-QSDC session per hop),
2. pushes a burst of Poisson traffic between random user pairs through the
   scheduler directly,
3. re-runs the same (seeded) traffic with one relay compromised by an
   intercept-resend attacker, showing the per-hop DI security check turning
   the compromise into session aborts.

Run with::

    python examples/network_messaging.py
"""

from __future__ import annotations

from repro import MessagingService, ServiceConfig
from repro.attacks import InterceptResendAttack
from repro.channel.quantum_channel import NoiselessChannel
from repro.experiments import render_result
from repro.network import (
    PoissonTraffic,
    SessionParameters,
    grid_topology,
    simulate_network,
)


def build_network(noiseless: bool = False):
    """A 3×3 grid; each node stores at most 220 qubit halves at a time."""
    factory = (lambda length: NoiselessChannel()) if noiseless else None
    return grid_topology(3, 3, channel_factory=factory, qubit_capacity=220)


def facade_delivery() -> None:
    """One payload, corner to corner, through the service facade.

    Relay nodes hold *two* qubit halves per EPR pair (one per adjacent hop),
    so this demo grid is provisioned with more memory than the traffic study
    below; check pairs per DI round are raised to keep the per-hop CHSH
    sampling variance low across the 4-hop route.
    """
    from repro.network import SessionParameters

    topology = grid_topology(
        3, 3, channel_factory=lambda length: NoiselessChannel(), qubit_capacity=512
    )
    config = (
        ServiceConfig.networked(topology, source="n0_0", seed=7)
        .with_fragment_bits(32)
        .with_retries(3)
        .with_executor("thread")
        .with_network(
            session_params=SessionParameters(identity_pairs=2, check_pairs_per_round=64)
        )
    )
    report = MessagingService(config).send("across the metro grid", to="n2_2")
    route = report.fragments[0].attempts[0].details["route"]

    print("=== Facade delivery (network backend) ===")
    print(f"payload          : {report.sent_payload!r} "
          f"({report.num_payload_bits} bits, {report.num_fragments} fragments)")
    print(f"route            : {' -> '.join(route)}")
    print(f"delivered        : {report.success} -> {report.delivered_payload!r}")
    print(f"sessions run     : {report.total_attempts} "
          f"({report.retransmissions} retransmissions)")
    if report.mean_chsh_round1 is not None:
        print(f"mean CHSH round 1: {report.mean_chsh_round1:.3f}")


def main() -> None:
    facade_delivery()

    params = SessionParameters(identity_pairs=2, check_pairs_per_round=32)
    traffic = PoissonTraffic(num_sessions=24, rate=400.0, message_length=8)

    print()
    print("=== Honest network ===")
    honest = simulate_network(
        build_network(),
        traffic,
        session_params=params,
        seed=2024,
        executor="thread",
    )
    print(render_result(honest))

    print()
    print("=== Same traffic, relay n1_1 compromised (intercept-resend) ===")
    compromised_network = build_network()
    compromised_network.compromise(
        "n1_1", lambda rng: InterceptResendAttack(rng=rng)
    )
    compromised = simulate_network(
        compromised_network,
        traffic,
        session_params=params,
        seed=2024,
        executor="thread",
    )
    print(render_result(compromised))

    touched = [
        record
        for record in compromised.records
        if record.route_nodes and "n1_1" in record.route_nodes
    ]
    aborted = [record for record in touched if record.status == "aborted"]
    print()
    print(
        f"{len(touched)} sessions were routed through the compromised relay; "
        f"{len(aborted)} of them were stopped by the per-hop security checks."
    )
    if touched:
        rate = len(aborted) / len(touched)
        print(f"Detection rate at the compromised relay: {rate:.2f}")


if __name__ == "__main__":
    main()
