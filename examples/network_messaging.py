"""Secure messaging across a multi-node QSDC network.

The paper's protocol secures one Alice–Bob link; a deployment is a network
of users and trusted relays.  This example:

1. builds a small metro-style grid where every node can hold a bounded
   number of EPR-pair halves,
2. pushes a burst of Poisson traffic between random user pairs — each
   network hop runs the complete UA-DI-QSDC protocol and relays re-encode
   the decoded bits,
3. re-runs the same (seeded) traffic with one relay compromised by an
   intercept-resend attacker, showing the per-hop DI security check turning
   the compromise into session aborts.

Run with::

    python examples/network_messaging.py
"""

from __future__ import annotations

from repro.attacks import InterceptResendAttack
from repro.experiments import render_result
from repro.network import (
    PoissonTraffic,
    SessionParameters,
    grid_topology,
    simulate_network,
)


def build_network():
    """A 3×3 grid; each node stores at most 220 qubit halves at a time."""
    return grid_topology(3, 3, qubit_capacity=220)


def main() -> None:
    params = SessionParameters(identity_pairs=2, check_pairs_per_round=32)
    traffic = PoissonTraffic(num_sessions=24, rate=400.0, message_length=8)

    print("=== Honest network ===")
    honest = simulate_network(
        build_network(),
        traffic,
        session_params=params,
        seed=2024,
        executor="thread",
    )
    print(render_result(honest))

    print()
    print("=== Same traffic, relay n1_1 compromised (intercept-resend) ===")
    compromised_network = build_network()
    compromised_network.compromise(
        "n1_1", lambda rng: InterceptResendAttack(rng=rng)
    )
    compromised = simulate_network(
        compromised_network,
        traffic,
        session_params=params,
        seed=2024,
        executor="thread",
    )
    print(render_result(compromised))

    touched = [
        record
        for record in compromised.records
        if record.route_nodes and "n1_1" in record.route_nodes
    ]
    aborted = [record for record in touched if record.status == "aborted"]
    print()
    print(
        f"{len(touched)} sessions were routed through the compromised relay; "
        f"{len(aborted)} of them were stopped by the per-hop security checks."
    )
    if touched:
        rate = len(aborted) / len(touched)
        print(f"Detection rate at the compromised relay: {rate:.2f}")


if __name__ == "__main__":
    main()
