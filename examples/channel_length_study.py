"""Channel-length study: how far can the protocol reach on NISQ hardware?

Reproduces the spirit of Fig. 3 through the public API and extends it with the
DI-security viewpoint: besides the accuracy of Bob's Bell measurement, the
analytic CHSH value of the transmitted pairs is tracked, showing that the
device-independent checks constrain the usable channel length *before* the
60 %-accuracy criterion does.

Run with::

    python examples/channel_length_study.py
"""

from __future__ import annotations

from repro import MessagingService, ServiceConfig
from repro.analysis.chsh_analysis import chsh_threshold_eta, chsh_vs_channel_length
from repro.experiments import run_fig3


def service_viewpoint() -> None:
    """What channel length means for a *service*: retries, then failure.

    The same payload is sent through the messaging facade at increasing η.
    Near the paper's operating point the delivery is clean; as the channel
    lengthens, accumulated bit errors defeat the frame CRC (and eventually
    the DI checks themselves), the retry budget is exhausted and the send
    fails outright — the service-level face of the accuracy/CHSH decay
    measured below.
    """
    print("service viewpoint: one 3-byte payload vs channel length")
    print(f"{'eta':>6s} {'delivered':>10s} {'sessions':>9s} {'retries':>8s} {'mean QBER':>10s}")
    for eta in (10, 400, 1500):
        config = (
            ServiceConfig.noisy_nisq(seed=99, eta=eta)
            .with_identity_pairs(2)
            .with_check_pairs(48)
            .with_fragment_bits(24)
            .with_retries(2)
        )
        report = MessagingService(config).send(b"qsd")
        qber = "n/a" if report.mean_qber is None else f"{report.mean_qber:.3f}"
        print(
            f"{eta:>6d} {str(report.success):>10s} {report.total_attempts:>9d} "
            f"{report.retransmissions:>8d} {qber:>10s}"
        )
    print()


def main() -> None:
    service_viewpoint()
    etas = [10, 100, 200, 300, 400, 500, 600, 700, 1000, 1500]

    print("Channel-length study (ibm_brisbane device model)")
    print("================================================")
    result = run_fig3(etas=etas, shots=384, messages=("00", "11"), seed=11)
    chsh_curve = dict(chsh_vs_channel_length(etas))

    print(f"{'eta':>6s} {'duration (µs)':>14s} {'accuracy':>9s} {'analytic CHSH':>14s}")
    for point in result.points:
        marker = "  <-- CHSH below classical bound" if chsh_curve[point.eta] <= 2 else ""
        print(
            f"{point.eta:>6d} {point.duration * 1e6:>14.1f} {point.accuracy:>9.3f} "
            f"{chsh_curve[point.eta]:>14.3f}{marker}"
        )

    crossing = result.crossing(threshold=0.6)
    di_limit = chsh_threshold_eta(max_eta=20000, step=50)
    fit = result.decay_fit()

    print()
    print(f"accuracy decay constant (fit)     : eta0 ≈ {fit['eta0']:.0f} gates")
    print(f"accuracy drops below 60% at       : eta ≈ "
          f"{crossing:.0f}" if crossing else "accuracy stays above 60% in this sweep")
    print(f"CHSH reaches classical bound at   : eta ≈ {di_limit} gates")
    print()
    print("Interpretation: the DI security checks (CHSH > 2) limit the channel")
    print("length more strictly than the raw decoding accuracy does, so a")
    print("deployment should budget its channel below the CHSH limit and use")
    print("error mitigation to push both limits outward (paper §IV-B).")


if __name__ == "__main__":
    main()
