"""Telemetry test fixtures: guarantee no session leaks between tests."""

from __future__ import annotations

import pytest

from repro.telemetry import runtime


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Fail-safe: stop any session a test left active (and flag nothing)."""
    yield
    if runtime.enabled():
        runtime.stop()
