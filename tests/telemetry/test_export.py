"""Exporter tests: Chrome trace events, folded stacks, summaries, diffs.

The Chrome-trace schema round-trip is property-based (Hypothesis): any span
tree the tracer can legally produce exports to a ``traceEvents`` list that
is valid JSON, covers every span exactly once, and preserves ids, parents,
names and (scaled) timings through ``json.dumps``/``loads``.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry.export import (
    TraceDocument,
    diff_documents,
    span_rollup,
    summarize,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.telemetry.spans import ROOT_SPAN_ID, Span

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

SETTINGS = settings(max_examples=100, deadline=None, derandomize=True)


def _document(spans: list[Span], unit: str = "ticks") -> TraceDocument:
    return TraceDocument(clock_kind=unit, clock_unit=unit, spans=spans)


def _tree() -> TraceDocument:
    return _document(
        [
            Span(span_id=0, parent_id=None, name="trace", category="root", start=0.0, end=10.0),
            Span(span_id=1, parent_id=0, name="send", category="service", start=1.0, end=9.0),
            Span(span_id=2, parent_id=1, name="phase.a", category="phase", start=2.0, end=5.0),
            Span(span_id=3, parent_id=1, name="phase.b", category="phase", start=5.0, end=8.0),
        ]
    )


# -- Hypothesis: random span forests ------------------------------------------------
@st.composite
def span_lists(draw) -> list[Span]:
    """A root span plus children whose parents always precede them."""
    count = draw(st.integers(min_value=0, max_value=12))
    spans = [
        Span(span_id=ROOT_SPAN_ID, parent_id=None, name="trace", category="root",
             start=0.0, end=float(draw(st.integers(min_value=0, max_value=1000))))
    ]
    for index in range(1, count + 1):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        start = float(draw(st.integers(min_value=0, max_value=500)))
        length = float(draw(st.integers(min_value=0, max_value=500)))
        spans.append(
            Span(
                span_id=index,
                parent_id=parent,
                name=draw(st.sampled_from(["send", "phase.x", "hop", "sim"])),
                category=draw(st.sampled_from(["service", "phase", "network"])),
                start=start,
                end=start + length,
                thread=draw(st.integers(min_value=0, max_value=3)),
                attributes={"k": draw(st.integers(min_value=-5, max_value=5))},
            )
        )
    return spans


class TestChromeTrace:
    @SETTINGS
    @given(spans=span_lists(), unit=st.sampled_from(["s", "ticks"]))
    def test_round_trip_preserves_every_span(self, spans, unit):
        document = TraceDocument(clock_kind=unit, clock_unit=unit, spans=spans)
        chrome = json.loads(json.dumps(to_chrome_trace(document)))
        events = chrome["traceEvents"]
        assert len(events) == len(spans)
        scale = 1e6 if unit == "s" else 1.0
        by_id = {event["args"]["span_id"]: event for event in events}
        for span in spans:
            event = by_id[span.span_id]
            assert event["name"] == span.name
            assert event["cat"] == span.category
            assert event["ph"] == "X"
            assert event["args"]["parent_id"] == span.parent_id
            assert event["ts"] == pytest.approx(span.start * scale)
            assert event["dur"] == pytest.approx(span.duration * scale)

    @SETTINGS
    @given(spans=span_lists())
    def test_native_document_round_trip(self, spans):
        document = _document(spans)
        text = document.dumps()
        clone = TraceDocument.loads(text)
        assert clone.dumps() == text
        assert [s.to_dict() for s in clone.spans] == [s.to_dict() for s in spans]

    def test_loads_rejects_non_documents(self):
        with pytest.raises(TelemetryError):
            TraceDocument.loads("[1, 2, 3]")
        with pytest.raises(TelemetryError):
            TraceDocument.loads("{not json")


class TestFoldedStacks:
    def test_self_time_subtracts_children(self):
        folded = to_folded_stacks(_tree())
        lines = dict(
            line.rsplit(" ", 1) for line in folded.splitlines()
        )
        assert lines["trace"] == "2"  # 10 - 8
        assert lines["trace;send"] == "2"  # 8 - (3 + 3)
        assert lines["trace;send;phase.a"] == "3"
        assert lines["trace;send;phase.b"] == "3"

    def test_seconds_scale_to_microseconds(self):
        document = TraceDocument(
            clock_kind="wall",
            clock_unit="s",
            spans=[
                Span(span_id=0, parent_id=None, name="trace", category="root",
                     start=0.0, end=0.001)
            ],
        )
        assert to_folded_stacks(document) == "trace 1000"


class TestSummaryAndDiff:
    def test_summary_lists_tree_and_metrics(self):
        document = _tree()
        document.metrics = {
            "counters": {"hits": {"": 3.0}},
            "gauges": {},
            "histograms": {},
            "dropped_series": 0,
        }
        text = summarize(document)
        assert "send" in text and "phase.a" in text
        assert "hits = 3" in text

    def test_rollup_aggregates_by_name(self):
        rollup = span_rollup(_tree())
        assert rollup["phase.a"]["count"] == 1
        assert rollup["send"]["total"] == 8.0

    def test_diff_reports_count_and_counter_deltas(self):
        before, after = _tree(), _tree()
        after.spans.append(
            Span(span_id=4, parent_id=1, name="phase.b", category="phase",
                 start=8.0, end=9.0)
        )
        before.metrics = {"counters": {"retries": {"": 1.0}}}
        after.metrics = {"counters": {"retries": {"": 4.0}}}
        text = diff_documents(before, after)
        assert "phase.b: count 1 -> 2 (+1)" in text
        assert "retries: 1 -> 4 (+3)" in text

    def test_root_is_required(self):
        with pytest.raises(TelemetryError):
            _document([Span(span_id=1, parent_id=0, name="x")]).root()
