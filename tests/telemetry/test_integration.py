"""Integration tests: tracing the real service/network stacks.

The three guarantees the ISSUE pins:

* **Determinism** — a fixed-seed workload traced with the tick clock under
  the serial executor produces a byte-identical trace document every run;
* **Disabled-mode bit-identity** — results with telemetry on equal results
  with telemetry off (tracing observes, never perturbs);
* **Coverage** — a network simulation's trace covers every executed session,
  every hop and every protocol phase.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.api.config import ServiceConfig
from repro.api.service import MessagingService
from repro.experiments.network_scale import run_network_scale


def _traced_send(payload: str) -> tuple:
    service = MessagingService(ServiceConfig.ideal(seed=11))
    with telemetry.capture(clock="ticks") as session:
        report = service.send(payload)
    return report, session.document


class TestDeterminism:
    def test_identical_sends_yield_byte_identical_traces(self):
        report_a, doc_a = _traced_send("determinism")
        report_b, doc_b = _traced_send("determinism")
        assert report_a.delivered_payload == report_b.delivered_payload
        assert doc_a.dumps() == doc_b.dumps()

    def test_network_trace_is_deterministic_under_serial_executor(self):
        def run():
            with telemetry.capture(clock="ticks") as session:
                run_network_scale(
                    rows=2,
                    cols=2,
                    num_sessions=4,
                    message_length=4,
                    check_pairs=8,
                    qubit_capacity=200,
                    executor="serial",
                    seed=3,
                )
            return session.document.dumps()

        assert run() == run()


class TestDisabledModeBitIdentity:
    def test_send_results_identical_with_and_without_telemetry(self):
        service = MessagingService(ServiceConfig.ideal(seed=23))
        plain = service.send("bit identical")
        with telemetry.capture():
            traced = service.send("bit identical")
        assert plain.success == traced.success
        assert plain.delivered_payload == traced.delivered_payload
        assert plain.num_fragments == traced.num_fragments
        assert [f.delivered for f in plain.fragments] == [
            f.delivered for f in traced.fragments
        ]

    def test_network_results_identical_with_and_without_telemetry(self):
        kwargs = dict(
            rows=2,
            cols=2,
            num_sessions=3,
            message_length=4,
            check_pairs=8,
            qubit_capacity=200,
            executor="serial",
            seed=5,
        )
        plain = run_network_scale(**kwargs)
        with telemetry.capture():
            traced = run_network_scale(**kwargs)
        assert [r.summary() for r in plain.records] == [
            r.summary() for r in traced.records
        ]


class TestCoverage:
    @pytest.fixture(scope="class")
    def network_trace(self):
        with telemetry.capture(clock="ticks") as session:
            result = run_network_scale(
                rows=2,
                cols=2,
                num_sessions=5,
                message_length=4,
                check_pairs=8,
                qubit_capacity=200,
                executor="serial",
                seed=9,
            )
        yield result, session.document

    def test_every_executed_session_has_a_span(self, network_trace):
        result, document = network_trace
        executed = {
            record.session_id
            for record in result.records
            if record.status is not None and record.hop_reports
        }
        traced = {
            span.attributes["session_id"]
            for span in document.spans
            if span.name == "network.session"
        }
        assert executed and traced == executed

    def test_every_hop_has_a_span(self, network_trace):
        result, document = network_trace
        expected_hops = sum(
            len(record.hop_reports) for record in result.records
        )
        hop_spans = [s for s in document.spans if s.name == "network.hop"]
        assert len(hop_spans) == expected_hops

    def test_hops_nest_in_sessions_and_phases_in_protocol_sessions(self, network_trace):
        _, document = network_trace
        by_id = {span.span_id: span for span in document.spans}
        hop_spans = [s for s in document.spans if s.name == "network.hop"]
        assert hop_spans
        for hop in hop_spans:
            assert by_id[hop.parent_id].name == "network.session"
        phase_spans = [s for s in document.spans if s.name.startswith("phase.")]
        assert phase_spans
        for phase in phase_spans:
            assert by_id[phase.parent_id].name == "protocol.session"

    def test_every_protocol_session_records_its_phases(self, network_trace):
        _, document = network_trace
        children = document.children_index()
        protocol_spans = [
            s for s in document.spans if s.name == "protocol.session"
        ]
        assert protocol_spans
        for span in protocol_spans:
            phases = [
                child.name
                for child in children[span.span_id]
                if child.name.startswith("phase.")
            ]
            # Every session at least shares entanglement and runs the first
            # DI check before any abort can terminate it.
            assert "phase.entanglement_sharing" in phases
            assert "phase.round1_security_check" in phases

    def test_scheduler_metrics_present(self, network_trace):
        _, document = network_trace
        counters = document.metrics["counters"]
        assert counters["scheduler.admitted"][""] >= 1


class TestArtifactAttachment:
    def test_traced_experiment_attaches_rollup_and_metrics(self):
        from repro.artifacts import last_artifact
        from repro.experiments.registry import get_experiment

        experiment = get_experiment("e2e")
        with telemetry.capture():
            experiment.run(quick=True)
        artifact = last_artifact("e2e")
        attachment = artifact.timings["telemetry"]
        assert "service.send" in attachment["spans"]
        assert "counters" in attachment["metrics"]

    def test_untraced_experiment_has_no_attachment_and_same_canonical_payload(self):
        from repro.artifacts import last_artifact
        from repro.experiments.registry import get_experiment

        experiment = get_experiment("e2e")
        experiment.run(quick=True)
        plain = last_artifact("e2e")
        assert "telemetry" not in plain.timings
        with telemetry.capture():
            experiment.run(quick=True)
        traced = last_artifact("e2e")
        assert plain.canonical_payload() == traced.canonical_payload()
