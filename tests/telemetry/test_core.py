"""Unit tests for the telemetry core: clocks, spans, tracer, metrics, runtime."""

from __future__ import annotations

import threading

import pytest

from repro import telemetry
from repro.exceptions import TelemetryError
from repro.telemetry import runtime
from repro.telemetry.clock import TickClock, WallClock, resolve_clock
from repro.telemetry.metrics import OVERFLOW_LABELS, MetricsRegistry
from repro.telemetry.spans import ROOT_SPAN_ID, Span
from repro.telemetry.tracer import Tracer


# -- clocks ------------------------------------------------------------------------
class TestClocks:
    def test_wall_clock_is_monotonic_and_origin_shifted(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert 0.0 <= first <= second

    def test_tick_clock_advances_one_resolution_per_observation(self):
        clock = TickClock()
        assert [clock.now() for _ in range(4)] == [0.0, 1.0, 2.0, 3.0]

    def test_tick_clock_custom_resolution(self):
        clock = TickClock(resolution=0.5)
        assert [clock.now() for _ in range(3)] == [0.0, 0.5, 1.0]

    def test_resolve_clock_specs(self):
        assert resolve_clock(None).kind == "wall"
        assert resolve_clock("wall").kind == "wall"
        assert resolve_clock("ticks").kind == "ticks"
        instance = TickClock()
        assert resolve_clock(instance) is instance
        with pytest.raises(ValueError):
            resolve_clock("lamport")


# -- spans -------------------------------------------------------------------------
class TestSpan:
    def test_round_trip(self):
        span = Span(
            span_id=3,
            parent_id=1,
            name="phase.encoding",
            category="phase",
            start=1.0,
            end=4.0,
            thread=2,
            attributes={"passed": True},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_open_span_duration_is_zero(self):
        assert Span(span_id=1, parent_id=0, name="x").duration == 0.0


# -- tracer ------------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parents(self):
        tracer = Tracer(TickClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_span() is outer
        spans = tracer.finish()
        assert spans[0].span_id == ROOT_SPAN_ID
        assert outer.parent_id == ROOT_SPAN_ID
        # Commit order: innermost closes first.
        assert [s.name for s in spans] == ["trace", "inner", "outer"]

    def test_exception_records_error_attribute_and_reraises(self):
        tracer = Tracer(TickClock())
        with pytest.raises(ValueError):
            with tracer.span("work") as span:
                raise ValueError("boom")
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None

    def test_worker_thread_spans_attach_to_root(self):
        tracer = Tracer(TickClock())
        seen = {}

        def work():
            with tracer.span("threaded") as span:
                seen["parent"] = span.parent_id
                seen["thread"] = span.thread

        with tracer.span("main"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert seen["parent"] == ROOT_SPAN_ID
        assert seen["thread"] != tracer.root.thread

    def test_record_with_explicit_bounds(self):
        tracer = Tracer(TickClock())
        span = tracer.record("phase.hold", "phase", start=2.0, end=5.0)
        assert span.start == 2.0 and span.end == 5.0 and span.duration == 3.0

    def test_identical_workloads_yield_identical_traces(self):
        def workload(tracer):
            with tracer.span("a"):
                with tracer.span("b", attributes={"k": 1}):
                    pass
                tracer.event("marker")
            return [s.to_dict() for s in tracer.finish()]

        assert workload(Tracer(TickClock())) == workload(Tracer(TickClock()))


# -- metrics -----------------------------------------------------------------------
class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("hits", 2, backend="dense")
        registry.inc("hits", backend="dense")
        registry.set_gauge("depth", 7)
        registry.set_gauge("depth", 3)
        registry.observe("latency", 0.5)
        registry.observe("latency", 2.0)
        snap = registry.snapshot()
        assert snap["counters"]["hits"]["backend=dense"] == 3.0
        assert snap["gauges"]["depth"][""] == 3.0
        histogram = snap["histograms"]["latency"][""]
        assert histogram["count"] == 2
        assert histogram["sum"] == 2.5
        assert histogram["min"] == 0.5 and histogram["max"] == 2.0

    def test_cardinality_guard_collapses_into_overflow(self):
        registry = MetricsRegistry(max_series=3)
        for index in range(10):
            registry.inc("sessions", session=index)
        snap = registry.snapshot()
        series = snap["counters"]["sessions"]
        overflow_label = ",".join(f"{k}={v}" for k, v in OVERFLOW_LABELS)
        assert len(series) == 4  # 3 real + overflow
        assert series[overflow_label] == 7.0
        assert snap["dropped_series"] == 7

    def test_existing_series_keep_updating_past_the_cap(self):
        registry = MetricsRegistry(max_series=1)
        registry.inc("n", tag="a")
        registry.inc("n", tag="b")  # overflows
        registry.inc("n", tag="a")  # existing series still updates
        assert registry.counter_value("n", tag="a") == 2.0

    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("z", 1, b="2", a="1")
            registry.inc("a", 5)
            registry.observe("h", 3.0, kind="x")
            return registry.snapshot()

        assert build() == build()

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series=0)


# -- runtime -----------------------------------------------------------------------
class TestRuntime:
    def test_disabled_helpers_are_noops(self):
        assert not runtime.enabled()
        assert runtime.clock_mark() is None
        assert runtime.record_span("x") is None
        assert runtime.event("x") is None
        assert runtime.current_trace_id() is None
        runtime.counter_inc("x")
        runtime.gauge_set("x", 1.0)
        runtime.observe("x", 1.0)
        with runtime.span("x") as span:
            span.attributes["ignored"] = True  # discarded, not accumulated
        assert span.attributes == {}

    def test_capture_produces_document_and_deactivates(self):
        with telemetry.capture(clock="ticks") as session:
            with runtime.span("work"):
                runtime.counter_inc("count")
            assert runtime.enabled()
        assert not runtime.enabled()
        doc = session.document
        assert [s.name for s in doc.spans] == ["trace", "work"]
        assert doc.metrics["counters"]["count"][""] == 1.0
        assert doc.clock_kind == "ticks"

    def test_double_start_raises(self):
        runtime.start()
        try:
            with pytest.raises(TelemetryError):
                runtime.start()
        finally:
            runtime.stop()

    def test_stop_without_session_raises(self):
        with pytest.raises(TelemetryError):
            runtime.stop()

    def test_current_trace_id_tracks_innermost_span(self):
        with telemetry.capture(clock="ticks") as session:
            root_id = runtime.current_trace_id()
            with runtime.span("outer") as outer:
                assert runtime.current_trace_id() == outer.span_id
        assert root_id == session.tracer.root.span_id

    def test_propagator_cache_counters_fold_into_snapshot(self):
        from repro.quantum.batch import PropagatorCache, compile_unitary
        from repro.quantum.circuit import QuantumCircuit

        cache = PropagatorCache()
        circuit = QuantumCircuit(1)
        circuit.h(0)
        with telemetry.capture(clock="ticks") as session:
            compile_unitary(circuit, cache)  # miss
            compile_unitary(circuit, cache)  # hit
        counters = session.document.metrics["counters"]
        assert counters["propagator_cache.hits"][""] == 1.0
        assert counters["propagator_cache.misses"][""] == 1.0

    def test_cache_activity_before_session_is_not_counted(self):
        from repro.quantum.batch import PropagatorCache, compile_unitary
        from repro.quantum.circuit import QuantumCircuit

        cache = PropagatorCache()
        circuit = QuantumCircuit(1)
        circuit.h(0)
        compile_unitary(circuit, cache)  # miss outside any session
        with telemetry.capture(clock="ticks") as session:
            pass
        counters = session.document.metrics["counters"]
        assert "propagator_cache.misses" not in counters

    def test_propagator_cache_eviction_counter(self):
        from repro.quantum.batch import PropagatorCache, compile_unitary
        from repro.quantum.circuit import QuantumCircuit

        cache = PropagatorCache(max_entries=1)
        for angle_index in range(3):
            circuit = QuantumCircuit(1)
            for _ in range(angle_index + 1):
                circuit.h(0)
            compile_unitary(circuit, cache)
        assert cache.evictions > 0
        assert cache.bytes_in_use >= 0
