"""CLI tests for ``python -m repro.telemetry``: commands and exit codes."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry.cli import main


@pytest.fixture
def trace_file(tmp_path):
    with telemetry.capture(clock="ticks") as session:
        with telemetry.span("service.send", "service"):
            with telemetry.span("phase.encoding", "phase"):
                telemetry.counter_inc("service.fragment_attempts")
    path = tmp_path / "trace.json"
    path.write_text(session.document.dumps(), encoding="utf-8")
    return path


class TestSummarize:
    def test_prints_span_tree(self, trace_file, capsys):
        assert main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "service.send" in out
        assert "phase.encoding" in out
        assert "service.fragment_attempts" in out

    def test_max_depth_limits_tree(self, trace_file, capsys):
        assert main(["summarize", str(trace_file), "--max-depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "service.send" in out
        assert "phase.encoding" not in out


class TestExport:
    def test_chrome_export_parses_as_trace_events(self, trace_file, tmp_path, capsys):
        output = tmp_path / "chrome.json"
        assert main(["export", str(trace_file), "-o", str(output)]) == 0
        chrome = json.loads(output.read_text(encoding="utf-8"))
        assert {event["name"] for event in chrome["traceEvents"]} == {
            "trace",
            "service.send",
            "phase.encoding",
        }
        assert all(event["ph"] == "X" for event in chrome["traceEvents"])

    def test_folded_export(self, trace_file, capsys):
        assert main(["export", str(trace_file), "--format", "folded"]) == 0
        out = capsys.readouterr().out
        assert "trace;service.send;phase.encoding" in out

    def test_summary_export_to_stdout(self, trace_file, capsys):
        assert main(["export", str(trace_file), "--format", "summary"]) == 0
        assert "service.send" in capsys.readouterr().out


class TestDiff:
    def test_diff_of_identical_traces_shows_equality(self, trace_file, capsys):
        assert main(["diff", str(trace_file), str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "= service.send" in out
        assert "~" not in out.replace("->", "")


class TestExitCodes:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["summarize", str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_malformed_trace_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"spans\": \"nope\"", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["summarize", str(bad)])
        assert excinfo.value.code == 1

    def test_valid_json_non_document_exits_1(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["export", str(bad)])
        assert excinfo.value.code == 1

    def test_unknown_command_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
