"""Tests for the quantitative security-analysis layer (`repro.analysis.security`)."""

import math

import pytest

from repro.analysis.security import (
    RocCurve,
    TradeoffPoint,
    binomial_test_power,
    chsh_epsilon,
    chsh_lower_bound,
    detection_power,
    detection_roc,
    pairs_for_chsh_epsilon,
    sessions_for_detection,
    sessions_for_power,
    tradeoff_frontier,
)
from repro.exceptions import ReproError


class TestDetectionRoc:
    def test_monotone_rates(self):
        # ROC curves must be monotone in the threshold whatever the samples.
        honest = [2.9, 2.7, 2.8, 2.6, 2.75, 2.5]
        attacked = [1.9, 2.1, 1.5, 2.0, 1.8, 2.6]
        roc = detection_roc(honest, attacked)
        assert list(roc.false_positive_rates) == sorted(roc.false_positive_rates)
        assert list(roc.true_positive_rates) == sorted(roc.true_positive_rates)
        assert roc.false_positive_rates[-1] == 1.0
        assert roc.true_positive_rates[-1] == 1.0

    def test_perfect_separation_gives_auc_one(self):
        roc = detection_roc([2.8, 2.7, 2.9], [1.0, 1.5, 1.9])
        assert roc.auc == 1.0
        assert roc.detection_at_false_alarm(0.0) == 1.0

    def test_identical_distributions_give_auc_half(self):
        roc = detection_roc([2.0, 2.5, 3.0], [2.0, 2.5, 3.0])
        assert roc.auc == pytest.approx(0.5)

    def test_inverted_separation_gives_auc_zero(self):
        roc = detection_roc([1.0, 1.2], [2.5, 2.8])
        assert roc.auc == 0.0

    def test_detection_at_false_alarm_is_best_feasible(self):
        roc = RocCurve(
            thresholds=(1.0, 2.0, 3.0),
            false_positive_rates=(0.0, 0.1, 1.0),
            true_positive_rates=(0.5, 0.9, 1.0),
            auc=0.9,
        )
        assert roc.detection_at_false_alarm(0.05) == 0.5
        assert roc.detection_at_false_alarm(0.1) == 0.9
        assert roc.detection_at_false_alarm(1.0) == 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ReproError):
            detection_roc([], [1.0])
        with pytest.raises(ReproError):
            detection_roc([1.0], [])


class TestDetectionPower:
    def test_power_monotone_in_sessions(self):
        powers = [detection_power(0.3, n) for n in range(1, 20)]
        assert powers == sorted(powers)
        assert powers[0] == pytest.approx(0.3)

    def test_certain_detection(self):
        assert detection_power(1.0, 1) == 1.0
        assert detection_power(0.0, 100) == 0.0

    def test_sessions_for_detection_inverts_power(self):
        for rate in (0.1, 0.3, 0.65, 0.9):
            sessions = sessions_for_detection(rate, 0.95)
            assert detection_power(rate, sessions) >= 0.95
            if sessions > 1:
                assert detection_power(rate, sessions - 1) < 0.95

    def test_undetectable_attack_has_no_sample_size(self):
        assert sessions_for_detection(0.0, 0.95) is None
        assert sessions_for_detection(1.0, 0.95) == 1

    def test_binomial_power_monotone_in_sessions_and_effect(self):
        powers = [binomial_test_power(0.05, 0.5, n) for n in (5, 10, 20, 50)]
        assert powers == sorted(powers)
        weak = binomial_test_power(0.05, 0.2, 30)
        strong = binomial_test_power(0.05, 0.8, 30)
        assert strong > weak

    def test_sessions_for_power_reaches_target(self):
        sessions = sessions_for_power(0.05, 0.5, power=0.9)
        assert binomial_test_power(0.05, 0.5, sessions) >= 0.88
        with pytest.raises(ReproError):
            sessions_for_power(0.5, 0.3)

    def test_deterministic_attack_rate_power_is_one(self):
        assert binomial_test_power(0.05, 1.0, 3) == 1.0


class TestTradeoffFrontier:
    def test_dominated_points_removed(self):
        points = [
            TradeoffPoint("weak", information_gain=0.2, detection_rate=0.3),
            TradeoffPoint("dominated", information_gain=0.2, detection_rate=0.8),
            TradeoffPoint("strong", information_gain=1.0, detection_rate=1.0),
            TradeoffPoint("worse", information_gain=0.8, detection_rate=1.0),
        ]
        frontier = tradeoff_frontier(points)
        labels = [point.label for point in frontier]
        assert "dominated" not in labels
        assert "worse" not in labels
        assert labels == ["weak", "strong"]

    def test_sorted_by_detection_rate(self):
        points = [
            TradeoffPoint("c", 1.0, 0.9),
            TradeoffPoint("a", 0.1, 0.0),
            TradeoffPoint("b", 0.5, 0.4),
        ]
        frontier = tradeoff_frontier(points)
        rates = [point.detection_rate for point in frontier]
        assert rates == sorted(rates)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            tradeoff_frontier([])


class TestChshBounds:
    def test_epsilon_shrinks_with_pairs(self):
        widths = [chsh_epsilon(pairs) for pairs in (16, 64, 256, 1024, 4096)]
        assert widths == sorted(widths, reverse=True)

    def test_epsilon_grows_with_confidence(self):
        assert chsh_epsilon(256, 0.99) > chsh_epsilon(256, 0.9)

    def test_lower_bound_is_estimate_minus_epsilon(self):
        estimate = 2.0 * math.sqrt(2.0)
        assert chsh_lower_bound(estimate, 256) == pytest.approx(
            estimate - chsh_epsilon(256)
        )

    def test_pairs_for_epsilon_inverts_epsilon(self):
        for target in (0.2, 0.5, 1.0):
            pairs = pairs_for_chsh_epsilon(target)
            assert chsh_epsilon(pairs) <= target
            # one fewer pair per setting should overshoot the target width
            assert chsh_epsilon(max(4, pairs - 8)) > target * 0.95

    def test_paper_round_size_context(self):
        # The paper's d = 256 check pairs give a ±1.6-ish 95% half-width:
        # large, which is exactly why the threshold test (not an exact
        # Tsirelson match) is the abort criterion.
        assert 1.0 < chsh_epsilon(256, 0.95) < 2.0

    def test_input_validation(self):
        with pytest.raises(ReproError):
            chsh_epsilon(2)
        with pytest.raises(ReproError):
            chsh_epsilon(256, 1.5)
        with pytest.raises(ReproError):
            pairs_for_chsh_epsilon(0.0)
