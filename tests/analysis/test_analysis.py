"""Unit tests for the analysis metrics and statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.accuracy import AccuracyPoint, crossing_eta, exponential_decay_fit
from repro.analysis.chsh_analysis import (
    chsh_threshold_eta,
    chsh_vs_channel_length,
    chsh_vs_depolarizing,
)
from repro.analysis.fidelity import distribution_fidelity, hellinger_distance, state_fidelity
from repro.analysis.qber import bit_error_rate, quantum_bit_error_rate, symbol_error_rate
from repro.analysis.statistics import (
    binomial_standard_error,
    chsh_standard_error,
    empirical_mutual_information,
    mean_and_confidence_interval,
    required_shots_for_accuracy,
    wilson_interval,
)
from repro.exceptions import ReproError
from repro.quantum.bell import BellState, bell_state, TSIRELSON_BOUND
from repro.quantum.states import Statevector


class TestFidelityMetrics:
    def test_identical_distributions(self):
        counts = {"00": 957, "01": 40, "10": 25, "11": 2}
        assert distribution_fidelity(counts, counts) == pytest.approx(1.0)

    def test_delta_reference(self):
        counts = {"00": 90, "11": 10}
        assert distribution_fidelity(counts, {"00": 1.0}) == pytest.approx(0.9)

    def test_disjoint_supports(self):
        assert distribution_fidelity({"0": 1}, {"1": 1}) == pytest.approx(0.0)

    def test_symmetry(self):
        a = {"00": 3, "01": 1}
        b = {"00": 1, "01": 1}
        assert distribution_fidelity(a, b) == pytest.approx(distribution_fidelity(b, a))

    def test_empty_distribution_rejected(self):
        with pytest.raises(ReproError):
            distribution_fidelity({}, {"0": 1})

    def test_hellinger_bounds(self):
        assert hellinger_distance({"0": 1}, {"0": 1}) == pytest.approx(0.0)
        assert hellinger_distance({"0": 1}, {"1": 1}) == pytest.approx(1.0)

    def test_state_fidelity_wrappers(self):
        phi = bell_state(BellState.PHI_PLUS)
        assert state_fidelity(phi, phi) == pytest.approx(1.0)
        assert state_fidelity(phi.density_matrix(), phi) == pytest.approx(1.0)
        assert state_fidelity(phi, Statevector.from_label("00")) == pytest.approx(0.5)


class TestErrorRates:
    def test_bit_error_rate(self):
        assert bit_error_rate((1, 0, 1, 1), (1, 1, 1, 0)) == pytest.approx(0.5)
        assert bit_error_rate((1, 0), (1, 0)) == pytest.approx(0.0)

    def test_bit_error_rate_validation(self):
        with pytest.raises(ReproError):
            bit_error_rate((1, 0), (1,))
        with pytest.raises(ReproError):
            bit_error_rate((), ())

    def test_symbol_error_rate(self):
        counts = {"00": 90, "01": 10}
        assert symbol_error_rate(counts, "00") == pytest.approx(0.1)

    def test_quantum_bit_error_rate_counts_wrong_bits(self):
        counts = {"00": 80, "01": 10, "11": 10}
        # 10 shots with 1 wrong bit + 10 shots with 2 wrong bits over 2 bits/shot.
        assert quantum_bit_error_rate(counts, "00") == pytest.approx((10 + 20) / 200)

    def test_quantum_bit_error_rate_validation(self):
        with pytest.raises(ReproError):
            quantum_bit_error_rate({}, "00")
        with pytest.raises(ReproError):
            quantum_bit_error_rate({"0": 1}, "00")


class TestStatistics:
    def test_binomial_standard_error(self):
        assert binomial_standard_error(50, 100) == pytest.approx(0.05)
        with pytest.raises(ReproError):
            binomial_standard_error(5, 0)

    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_interval(90, 100)
        assert low < 0.9 < high
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_interval_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == pytest.approx(0.0)
        low, high = wilson_interval(20, 20)
        assert high == pytest.approx(1.0)

    def test_wilson_validation(self):
        with pytest.raises(ReproError):
            wilson_interval(5, 0)
        with pytest.raises(ReproError):
            wilson_interval(5, 10, confidence=1.5)

    def test_mean_and_confidence_interval(self):
        mean, low, high = mean_and_confidence_interval([2.7, 2.8, 2.9, 2.8])
        assert mean == pytest.approx(2.8)
        assert low < mean < high

    def test_mean_ci_single_sample(self):
        assert mean_and_confidence_interval([1.5]) == (1.5, 1.5, 1.5)

    def test_mean_ci_empty_rejected(self):
        with pytest.raises(ReproError):
            mean_and_confidence_interval([])

    def test_chsh_standard_error_scaling(self):
        assert chsh_standard_error(1600) == pytest.approx(0.1)
        assert chsh_standard_error(400) == pytest.approx(0.2)

    def test_required_shots(self):
        shots = required_shots_for_accuracy(0.01)
        assert 9000 < shots < 10000

    def test_empirical_mutual_information_independent(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 2, size=4000)
        ys = rng.integers(0, 2, size=4000)
        assert empirical_mutual_information(xs.tolist(), ys.tolist()) < 0.01

    def test_empirical_mutual_information_identical(self):
        xs = [0, 1] * 500
        assert empirical_mutual_information(xs, xs) == pytest.approx(1.0)

    def test_empirical_mi_validation(self):
        with pytest.raises(ReproError):
            empirical_mutual_information([0], [0, 1])


class TestAccuracyAnalysis:
    def _points(self, eta0=500.0, floor=0.25):
        return [
            AccuracyPoint(
                eta=eta,
                duration=eta * 60e-9,
                accuracy=(1 - floor) * math.exp(-eta / eta0) + floor,
                shots=1024,
                fidelity=1.0,
            )
            for eta in range(10, 1501, 100)
        ]

    def test_exponential_fit_recovers_decay_constant(self):
        fit = exponential_decay_fit(self._points(eta0=600.0), floor=0.25)
        assert fit["eta0"] == pytest.approx(600.0, rel=0.05)
        assert fit["rms_residual"] < 1e-6

    def test_exponential_fit_free_floor(self):
        fit = exponential_decay_fit(self._points(eta0=400.0, floor=0.3))
        assert fit["floor"] == pytest.approx(0.3, abs=0.05)

    def test_fit_needs_three_points(self):
        with pytest.raises(ReproError):
            exponential_decay_fit(self._points()[:2])

    def test_crossing_eta_interpolates(self):
        points = self._points(eta0=500.0)
        crossing = crossing_eta(points, threshold=0.6)
        # Analytic crossing: 0.75 exp(-eta/500) + 0.25 = 0.6 -> eta = 500 ln(0.75/0.35).
        assert crossing == pytest.approx(500 * math.log(0.75 / 0.35), rel=0.05)

    def test_crossing_not_reached(self):
        points = self._points(eta0=10000.0)[:3]
        assert crossing_eta(points, threshold=0.1) is None

    def test_crossing_validation(self):
        with pytest.raises(ReproError):
            crossing_eta([], threshold=0.6)


class TestCHSHAnalysis:
    def test_chsh_vs_depolarizing_is_linear(self):
        curve = chsh_vs_depolarizing([0.0, 0.25, 0.5, 1.0])
        for p, value in curve:
            assert value == pytest.approx((1 - p) * TSIRELSON_BOUND, abs=1e-9)

    def test_chsh_vs_depolarizing_validation(self):
        with pytest.raises(ReproError):
            chsh_vs_depolarizing([1.5])

    def test_chsh_vs_channel_length_decreases(self):
        curve = chsh_vs_channel_length([0, 100, 500, 2000])
        values = [value for _, value in curve]
        assert values[0] == pytest.approx(TSIRELSON_BOUND, abs=1e-6)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_chsh_threshold_eta_exists_for_noisy_channel(self):
        # With the ibm_brisbane per-gate error and T1/T2 decoherence the honest
        # CHSH value crosses the classical bound after a few hundred identity
        # gates — i.e. the DI checks constrain the usable channel length more
        # tightly than the 60%-accuracy criterion of Fig. 3 does.
        threshold = chsh_threshold_eta(max_eta=20000, step=50)
        assert threshold is not None
        assert 200 < threshold < 2000

    def test_chsh_threshold_eta_none_for_perfect_channel(self):
        assert chsh_threshold_eta(
            max_eta=1000, gate_error=0.0, include_thermal_relaxation=False, step=100
        ) is None

    def test_chsh_threshold_validation(self):
        with pytest.raises(ReproError):
            chsh_threshold_eta(max_eta=0)
