"""Tests for bootstrap CIs and the compare_trajectories regression verdicts."""

import math

import pytest

from repro.analysis.regression import (
    BenchmarkVerdict,
    bootstrap_ci,
    bootstrap_ratio_ci,
    compare_trajectories,
    effect_table,
)
from repro.artifacts.trajectory import BenchmarkRecord, Trajectory
from repro.exceptions import ReproError


def trajectory(label, **benches):
    """Build a trajectory from ``name=(samples, metrics)`` keyword pairs."""
    result = Trajectory(label=label, environment={"python": "3.11"})
    for name, (samples, metrics) in benches.items():
        result.add(BenchmarkRecord(name=name, samples=list(samples), metrics=metrics))
    return result


class TestBootstrapCI:
    def test_single_sample_is_degenerate(self):
        assert bootstrap_ci([0.25]) == (0.25, 0.25)

    def test_interval_brackets_the_mean(self):
        samples = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.01]
        low, high = bootstrap_ci(samples, seed=1)
        mean = sum(samples) / len(samples)
        assert low <= mean <= high
        assert low < high

    def test_deterministic_for_fixed_seed(self):
        # Irregular samples so the percentile endpoints are seed-sensitive
        # (on tiny symmetric data different seeds can coincide).
        samples = [0.013, 0.021, 0.008, 0.034, 0.055, 0.013, 0.089, 0.002, 0.144, 0.031]
        assert bootstrap_ci(samples, seed=7) == bootstrap_ci(samples, seed=7)
        assert bootstrap_ci(samples, seed=0) != bootstrap_ci(samples, seed=1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_ratio_ci_degenerate_on_two_singletons(self):
        assert bootstrap_ratio_ci([2.0], [4.0]) == (2.0, 2.0)

    def test_ratio_ci_brackets_point_ratio(self):
        base = [1.0, 1.1, 0.9, 1.0]
        cur = [2.0, 2.2, 1.8, 2.0]
        low, high = bootstrap_ratio_ci(base, cur, seed=3)
        assert low <= 2.0 <= high


class TestCompareTrajectories:
    def test_identical_trajectories_pass(self):
        base = trajectory("b", x=([0.1], {"m": 1.0}))
        comparison = compare_trajectories(base, base)
        assert comparison.ok
        assert comparison.verdicts[0].status == "unchanged"

    def test_empty_baseline_all_new_passes(self):
        base = trajectory("b")
        cur = trajectory("c", x=([0.1], {}), y=([0.2], {}))
        comparison = compare_trajectories(base, cur)
        assert comparison.ok
        assert {v.status for v in comparison.verdicts} == {"new"}
        assert len(comparison.by_status("new")) == 2

    def test_both_empty_passes(self):
        comparison = compare_trajectories(trajectory("b"), trajectory("c"))
        assert comparison.ok and not comparison.verdicts

    def test_new_benchmark_appearing_is_not_a_failure(self):
        base = trajectory("b", x=([0.1], {}))
        cur = trajectory("c", x=([0.1], {}), fresh=([0.5], {}))
        comparison = compare_trajectories(base, cur)
        assert comparison.ok
        assert comparison.by_status("new")[0].name == "fresh"

    def test_disappearing_benchmark_fails_by_default(self):
        base = trajectory("b", x=([0.1], {}), gone=([0.2], {}))
        cur = trajectory("c", x=([0.1], {}))
        comparison = compare_trajectories(base, cur)
        assert not comparison.ok
        assert comparison.by_status("removed")[0].name == "gone"
        relaxed = compare_trajectories(base, cur, allow_missing=True)
        assert relaxed.ok

    def test_two_times_regression_fails(self):
        base = trajectory("b", x=([0.1], {}))
        cur = trajectory("c", x=([0.2], {}))
        comparison = compare_trajectories(base, cur, timing_threshold=1.5)
        assert not comparison.ok
        verdict = comparison.verdicts[0]
        assert verdict.status == "regressed"
        assert verdict.ratio == pytest.approx(2.0)

    def test_regression_exactly_at_threshold_is_unchanged(self):
        # 1.5 / 1.0 is exact in binary floats, so this really sits *at* the
        # threshold; the gate's comparison is strict ("worse than").
        base = trajectory("b", x=([1.0], {}))
        cur = trajectory("c", x=([1.5], {}))
        comparison = compare_trajectories(base, cur, timing_threshold=1.5)
        assert comparison.ok
        assert comparison.verdicts[0].status == "unchanged"
        # ...and marginally beyond it regresses
        beyond = trajectory("c", x=([1.5000015], {}))
        assert not compare_trajectories(base, beyond, timing_threshold=1.5).ok

    def test_symmetric_improvement_detected(self):
        base = trajectory("b", x=([0.2], {}))
        cur = trajectory("c", x=([0.05], {}))
        comparison = compare_trajectories(base, cur)
        assert comparison.ok
        assert comparison.verdicts[0].status == "improved"

    def test_noisy_multi_sample_regression_needs_ci_support(self):
        # Point ratio exceeds the threshold but the samples overlap so much
        # that the bootstrap CI straddles 1.0: the CI-aware gate holds fire.
        base = trajectory("b", x=([0.1, 0.4, 0.1, 0.4], {}))
        cur = trajectory("c", x=([0.45, 0.1, 0.45, 0.1, 0.45, 0.35], {}))
        comparison = compare_trajectories(base, cur, timing_threshold=1.1)
        verdict = comparison.verdicts[0]
        assert verdict.ratio > 1.1
        assert verdict.ratio_ci[0] < 1.0
        assert verdict.status == "unchanged"

    def test_metric_drift_fails_even_when_timing_unchanged(self):
        base = trajectory("b", x=([0.1], {"accuracy": 0.95}))
        cur = trajectory("c", x=([0.1], {"accuracy": 0.90}))
        comparison = compare_trajectories(base, cur)
        assert not comparison.ok
        assert comparison.verdicts[0].drifted_metrics == {"accuracy": (0.95, 0.90)}

    def test_metric_added_or_removed_counts_as_drift(self):
        base = trajectory("b", x=([0.1], {"accuracy": 0.95}))
        cur = trajectory("c", x=([0.1], {}))
        assert not compare_trajectories(base, cur).ok

    def test_float_noise_within_tolerance_is_not_drift(self):
        base = trajectory("b", x=([0.1], {"accuracy": 0.95}))
        cur = trajectory("c", x=([0.1], {"accuracy": 0.95 * (1 + 1e-12)}))
        assert compare_trajectories(base, cur).ok

    def test_nan_and_none_metrics_compare_equal_to_themselves(self):
        base = trajectory("b", x=([0.1], {"nan": math.nan, "none": None}))
        cur = trajectory("c", x=([0.1], {"nan": math.nan, "none": None}))
        assert compare_trajectories(base, cur).ok
        drifted = trajectory("c", x=([0.1], {"nan": 1.0, "none": None}))
        assert not compare_trajectories(base, drifted).ok

    def test_series_metrics_compare_elementwise(self):
        base = trajectory("b", x=([0.1], {"series": [1.0, 2.0, 3.0]}))
        same = trajectory("c", x=([0.1], {"series": [1.0, 2.0, 3.0]}))
        longer = trajectory("c", x=([0.1], {"series": [1.0, 2.0, 3.0, 4.0]}))
        changed = trajectory("c", x=([0.1], {"series": [1.0, 2.5, 3.0]}))
        assert compare_trajectories(base, same).ok
        assert not compare_trajectories(base, longer).ok
        assert not compare_trajectories(base, changed).ok

    def test_threshold_must_exceed_one(self):
        base = trajectory("b", x=([0.1], {}))
        with pytest.raises(ReproError):
            compare_trajectories(base, base, timing_threshold=1.0)

    def test_environment_difference_is_flagged(self):
        base = trajectory("b", x=([0.1], {}))
        cur = trajectory("c", x=([0.1], {}))
        cur.environment = {"python": "3.12"}
        comparison = compare_trajectories(base, cur)
        assert comparison.environments_differ
        assert "environments differ" in effect_table(comparison)


class TestEffectTable:
    def test_renders_all_verdicts_and_gate(self):
        base = trajectory("b", slow=([0.1], {"m": 1.0}), gone=([0.2], {}))
        cur = trajectory(
            "c", slow=([0.3], {"m": 2.0}), fresh=([0.1], {})
        )
        comparison = compare_trajectories(base, cur)
        table = effect_table(comparison)
        assert "regressed" in table and "new" in table and "removed" in table
        assert "METRICS DRIFTED" in table
        assert "drift m: 1.0 -> 2.0" in table
        assert "gate: FAIL" in table

    def test_pass_summary(self):
        base = trajectory("b", x=([0.1], {}))
        table = effect_table(compare_trajectories(base, base))
        assert "gate: PASS" in table

    def test_verdicts_serialise(self):
        base = trajectory("b", x=([0.1], {}))
        data = compare_trajectories(base, base).to_dict()
        assert data["ok"] is True
        assert data["verdicts"][0]["status"] == "unchanged"
        assert isinstance(compare_trajectories(base, base).verdicts[0], BenchmarkVerdict)
