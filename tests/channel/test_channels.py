"""Unit tests for the quantum/classical channels and the quantum memory."""

from __future__ import annotations

import math

import pytest

from repro.channel.classical_channel import ClassicalChannel
from repro.channel.memory import QuantumMemory
from repro.channel.quantum_channel import (
    FiberLossChannel,
    IdentityChainChannel,
    NoiselessChannel,
)
from repro.exceptions import ChannelError
from repro.quantum.bell import BellState, bell_state, chsh_value
from repro.quantum.channels import depolarizing_channel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix
from repro.quantum.states import Statevector


class TestNoiselessChannel:
    def test_preserves_state(self):
        state = bell_state(BellState.PHI_PLUS).density_matrix()
        after = NoiselessChannel().transmit(state, 0)
        assert after.fidelity(state) == pytest.approx(1.0)

    def test_survival_probability(self):
        assert NoiselessChannel().survival_probability() == 1.0


class TestIdentityChainChannel:
    def test_paper_parameters_are_defaults(self):
        channel = IdentityChainChannel(eta=10)
        assert channel.gate_error == pytest.approx(2.41e-4)
        assert channel.gate_duration == pytest.approx(60e-9)
        assert channel.duration() == pytest.approx(0.6e-6)

    def test_survival_probability_formula(self):
        channel = IdentityChainChannel(eta=100, gate_error=1e-3)
        assert channel.survival_probability() == pytest.approx((1 - 1e-3) ** 100)

    def test_extend_circuit_appends_eta_identities(self):
        qc = QuantumCircuit(2)
        IdentityChainChannel(eta=7).extend_circuit(qc, 1)
        assert qc.count_ops() == {"id": 7}
        assert all(instr.qubits == (1,) for instr in qc.instructions)

    def test_zero_eta_is_identity(self):
        state = bell_state(BellState.PHI_PLUS).density_matrix()
        channel = IdentityChainChannel(eta=0)
        assert channel.transmit(state, 0).fidelity(state) == pytest.approx(1.0)

    def test_longer_channel_degrades_fidelity_monotonically(self):
        ideal = bell_state(BellState.PHI_PLUS)
        fidelities = []
        for eta in (10, 100, 400, 700):
            channel = IdentityChainChannel(eta=eta)
            after = channel.transmit(ideal.density_matrix(), 0)
            fidelities.append(after.fidelity(ideal))
        assert all(a > b for a, b in zip(fidelities, fidelities[1:]))

    def test_longer_channel_degrades_chsh(self):
        ideal = bell_state(BellState.PHI_PLUS).density_matrix()
        short = IdentityChainChannel(eta=10).transmit(ideal, 0)
        long = IdentityChainChannel(eta=700).transmit(ideal, 0)
        assert chsh_value(long) < chsh_value(short) <= 2 * math.sqrt(2)

    def test_with_eta_copy(self):
        base = IdentityChainChannel(eta=10, gate_error=1e-3)
        longer = base.with_eta(500)
        assert longer.eta == 500
        assert longer.gate_error == pytest.approx(1e-3)
        assert base.eta == 10

    def test_thermal_relaxation_toggle_changes_noise(self):
        ideal = bell_state(BellState.PHI_PLUS)
        with_relax = IdentityChainChannel(eta=700, include_thermal_relaxation=True)
        without_relax = IdentityChainChannel(eta=700, include_thermal_relaxation=False)
        f_with = with_relax.transmit(ideal.density_matrix(), 0).fidelity(ideal)
        f_without = without_relax.transmit(ideal.density_matrix(), 0).fidelity(ideal)
        assert f_with < f_without

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ChannelError):
            IdentityChainChannel(eta=-1)
        with pytest.raises(ChannelError):
            IdentityChainChannel(eta=1, gate_error=2.0)
        with pytest.raises(ChannelError):
            IdentityChainChannel(eta=1, gate_duration=-1e-9)


class TestFiberLossChannel:
    def test_transmission_probability(self):
        channel = FiberLossChannel(length_km=50, attenuation_db_per_km=0.2)
        assert channel.transmission_probability() == pytest.approx(10 ** (-1.0))

    def test_zero_length_is_lossless(self):
        channel = FiberLossChannel(length_km=0)
        state = DensityMatrix(Statevector.from_label("+"))
        assert channel.transmit(state, 0).fidelity(state) == pytest.approx(1.0)

    def test_longer_fiber_lower_fidelity(self):
        state = bell_state(BellState.PHI_PLUS)
        short = FiberLossChannel(length_km=5).transmit(state.density_matrix(), 0)
        long = FiberLossChannel(length_km=100).transmit(state.density_matrix(), 0)
        assert long.fidelity(state) < short.fidelity(state)

    def test_duration_is_propagation_delay(self):
        channel = FiberLossChannel(length_km=200, speed_km_per_s=2e5)
        assert channel.duration() == pytest.approx(1e-3)

    def test_dephasing_parameter(self):
        channel = FiberLossChannel(length_km=10, attenuation_db_per_km=0.0, dephasing_per_km=0.05)
        state = DensityMatrix(Statevector.from_label("+"))
        after = channel.transmit(state, 0)
        assert after.fidelity(state) < 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ChannelError):
            FiberLossChannel(length_km=-1)
        with pytest.raises(ChannelError):
            FiberLossChannel(length_km=1, dephasing_per_km=2.0)


class TestClassicalChannel:
    def test_send_and_log(self):
        channel = ClassicalChannel()
        channel.send("alice", "bob", "check_positions", [1, 5, 9])
        channel.broadcast("bob", "bsm_results", ["phi_plus"])
        assert len(channel) == 2
        assert channel.log[0].payload == [1, 5, 9]
        assert channel.log[1].receiver == "broadcast"

    def test_sequence_numbers_are_monotonic(self):
        channel = ClassicalChannel()
        first = channel.send("alice", "bob", "a", 1)
        second = channel.send("bob", "alice", "b", 2)
        assert (first.sequence, second.sequence) == (0, 1)

    def test_filtering(self):
        channel = ClassicalChannel()
        channel.send("alice", "bob", "bases", [0, 1])
        channel.send("bob", "alice", "bases", [1, 1])
        channel.send("alice", "bob", "positions", [3])
        assert len(channel.announcements(topic="bases")) == 2
        assert len(channel.announcements(sender="alice")) == 2
        assert len(channel.announcements(topic="bases", sender="bob")) == 1

    def test_last_and_topics(self):
        channel = ClassicalChannel()
        channel.send("alice", "bob", "bases", [0])
        channel.send("alice", "bob", "bases", [1])
        assert channel.last("bases").payload == [1]
        assert channel.topics() == ["bases"]

    def test_last_missing_topic_raises(self):
        with pytest.raises(ChannelError):
            ClassicalChannel().last("nothing")

    def test_empty_topic_rejected(self):
        with pytest.raises(ChannelError):
            ClassicalChannel().send("alice", "bob", "", None)

    def test_taps_receive_copies_of_announcements(self):
        channel = ClassicalChannel()
        seen = []
        channel.add_tap(seen.append)
        channel.send("alice", "bob", "bases", [0, 1, 2])
        assert len(seen) == 1
        assert seen[0].topic == "bases"

    def test_remove_tap(self):
        channel = ClassicalChannel()
        seen = []
        channel.add_tap(seen.append)
        channel.remove_tap(seen.append)
        channel.send("alice", "bob", "bases", [])
        assert seen == []

    def test_remove_unregistered_tap_raises(self):
        with pytest.raises(ChannelError):
            ClassicalChannel().remove_tap(print)

    def test_add_non_callable_tap_raises(self):
        with pytest.raises(ChannelError):
            ClassicalChannel().add_tap("not callable")

    def test_clear(self):
        channel = ClassicalChannel()
        channel.send("alice", "bob", "bases", [])
        channel.clear()
        assert len(channel) == 0


class TestQuantumMemory:
    def test_store_and_retrieve_ideal(self):
        memory = QuantumMemory()
        memory.store("pair-0", (0, 1))
        assert memory.contains("pair-0")
        item, state = memory.retrieve("pair-0")
        assert item.qubits == (0, 1)
        assert state is None
        assert not memory.contains("pair-0")

    def test_duplicate_key_rejected(self):
        memory = QuantumMemory()
        memory.store("k", (0,))
        with pytest.raises(ChannelError):
            memory.store("k", (1,))

    def test_missing_key_rejected(self):
        with pytest.raises(ChannelError):
            QuantumMemory().retrieve("missing")

    def test_ideal_memory_preserves_state(self):
        memory = QuantumMemory()
        state = bell_state(BellState.PHI_PLUS).density_matrix()
        memory.store("pair", (0, 1))
        memory.advance_time(100)
        _, retrieved = memory.retrieve("pair", state)
        assert retrieved.fidelity(state) == pytest.approx(1.0)

    def test_decohering_memory_degrades_state(self):
        memory = QuantumMemory(decoherence_channel=depolarizing_channel(0.05))
        state = bell_state(BellState.PHI_PLUS).density_matrix()
        memory.store("pair", (0, 1))
        memory.advance_time(10)
        _, retrieved = memory.retrieve("pair", state)
        assert retrieved.fidelity(bell_state(BellState.PHI_PLUS)) < 1.0

    def test_decoherence_requires_single_qubit_channel(self):
        with pytest.raises(ChannelError):
            QuantumMemory(decoherence_channel=depolarizing_channel(0.1, num_qubits=2))

    def test_time_moves_forward_only(self):
        memory = QuantumMemory()
        with pytest.raises(ChannelError):
            memory.advance_time(-1)

    def test_len_and_keys(self):
        memory = QuantumMemory()
        memory.store("a", (0,))
        memory.store("b", (1,))
        assert len(memory) == 2
        assert set(memory.keys()) == {"a", "b"}
