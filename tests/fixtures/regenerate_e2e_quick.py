"""Regenerate the golden e2e quick-mode fixture.

Run only for an *intentional, reviewed* change to paper-reproduction
behaviour — the fixture exists so refactors cannot silently drift the
numbers::

    PYTHONPATH=src python tests/fixtures/regenerate_e2e_quick.py
"""

from __future__ import annotations

import json
from pathlib import Path


def session_record(result) -> dict:
    return {
        "success": result.success,
        "abort_reason": result.abort_reason.value,
        "sent_message": "".join(str(bit) for bit in result.sent_message),
        "delivered_message": (
            None
            if result.delivered_message is None
            else "".join(str(bit) for bit in result.delivered_message)
        ),
        "chsh_round1": None if result.chsh_round1 is None else result.chsh_round1.value,
        "chsh_round2": None if result.chsh_round2 is None else result.chsh_round2.value,
        "bob_authentication_error": result.bob_authentication_error,
        "alice_authentication_error": result.alice_authentication_error,
        "check_bit_error_rate": result.check_bit_error_rate,
        "message_bit_error_rate": result.message_bit_error_rate,
    }


def build_fixture() -> dict:
    from repro.experiments.registry import get_experiment

    result = get_experiment("e2e").run(quick=True)
    return {
        "_comment": (
            "Golden quick-mode outputs of the e2e experiment (seed 42, 3 "
            "sessions, 16-bit messages). Regenerate ONLY for an intentional, "
            "reviewed change to the paper-reproduction pipeline: "
            "PYTHONPATH=src python tests/fixtures/regenerate_e2e_quick.py"
        ),
        "message_length": result.message_length,
        "num_sessions": result.num_sessions,
        "eta": result.eta,
        "ideal_delivery_rate": result.ideal_delivery_rate,
        "noisy_delivery_rate": result.noisy_delivery_rate,
        "mean_chsh_round1": result.mean_chsh_round1,
        "mean_noisy_message_error": result.mean_noisy_message_error,
        "ideal_sessions": [session_record(r) for r in result.ideal_results],
        "noisy_sessions": [session_record(r) for r in result.noisy_results],
    }


FIXTURE_PATH = Path(__file__).parent / "e2e_quick.json"


if __name__ == "__main__":
    with FIXTURE_PATH.open("w") as handle:
        json.dump(build_fixture(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE_PATH}")
