"""Regenerate the golden quick-mode artifact-metrics fixture.

Pins the canonical payload (params, seeds, metrics) of the run artifact
every registered experiment emits in quick mode.  Run only for an
*intentional, reviewed* change to an experiment's parameters, seeds, or
registered metric extractor::

    PYTHONPATH=src python tests/fixtures/regenerate_artifact_metrics_quick.py
"""

from __future__ import annotations

import json
from pathlib import Path


def build_fixture() -> dict:
    from repro.artifacts import capture_artifacts
    from repro.experiments.registry import list_experiments

    payloads = {}
    with capture_artifacts() as sink:
        for experiment in list_experiments():
            experiment.run(quick=True)
    for artifact in sink:
        payloads[artifact.experiment_id] = artifact.canonical_payload()
    return {
        "_comment": (
            "Golden quick-mode run-artifact canonical payloads (params, "
            "seeds, metrics) for every registered experiment. Regenerate "
            "ONLY for an intentional, reviewed change: PYTHONPATH=src "
            "python tests/fixtures/regenerate_artifact_metrics_quick.py"
        ),
        "artifacts": payloads,
    }


FIXTURE_PATH = Path(__file__).parent / "artifact_metrics_quick.json"


if __name__ == "__main__":
    with FIXTURE_PATH.open("w") as handle:
        json.dump(build_fixture(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE_PATH}")
