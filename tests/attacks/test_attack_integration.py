"""Integration tests: each attack against the full protocol, plus detection stats."""

from __future__ import annotations

import pytest

from repro.attacks import (
    ClassicalEavesdropper,
    EntangleMeasureAttack,
    ImpersonationAttack,
    InterceptResendAttack,
    ManInTheMiddleAttack,
    evaluate_attack,
    run_leakage_experiment,
)
from repro.attacks.detection import detection_rate
from repro.channel.quantum_channel import NoiselessChannel
from repro.exceptions import AttackError
from repro.protocol.config import ProtocolConfig
from repro.protocol.results import AbortReason
from repro.protocol.runner import UADIQSDCProtocol

MESSAGE = "10110010"


def fast_config(**overrides) -> ProtocolConfig:
    defaults = dict(
        message_length=8,
        num_check_bits=4,
        identity_pairs=4,
        check_pairs_per_round=64,
        channel=NoiselessChannel(),
        seed=17,
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


class TestImpersonationAgainstProtocol:
    def test_eve_impersonating_bob_is_caught_by_alice(self):
        attack = ImpersonationAttack("bob", rng=1)
        result = UADIQSDCProtocol(fast_config(), attack=attack).run(MESSAGE)
        assert not result.success
        assert result.abort_reason is AbortReason.BOB_AUTHENTICATION_FAILED
        assert result.bob_authentication_error > 0.25
        assert result.delivered_message is None

    def test_eve_impersonating_alice_is_caught_by_bob(self):
        attack = ImpersonationAttack("alice", rng=2)
        result = UADIQSDCProtocol(fast_config(), attack=attack).run(MESSAGE)
        assert not result.success
        assert result.abort_reason is AbortReason.ALICE_AUTHENTICATION_FAILED
        assert result.alice_authentication_error > 0.25

    def test_detection_rate_grows_with_identity_length(self):
        # With l = 1 Eve survives with probability 1/4; with l = 4 almost never.
        short = evaluate_attack(
            fast_config(identity_pairs=1),
            lambda rng: ImpersonationAttack("bob", rng=rng),
            MESSAGE,
            trials=30,
            rng=3,
        )
        long = evaluate_attack(
            fast_config(identity_pairs=4),
            lambda rng: ImpersonationAttack("bob", rng=rng),
            MESSAGE,
            trials=30,
            rng=4,
        )
        assert long.detection_rate >= short.detection_rate
        assert long.detection_rate > 0.85
        # Empirical detection should be in the neighbourhood of 1 - (1/4)^l.
        assert short.detection_rate == pytest.approx(
            ImpersonationAttack.detection_probability(1), abs=0.2
        )


class TestChannelAttacksAgainstProtocol:
    def test_intercept_resend_triggers_round2_abort(self):
        attack = InterceptResendAttack(rng=5)
        result = UADIQSDCProtocol(fast_config(check_pairs_per_round=96), attack=attack).run(
            MESSAGE
        )
        assert not result.success
        # Round 1 happens before transmission, so it passes; the attack is
        # caught by authentication or by the second CHSH round.
        assert result.chsh_round1.passed()
        assert result.abort_reason in (
            AbortReason.BOB_AUTHENTICATION_FAILED,
            AbortReason.ALICE_AUTHENTICATION_FAILED,
            AbortReason.ROUND2_CHSH_FAILED,
        )

    def test_intercept_resend_round2_chsh_below_bound_when_reached(self):
        # Identity verification is loosened (many identity pairs + generous
        # tolerance) so the run reliably reaches the second CHSH round, which
        # is the safeguard this test exercises.
        attack = InterceptResendAttack(rng=6)
        config = fast_config(
            check_pairs_per_round=96, identity_pairs=12, authentication_tolerance=0.95
        )
        result = UADIQSDCProtocol(config, attack=attack).run(MESSAGE)
        assert result.abort_reason is AbortReason.ROUND2_CHSH_FAILED
        assert result.chsh_round2.value <= 2.0 + 0.4  # sampling noise margin

    def test_man_in_the_middle_is_detected(self):
        attack = ManInTheMiddleAttack(rng=7)
        config = fast_config(check_pairs_per_round=96, authentication_tolerance=0.9)
        result = UADIQSDCProtocol(config, attack=attack).run(MESSAGE)
        assert not result.success
        assert result.abort_reason is AbortReason.ROUND2_CHSH_FAILED
        assert result.chsh_round2.value < 1.5

    def test_entangle_measure_full_strength_is_detected(self):
        attack = EntangleMeasureAttack(strength=1.0)
        config = fast_config(
            check_pairs_per_round=96, identity_pairs=12, authentication_tolerance=0.95
        )
        result = UADIQSDCProtocol(config, attack=attack).run(MESSAGE)
        assert not result.success
        assert result.abort_reason is AbortReason.ROUND2_CHSH_FAILED

    def test_weak_entangle_measure_probe_may_pass_but_gains_little(self):
        attack = EntangleMeasureAttack(strength=0.05)
        result = UADIQSDCProtocol(fast_config(check_pairs_per_round=128), attack=attack).run(
            MESSAGE
        )
        # A very weak probe disturbs little (and correspondingly learns little):
        # the CHSH value stays near the honest value.
        if result.success:
            assert result.chsh_round2.value > 2.0
        assert attack.information_gain() == pytest.approx(0.05)


class TestDetectionStatistics:
    def test_honest_baseline_is_not_flagged(self):
        evaluation = evaluate_attack(fast_config(), None, MESSAGE, trials=5, rng=8)
        assert evaluation.attack_name == "none"
        assert evaluation.detection_rate <= 0.2
        assert evaluation.messages_delivered >= 4

    def test_mitm_detection_rate_is_total(self):
        evaluation = evaluate_attack(
            fast_config(check_pairs_per_round=96, authentication_tolerance=0.9),
            lambda rng: ManInTheMiddleAttack(rng=rng),
            MESSAGE,
            trials=5,
            rng=9,
        )
        assert evaluation.detection_rate == pytest.approx(1.0)
        assert evaluation.messages_delivered == 0
        assert "round2_chsh_failed" in evaluation.abort_reasons

    def test_detection_rate_helper_requires_results(self):
        with pytest.raises(AttackError):
            detection_rate([])

    def test_evaluate_attack_requires_trials(self):
        with pytest.raises(AttackError):
            evaluate_attack(fast_config(), None, MESSAGE, trials=0)

    def test_summary_is_json_friendly(self):
        evaluation = evaluate_attack(fast_config(), None, MESSAGE, trials=2, rng=10)
        summary = evaluation.summary()
        assert summary["trials"] == 2
        assert 0.0 <= summary["detection_rate"] <= 1.0


class TestInformationLeakage:
    def test_passive_eavesdropper_never_hears_message_outcomes(self):
        eve = ClassicalEavesdropper(rng=11)
        result = UADIQSDCProtocol(fast_config(), attack=eve).run(MESSAGE)
        assert result.success  # a passive listener does not disturb anything
        assert not eve.heard_message_outcomes()
        topics = set(eve.overheard_topics())
        assert "authentication_bsm_results" in topics
        assert "round1_check_positions" in topics

    def test_leakage_experiment_reports_near_zero_leakage(self):
        config = fast_config(check_pairs_per_round=32, identity_pairs=2)
        report = run_leakage_experiment(
            config,
            message_a="10110010",
            message_b="01001101",
            sessions_per_message=6,
            rng=12,
        )
        assert not report.message_outcomes_announced
        assert 0.0 <= report.total_variation_distance <= 1.0
        assert 0.0 <= report.within_message_tv_distance <= 1.0
        # Genuine message leakage would make the between-message distance
        # systematically exceed the within-message sampling null.
        assert report.excess_tv_distance <= 0.7
        assert report.mutual_information_upper_bound <= 0.7

    def test_leakage_experiment_validates_inputs(self):
        with pytest.raises(AttackError):
            run_leakage_experiment(fast_config(), "00", "0000", sessions_per_message=1)
        with pytest.raises(AttackError):
            run_leakage_experiment(fast_config(), "00", "11", sessions_per_message=0)
