"""Unit tests for the individual attack models (state-level behaviour)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.attacks.base import Attack
from repro.attacks.entangle_measure import EntangleMeasureAttack
from repro.attacks.impersonation import ImpersonationAttack
from repro.attacks.intercept_resend import InterceptResendAttack
from repro.attacks.man_in_the_middle import ManInTheMiddleAttack
from repro.channel.classical_channel import Announcement
from repro.exceptions import AttackError
from repro.quantum.bell import BellState, bell_state, chsh_value, CLASSICAL_CHSH_BOUND
from repro.quantum.density import DensityMatrix


def phi_plus() -> DensityMatrix:
    return bell_state(BellState.PHI_PLUS).density_matrix()


class TestAttackBase:
    def test_default_hooks_are_passthrough(self):
        attack = Attack(rng=0)
        state = phi_plus()
        assert attack.intercept_source(0, state) is state
        assert attack.intercept_transmission(0, state) is state

    def test_observe_announcement_records(self):
        attack = Attack(rng=0)
        attack.observe_announcement(
            Announcement("alice", "bob", "positions", [1, 2], sequence=0)
        )
        attack.observe_announcement(
            Announcement("bob", "alice", "results", ["x"], sequence=1)
        )
        assert attack.overheard_topics() == ["positions", "results"]

    def test_forged_identity_requires_impersonation(self):
        with pytest.raises(AttackError):
            Attack(rng=0).forged_identity(4)


class TestImpersonationAttack:
    def test_target_validation(self):
        assert ImpersonationAttack("alice").impersonates == "alice"
        assert ImpersonationAttack("BOB").impersonates == "bob"
        with pytest.raises(AttackError):
            ImpersonationAttack("charlie")

    def test_forged_identity_has_requested_length(self):
        identity = ImpersonationAttack("bob", rng=1).forged_identity(6)
        assert identity.num_pairs == 6
        assert identity.owner == "eve-as-bob"

    def test_detection_probability_formula(self):
        assert ImpersonationAttack.detection_probability(1) == pytest.approx(0.75)
        assert ImpersonationAttack.detection_probability(4) == pytest.approx(1 - 0.25**4)
        assert ImpersonationAttack.detection_probability(0) == pytest.approx(0.0)
        assert ImpersonationAttack.survival_probability(8) == pytest.approx(0.25**8)

    def test_detection_probability_rejects_negative(self):
        with pytest.raises(AttackError):
            ImpersonationAttack.detection_probability(-1)

    def test_expected_mismatch_fraction(self):
        assert ImpersonationAttack.expected_mismatch_fraction() == pytest.approx(0.75)


class TestInterceptResendAttack:
    def test_breaks_entanglement(self):
        attack = InterceptResendAttack(rng=1)
        after = attack.intercept_transmission(0, phi_plus())
        # The post-attack state is separable: its CHSH value cannot exceed 2.
        assert chsh_value(after) <= CLASSICAL_CHSH_BOUND + 1e-9
        assert attack.intercepted_pairs == 1

    def test_outcome_recorded_and_state_collapsed(self):
        attack = InterceptResendAttack(rng=2)
        after = attack.intercept_transmission(7, phi_plus())
        position, outcome = attack.measurement_record[0]
        assert position == 7
        assert outcome in (0, 1)
        # Measuring |Φ+⟩ in the computational basis leaves |00⟩ or |11⟩.
        expected = "00" if outcome == 0 else "11"
        assert after.probability_of(expected) == pytest.approx(1.0)

    def test_diagonal_basis_attack_also_breaks_chsh(self):
        attack = InterceptResendAttack(theta=math.pi / 2, rng=3)
        after = attack.intercept_transmission(0, phi_plus())
        assert chsh_value(after) <= CLASSICAL_CHSH_BOUND + 1e-9

    def test_partial_attack_fraction(self):
        attack = InterceptResendAttack(attack_fraction=0.0, rng=4)
        state = phi_plus()
        assert attack.intercept_transmission(0, state) is state
        assert attack.intercepted_pairs == 0

    def test_basis_states_are_orthonormal(self):
        attack = InterceptResendAttack(theta=1.1, phi=0.4)
        u, v = attack.basis_states()
        assert np.vdot(u, u) == pytest.approx(1.0)
        assert np.vdot(v, v) == pytest.approx(1.0)
        assert abs(np.vdot(u, v)) == pytest.approx(0.0, abs=1e-12)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(AttackError):
            InterceptResendAttack(attack_fraction=1.5)

    def test_classical_bound_constant(self):
        assert InterceptResendAttack.expected_chsh_after_full_attack() == 2.0


class TestManInTheMiddleAttack:
    def test_destroys_all_correlations(self):
        attack = ManInTheMiddleAttack(rng=1)
        after = attack.intercept_transmission(0, phi_plus())
        assert abs(chsh_value(after)) < 1.0
        assert attack.intercepted_pairs == 1

    def test_bob_marginal_is_preserved(self):
        attack = ManInTheMiddleAttack(substitute="zero", rng=2)
        after = attack.intercept_transmission(0, phi_plus())
        # Bob's half of |Φ+⟩ is maximally mixed, and Eve cannot change that.
        np.testing.assert_allclose(after.partial_trace([1]).matrix, np.eye(2) / 2, atol=1e-10)
        # Eve's substituted qubit is |0⟩.
        assert after.partial_trace([0]).probability_of("0") == pytest.approx(1.0)

    def test_kept_states_recorded(self):
        attack = ManInTheMiddleAttack(rng=3)
        attack.intercept_transmission(0, phi_plus())
        attack.intercept_transmission(1, phi_plus())
        assert len(attack.kept_states) == 2
        assert attack.kept_states[0].num_qubits == 1

    def test_substitution_strategies(self):
        for strategy in ("random_pure", "zero", "maximally_mixed"):
            attack = ManInTheMiddleAttack(substitute=strategy, rng=4)
            after = attack.intercept_transmission(0, phi_plus())
            after.require_physical()

    def test_invalid_strategy_rejected(self):
        with pytest.raises(AttackError):
            ManInTheMiddleAttack(substitute="teleport")

    def test_expected_chsh_is_zero(self):
        assert ManInTheMiddleAttack.expected_chsh_after_full_attack() == 0.0


class TestEntangleMeasureAttack:
    def test_full_strength_probe_dephases_pair(self):
        attack = EntangleMeasureAttack(strength=1.0)
        after = attack.intercept_transmission(0, phi_plus())
        assert chsh_value(after) == pytest.approx(0.0, abs=1e-9)
        # Populations are untouched; only coherences vanish.
        assert after.probability_of("00") == pytest.approx(0.5)
        assert after.probability_of("11") == pytest.approx(0.5)

    def test_zero_strength_probe_is_harmless(self):
        attack = EntangleMeasureAttack(strength=0.0)
        after = attack.intercept_transmission(0, phi_plus())
        assert after.fidelity(bell_state(BellState.PHI_PLUS)) == pytest.approx(1.0)

    def test_partial_strength_matches_analytic_chsh(self):
        for strength in (0.2, 0.5, 0.8):
            attack = EntangleMeasureAttack(strength=strength)
            after = attack.intercept_transmission(0, phi_plus())
            assert chsh_value(after) == pytest.approx(
                attack.expected_chsh_after_attack(), abs=1e-9
            )

    def test_information_disturbance_tradeoff_detectability(self):
        # Once Eve gains more than ~1/2 of the basis information the CHSH
        # value drops below the classical bound and she is detected.
        strong = EntangleMeasureAttack(strength=0.6)
        assert strong.expected_chsh_after_attack() < CLASSICAL_CHSH_BOUND
        weak = EntangleMeasureAttack(strength=0.2)
        assert weak.expected_chsh_after_attack() > CLASSICAL_CHSH_BOUND

    def test_invalid_strength_rejected(self):
        with pytest.raises(AttackError):
            EntangleMeasureAttack(strength=1.5)

    def test_kraus_operators_form_a_channel(self):
        kraus = EntangleMeasureAttack(strength=0.7)._kraus_operators()
        total = sum(k.conj().T @ k for k in kraus)
        assert np.allclose(total, np.eye(2))
