"""Scenario-engine tests: registries, serialisation, scheduling and composition."""

import math

import numpy as np
import pytest

from repro.attacks import (
    AttackScenario,
    ComposedAttack,
    EntangleMeasureAttack,
    ImpersonationAttack,
    InterceptResendAttack,
    ManInTheMiddleAttack,
    ScenarioSchedule,
    ScheduledAttack,
    SourceTamperAttack,
    as_schedule,
    evaluate_attack,
    get_scenario,
    get_strategy,
    list_scenarios,
    list_strategies,
    scenario_from_dict,
)
from repro.attacks.scenarios import LAYERS
from repro.exceptions import AttackError
from repro.protocol.config import ProtocolConfig
from repro.quantum.bell import bell_state
from repro.quantum.density import DensityMatrix

MESSAGE = "1011001110001111"


def small_config(seed=11):
    return ProtocolConfig.default(
        len(MESSAGE), seed=seed, check_pairs_per_round=32, identity_pairs=4
    )


class TestStrategyRegistry:
    def test_all_paper_families_registered(self):
        names = {spec.name for spec in list_strategies()}
        assert {
            "intercept_resend",
            "entangle_measure",
            "man_in_the_middle",
            "impersonation",
            "classical_eavesdropper",
            "source_tamper",
        } <= names

    def test_layers_are_valid(self):
        for spec in list_strategies():
            assert spec.default_layer in spec.layers
            assert all(layer in LAYERS for layer in spec.layers)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AttackError, match="unknown strategy"):
            get_strategy("quantum_cat")
        with pytest.raises(AttackError, match="unknown strategy"):
            AttackScenario("quantum_cat").validate()


class TestScenarioValidation:
    def test_strength_bounds(self):
        with pytest.raises(AttackError, match="strength"):
            AttackScenario("intercept_resend", strength=1.5).validate()

    def test_duty_cycle_bounds(self):
        with pytest.raises(AttackError, match="duty_cycle"):
            AttackScenario("intercept_resend", duty_cycle=0.0).validate()

    def test_negative_onset_rejected(self):
        with pytest.raises(AttackError, match="onset"):
            AttackScenario("intercept_resend", onset=-1).validate()

    def test_unsupported_layer_rejected(self):
        with pytest.raises(AttackError, match="does not operate"):
            AttackScenario("source_tamper", target_layer="channel").validate()
        with pytest.raises(AttackError, match="does not operate"):
            AttackScenario("impersonation", target_layer="relay").validate()

    def test_relay_layer_allowed_for_channel_strategies(self):
        AttackScenario("intercept_resend", target_layer="relay").validate()


class TestScenarioBuild:
    def test_builds_expected_attack_types(self):
        cases = {
            "intercept_resend": InterceptResendAttack,
            "entangle_measure": EntangleMeasureAttack,
            "man_in_the_middle": ManInTheMiddleAttack,
            "impersonation": ImpersonationAttack,
            "source_tamper": SourceTamperAttack,
        }
        for strategy, expected in cases.items():
            attack = AttackScenario(strategy).build(np.random.default_rng(0))
            assert isinstance(attack, expected), strategy

    def test_strength_maps_to_strategy_knob(self):
        intercept = AttackScenario("intercept_resend", strength=0.3).build(0)
        assert intercept.attack_fraction == pytest.approx(0.3)
        probe = AttackScenario("entangle_measure", strength=0.4).build(0)
        assert probe.strength == pytest.approx(0.4)
        mitm = AttackScenario("man_in_the_middle", strength=0.6).build(0)
        assert mitm.attack_fraction == pytest.approx(0.6)
        source = AttackScenario("source_tamper", strength=0.7).build(0)
        assert source.strength == pytest.approx(0.7)

    def test_params_reach_the_attack(self):
        attack = AttackScenario(
            "intercept_resend",
            params={"theta": math.pi / 4, "basis_mode": "random"},
        ).build(0)
        assert attack.theta == pytest.approx(math.pi / 4)
        assert attack.basis_mode == "random"
        eve = AttackScenario("impersonation", params={"target": "alice"}).build(0)
        assert eve.impersonates == "alice"

    def test_schedule_wrapping_only_when_needed(self):
        plain = AttackScenario("intercept_resend").build(0)
        assert not isinstance(plain, ScheduledAttack)
        gated = AttackScenario("intercept_resend", onset=8).build(0)
        assert isinstance(gated, ScheduledAttack)
        bursty = AttackScenario("intercept_resend", duty_cycle=0.5).build(0)
        assert isinstance(bursty, ScheduledAttack)


class TestSerializationRoundTrips:
    def test_every_preset_round_trips(self):
        for name, schedule, description in list_scenarios():
            assert description, f"preset {name} should carry a description"
            rebuilt = ScenarioSchedule.from_dict(schedule.to_dict())
            assert rebuilt == schedule, name

    def test_scenario_dict_round_trip(self):
        scenario = AttackScenario(
            "man_in_the_middle",
            strength=0.5,
            onset=4,
            duty_cycle=0.25,
            duty_period=8,
            params={"substitute": "zero"},
        )
        assert AttackScenario.from_dict(scenario.to_dict()) == scenario

    def test_unknown_fields_rejected(self):
        with pytest.raises(AttackError, match="unknown scenario fields"):
            AttackScenario.from_dict({"strategy": "intercept_resend", "oops": 1})
        with pytest.raises(AttackError, match="strategy"):
            AttackScenario.from_dict({"strength": 1.0})

    def test_as_schedule_coercions(self):
        scenario = AttackScenario("intercept_resend")
        assert as_schedule(scenario).scenarios == (scenario,)
        assert as_schedule("mitm_full") is get_scenario("mitm_full")
        assert as_schedule(scenario.to_dict()).scenarios == (scenario,)
        nested = scenario_from_dict({"scenarios": [scenario.to_dict()]})
        assert nested.scenarios == (scenario,)
        with pytest.raises(AttackError):
            as_schedule(42)


class TestScheduledAttack:
    def test_onset_gates_exactly(self):
        inner = InterceptResendAttack(rng=0)
        attack = ScheduledAttack(inner, onset=10)
        state = DensityMatrix(bell_state())
        for index in range(10):
            assert attack.active(index) is False
            out = attack.intercept_transmission(index, state)
            assert np.allclose(out.matrix, state.matrix)
        assert attack.active(10) is True
        out = attack.intercept_transmission(10, state)
        assert not np.allclose(out.matrix, state.matrix)
        assert attack.intercepted_pairs == 1

    def test_duty_cycle_pattern_is_positional(self):
        attack = ScheduledAttack(
            InterceptResendAttack(rng=0), duty_cycle=0.25, duty_period=8
        )
        pattern = [attack.active(index) for index in range(16)]
        assert pattern == [True, True] + [False] * 6 + [True, True] + [False] * 6

    def test_full_duty_always_active(self):
        attack = ScheduledAttack(InterceptResendAttack(rng=0))
        assert all(attack.active(index) for index in range(100))

    def test_impersonation_passes_through(self):
        attack = ScheduledAttack(ImpersonationAttack("alice", rng=0), onset=5)
        assert attack.impersonates == "alice"
        identity = attack.forged_identity(4, rng=np.random.default_rng(1))
        assert identity.num_pairs == 4


class TestComposedAttack:
    def test_chains_quantum_hooks(self):
        composed = ComposedAttack(
            [
                EntangleMeasureAttack(strength=1.0, rng=0),
                ManInTheMiddleAttack(substitute="zero", rng=1),
            ]
        )
        state = DensityMatrix(bell_state())
        out = composed.intercept_transmission(0, state)
        assert not np.allclose(out.matrix, state.matrix)
        assert composed.intercepted_pairs == 2

    def test_rejects_empty_and_double_impersonation(self):
        with pytest.raises(AttackError, match="at least one member"):
            ComposedAttack([])
        with pytest.raises(AttackError, match="at most one impersonating"):
            ComposedAttack(
                [ImpersonationAttack("alice", rng=0), ImpersonationAttack("bob", rng=1)]
            )

    def test_schedule_rejects_double_impersonation(self):
        schedule = ScenarioSchedule(
            (
                AttackScenario("impersonation", params={"target": "alice"}),
                AttackScenario("impersonation", params={"target": "bob"}),
            )
        )
        with pytest.raises(AttackError, match="at most one impersonation"):
            schedule.validate()


class TestHopTargeting:
    def test_layer_hop_applicability(self):
        source = AttackScenario("source_tamper")
        channel = AttackScenario("intercept_resend")
        relay = AttackScenario("intercept_resend", target_layer="relay")
        classical = AttackScenario("classical_eavesdropper")
        # direct route (one hop): relay scenarios do not apply
        assert source.applies_to_hop(0, 1) is True
        assert channel.applies_to_hop(0, 1) is True
        assert relay.applies_to_hop(0, 1) is False
        assert classical.applies_to_hop(0, 1) is True
        # two-hop route: source only on hop 0, relay everywhere
        assert source.applies_to_hop(1, 2) is False
        assert relay.applies_to_hop(0, 2) is True
        assert relay.applies_to_hop(1, 2) is True

    def test_subschedule_filters_members(self):
        schedule = ScenarioSchedule(
            (
                AttackScenario("source_tamper", strength=0.5),
                AttackScenario("intercept_resend", target_layer="relay"),
            )
        )
        first_hop = schedule.subschedule_for_hop(0, 2)
        assert len(first_hop.scenarios) == 2
        second_hop = schedule.subschedule_for_hop(1, 2)
        assert len(second_hop.scenarios) == 1
        assert second_hop.scenarios[0].strategy == "intercept_resend"
        direct = ScenarioSchedule(
            (AttackScenario("intercept_resend", target_layer="relay"),)
        )
        assert direct.subschedule_for_hop(0, 1) is None


class TestDeterminism:
    def test_composed_schedule_deterministic_under_pinned_seed(self):
        schedule = get_scenario("impersonation_with_intercept")
        config = small_config()

        def run_once(seed):
            evaluation = evaluate_attack(
                config, schedule.attack_factory(), MESSAGE, trials=4, rng=seed
            )
            return (
                evaluation.detections,
                dict(evaluation.abort_reasons),
                evaluation.mean_chsh_round1,
            )

        assert run_once(21) == run_once(21)
        assert run_once(21) != run_once(22)

    def test_scenario_config_sessions_bit_identical(self):
        config = small_config(seed=77).with_scenario("mitm_partial")
        from repro.protocol.runner import UADIQSDCProtocol

        first = UADIQSDCProtocol(config).run(MESSAGE)
        second = UADIQSDCProtocol(config).run(MESSAGE)
        assert first.abort_reason == second.abort_reason
        assert first.chsh_round1.value == second.chsh_round1.value
        assert first.metadata["attack"] == second.metadata["attack"]


class TestDetectionRegressionPins:
    """Detection-rate pins for each parameterised strategy at canonical strengths."""

    @pytest.mark.parametrize(
        "preset, expected_rate",
        [
            ("intercept_resend_full", 1.0),
            ("intercept_resend_individual", 1.0),
            ("mitm_full", 1.0),
            ("entangle_measure_full", 1.0),
            ("source_tamper_strong", 1.0),
            # l=4 identity pairs: Eve survives Bob's verification whenever at
            # most one of the 4 pairs mismatches (probability ~5%); the
            # pinned seed realises exactly one such escape in 6 trials.
            ("impersonate_alice", 5 / 6),
            ("classical_passive", 0.0),
        ],
    )
    def test_canonical_detection_rates(self, preset, expected_rate):
        evaluation = evaluate_attack(
            small_config(),
            get_scenario(preset).attack_factory(),
            MESSAGE,
            trials=6,
            rng=314,
        )
        assert evaluation.detection_rate == pytest.approx(expected_rate)

    def test_subcritical_source_tamper_keeps_chsh_above_classical(self):
        # Below s* = 1 - 1/sqrt(2) the Werner source's *true* CHSH value
        # stays above 2 — the DI boundary is analytic.  Finite-sample rounds
        # still fluctuate below it, and the disturbance leaks into the
        # authentication checks, so end-to-end detection remains possible.
        attack = SourceTamperAttack(strength=0.2)
        assert attack.expected_chsh() > 2.0
        assert SourceTamperAttack(strength=0.5).expected_chsh() < 2.0
        evaluation = evaluate_attack(
            small_config(),
            get_scenario("source_tamper_subcritical").attack_factory(),
            MESSAGE,
            trials=6,
            rng=314,
        )
        assert evaluation.mean_chsh_round1 > 2.0

    def test_weak_probe_detected_less_often_than_full(self):
        weak = evaluate_attack(
            small_config(),
            get_scenario("entangle_measure_weak").attack_factory(),
            MESSAGE,
            trials=8,
            rng=99,
        )
        full = evaluate_attack(
            small_config(),
            get_scenario("entangle_measure_full").attack_factory(),
            MESSAGE,
            trials=8,
            rng=99,
        )
        assert weak.detection_rate <= full.detection_rate
        assert full.detection_rate == 1.0


class TestSourceTamperModel:
    def test_werner_mixing_and_analytics(self):
        attack = SourceTamperAttack(strength=0.5)
        state = DensityMatrix(bell_state())
        mixed = attack.intercept_source(0, state)
        expected = 0.5 * state.matrix + 0.5 * np.eye(4) / 4
        assert np.allclose(mixed.matrix, expected)
        assert attack.expected_chsh() == pytest.approx(math.sqrt(2.0))
        assert SourceTamperAttack.critical_strength() == pytest.approx(
            1.0 - 1.0 / math.sqrt(2.0)
        )

    def test_strength_bounds(self):
        with pytest.raises(AttackError):
            SourceTamperAttack(strength=1.2)
