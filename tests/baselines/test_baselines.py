"""Tests for the Table I baseline protocols and the comparison harness."""

from __future__ import annotations

import pytest

from repro.baselines import (
    PROPOSED_FEATURES,
    Zeng2023HyperEncodingDIQSDC,
    Zhou2020DIQSDC,
    Zhou2022OneStepDIQSDC,
    Zhou2023SinglePhotonDIQSDC,
    all_baselines,
    render_table1,
    run_functional_comparison,
    table1_features,
)
from repro.baselines.features import DecodingMeasurement, ResourceType
from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.exceptions import ProtocolError

MESSAGE = "1011001110001111"


class TestFeatureRows:
    def test_table_has_five_rows_ending_with_proposed(self):
        rows = table1_features()
        assert len(rows) == 5
        assert rows[-1] is PROPOSED_FEATURES

    def test_only_the_proposed_protocol_has_user_authentication(self):
        rows = table1_features()
        assert [row.user_authentication for row in rows] == [False, False, False, False, True]

    def test_feature_values_match_the_paper(self):
        by_name = {row.name: row for row in table1_features()}
        zhou2020 = by_name["Zhou et al. 2020"]
        assert zhou2020.resource_type is ResourceType.ENTANGLEMENT
        assert zhou2020.decoding_measurement is DecodingMeasurement.BSM
        assert zhou2020.qubits_per_message_bit == 1.0

        onestep = by_name["Zhou et al. 2022 (one-step)"]
        assert onestep.resource_type is ResourceType.HYPERENTANGLEMENT

        single_photon = by_name["Zhou et al. 2023 (single-photon)"]
        assert single_photon.resource_type is ResourceType.SINGLE_QUBITS
        assert single_photon.qubits_per_message_bit == 2.0

        hyper = by_name["Zeng et al. 2023 (hyper-encoding)"]
        assert hyper.decoding_measurement is DecodingMeasurement.HYPER_BSM
        assert hyper.qubits_per_message_bit == 0.5

        assert PROPOSED_FEATURES.qubits_per_message_bit == 1.0
        assert PROPOSED_FEATURES.user_authentication

    def test_as_row_renders_fractions(self):
        row = Zeng2023HyperEncodingDIQSDC.features.as_row()
        assert row["No. of qubits per message bit"] == "1/2"
        assert Zhou2023SinglePhotonDIQSDC.features.as_row()[
            "No. of qubits per message bit"
        ] == "2"

    def test_render_table1_contains_all_protocols(self):
        text = render_table1()
        for row in table1_features():
            assert row.name in text
        assert "UA" in text


class TestBaselineTransmission:
    @pytest.mark.parametrize(
        "baseline_cls",
        [
            Zhou2020DIQSDC,
            Zhou2022OneStepDIQSDC,
            Zhou2023SinglePhotonDIQSDC,
            Zeng2023HyperEncodingDIQSDC,
        ],
    )
    def test_ideal_channel_delivers_message(self, baseline_cls):
        baseline = baseline_cls(check_pairs=64)
        result = baseline.transmit(MESSAGE, channel=NoiselessChannel(), rng=1)
        assert not result.aborted
        assert result.delivered_message_string == MESSAGE
        assert result.bit_error_rate == pytest.approx(0.0)
        assert not result.authenticated  # none of the baselines authenticate users
        assert all(value > 2.0 for value in result.chsh_values)

    @pytest.mark.parametrize(
        "baseline_cls",
        [Zhou2020DIQSDC, Zhou2022OneStepDIQSDC, Zeng2023HyperEncodingDIQSDC],
    )
    def test_noisy_channel_at_eta_10_mostly_correct(self, baseline_cls):
        baseline = baseline_cls(check_pairs=64)
        result = baseline.transmit(MESSAGE, channel=IdentityChainChannel(eta=10), rng=2)
        assert not result.aborted
        assert result.bit_error_rate <= 0.2

    def test_odd_length_message_is_handled(self):
        result = Zhou2020DIQSDC(check_pairs=48).transmit("101", rng=3)
        assert result.delivered_message_string == "101"

    def test_empty_message_rejected(self):
        with pytest.raises(ProtocolError):
            Zhou2020DIQSDC(check_pairs=16).transmit("")

    def test_invalid_constructor_parameters(self):
        with pytest.raises(ProtocolError):
            Zhou2020DIQSDC(check_pairs=0)
        with pytest.raises(ProtocolError):
            Zhou2020DIQSDC(chsh_threshold=5.0)

    def test_single_photon_counts_two_qubits_per_bit(self):
        baseline = Zhou2023SinglePhotonDIQSDC(check_pairs=16)
        result = baseline.transmit("1010", rng=4)
        assert result.metadata["transmitted_qubits_per_bit"] == 2
        # 4 bits -> at least 8 transmitted message qubits plus the check pairs.
        assert result.qubits_transmitted >= 8

    def test_hyper_encoding_packs_four_bits_per_photon_pair(self):
        baseline = Zeng2023HyperEncodingDIQSDC(check_pairs=16)
        result = baseline.transmit("10110011", rng=5)
        assert result.metadata["photon_pairs"] == 2

    def test_one_step_uses_single_transmission_round(self):
        baseline = Zhou2022OneStepDIQSDC(check_pairs=16)
        result = baseline.transmit("1011", rng=6)
        assert result.metadata["transmission_rounds"] == 1

    def test_heralding_efficiency_validation(self):
        with pytest.raises(ValueError):
            Zhou2023SinglePhotonDIQSDC(heralding_efficiency=0.0)

    def test_very_noisy_channel_aborts_baseline(self):
        result = Zhou2020DIQSDC(check_pairs=96).transmit(
            MESSAGE, channel=IdentityChainChannel(eta=20000), rng=7
        )
        assert result.aborted
        assert result.delivered_message is None


class TestFunctionalComparison:
    def test_all_protocols_deliver_on_a_clean_channel(self):
        comparison = run_functional_comparison(
            message="10110011", channel=NoiselessChannel(), check_pairs=128, seed=9
        )
        assert len(comparison.baseline_results) == 4
        delivered = comparison.delivered_correctly()
        assert len(delivered) == 5
        assert all(delivered.values())

    def test_all_baselines_helper(self):
        baselines = all_baselines(check_pairs=32)
        assert len(baselines) == 4
        assert all(b.check_pairs == 32 for b in baselines)
