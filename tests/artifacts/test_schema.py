"""Unit tests for the RunArtifact schema and the canonical JSON encoding."""

import json
import math

import pytest

from repro.artifacts.schema import (
    SCHEMA_VERSION,
    ArtifactSchemaError,
    RunArtifact,
    canonical_dumps,
    canonical_loads,
    check_schema_version,
    schema_major,
    to_jsonable,
)


def make_artifact(**overrides):
    fields = dict(
        experiment_id="e2e",
        mode="quick",
        params={"num_sessions": 3, "seed": 42, "messages": ("00", "11")},
        seeds={"seed": 42},
        timings={"run": 0.123},
        metrics={"ideal_delivery_rate": 1.0, "crossing": None},
        environment={"python": "3.11", "numpy": "2.0"},
    )
    fields.update(overrides)
    return RunArtifact(**fields)


class TestCanonicalEncoding:
    def test_deterministic_key_order(self):
        assert canonical_dumps({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_tuples_and_numpy_normalise(self):
        np = pytest.importorskip("numpy")
        assert canonical_dumps((1, 2)) == canonical_dumps([1, 2])
        assert canonical_dumps(np.int64(3)) == canonical_dumps(3)
        assert canonical_dumps(np.array([1.5, 2.5])) == canonical_dumps([1.5, 2.5])

    def test_nonfinite_floats_are_strict_json(self):
        text = canonical_dumps({"a": math.nan, "b": math.inf, "c": -math.inf})
        json.loads(text)  # must be parseable by a strict reader
        decoded = canonical_loads(text)
        assert math.isnan(decoded["a"])
        assert decoded["b"] == math.inf
        assert decoded["c"] == -math.inf

    def test_marker_collision_escapes(self):
        payload = {"$nonfinite": "nan", "other": 1}
        assert canonical_loads(canonical_dumps(payload)) == payload
        exact_marker = {"$nonfinite": "nan"}
        assert canonical_loads(canonical_dumps(exact_marker)) == exact_marker

    def test_unknown_objects_degrade_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert canonical_loads(canonical_dumps({"x": Weird()})) == {"x": "<weird>"}

    def test_non_string_keys_are_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_invalid_json_raises_schema_error(self):
        with pytest.raises(ArtifactSchemaError):
            canonical_loads("not json {")


class TestSchemaVersioning:
    def test_current_version_accepted(self):
        assert check_schema_version(SCHEMA_VERSION) == SCHEMA_VERSION

    def test_same_major_other_minor_accepted(self):
        major = schema_major(SCHEMA_VERSION)
        assert check_schema_version(f"{major}.99") == f"{major}.99"

    @pytest.mark.parametrize("version", ["2.0", "0.9", "99.1"])
    def test_unknown_major_rejected(self, version):
        with pytest.raises(ArtifactSchemaError, match="unsupported artifact schema"):
            check_schema_version(version)

    @pytest.mark.parametrize("version", ["", "x.y", "one"])
    def test_unparseable_version_rejected(self, version):
        with pytest.raises(ArtifactSchemaError):
            check_schema_version(version)

    def test_from_dict_rejects_unknown_major(self):
        data = make_artifact().to_dict()
        data["schema_version"] = "2.0"
        with pytest.raises(ArtifactSchemaError):
            RunArtifact.from_dict(data)

    def test_from_dict_rejects_wrong_kind(self):
        data = make_artifact().to_dict()
        data["kind"] = "trajectory"
        with pytest.raises(ArtifactSchemaError):
            RunArtifact.from_dict(data)


class TestRunArtifact:
    def test_json_round_trip(self):
        artifact = make_artifact()
        restored = RunArtifact.from_json(artifact.to_json())
        assert restored.experiment_id == artifact.experiment_id
        assert restored.canonical_json() == artifact.canonical_json()
        # tuples normalise to lists on the way through JSON
        assert restored.params["messages"] == ["00", "11"]

    def test_canonical_payload_strips_environment_and_timings(self):
        artifact = make_artifact()
        payload = artifact.canonical_payload()
        assert "environment" not in payload
        assert "timings" not in payload
        assert payload["metrics"] == to_jsonable(artifact.metrics)

    def test_canonical_json_ignores_host_and_timing_changes(self):
        one = make_artifact()
        two = make_artifact(
            timings={"run": 99.0}, environment={"python": "3.99", "numpy": "9.9"}
        )
        assert one.canonical_json() == two.canonical_json()

    def test_canonical_json_sees_metric_changes(self):
        one = make_artifact()
        two = make_artifact(metrics={**one.metrics, "ideal_delivery_rate": 0.5})
        assert one.canonical_json() != two.canonical_json()

    def test_write_and_read(self, tmp_path):
        artifact = make_artifact()
        target = artifact.write(tmp_path / "deep" / "artifact.json")
        assert RunArtifact.read(target).canonical_json() == artifact.canonical_json()
