"""Determinism and emission tests for the registry's artifact pipeline.

The load-bearing property: running any registered experiment twice in quick
mode with its default seeds produces **byte-identical** canonical artifact
payloads (params, seeds, metrics) once the environment/timing fields are
stripped.  This is the contract that makes committed artifact metrics
comparable across PRs and machines — the regression gate builds on it.
"""

import pytest

from repro.artifacts import capture_artifacts, has_extractor, last_artifact
from repro.artifacts.schema import RunArtifact
from repro.experiments.registry import get_experiment, list_experiments

EXPERIMENT_IDS = [experiment.experiment_id for experiment in list_experiments()]


@pytest.fixture(scope="module")
def artifact_pairs():
    """Run every registered experiment twice (quick mode), capturing artifacts."""
    pairs = {}
    for experiment in list_experiments():
        with capture_artifacts() as sink:
            experiment.run(quick=True)
            experiment.run(quick=True)
        pairs[experiment.experiment_id] = (sink[0], sink[1])
    return pairs


class TestArtifactDeterminism:
    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_quick_rerun_is_byte_identical(self, artifact_pairs, experiment_id):
        first, second = artifact_pairs[experiment_id]
        assert first.canonical_json() == second.canonical_json()

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_every_experiment_has_registered_metrics(self, artifact_pairs, experiment_id):
        artifact, _ = artifact_pairs[experiment_id]
        assert artifact.metrics, f"{experiment_id} produced an empty metrics dict"

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_seeds_are_surfaced(self, artifact_pairs, experiment_id):
        artifact, _ = artifact_pairs[experiment_id]
        assert artifact.seeds, f"{experiment_id} surfaced no seeds"
        for name, value in artifact.seeds.items():
            assert artifact.params[name] == value

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_artifact_shape(self, artifact_pairs, experiment_id):
        artifact, _ = artifact_pairs[experiment_id]
        assert artifact.experiment_id == experiment_id
        assert artifact.mode == "quick"
        assert artifact.timings["run"] > 0
        assert artifact.environment["python"]
        # the JSON form round-trips losslessly
        restored = RunArtifact.from_json(artifact.to_json())
        assert restored.canonical_json() == artifact.canonical_json()


class TestEmissionPlumbing:
    def test_params_include_signature_defaults(self, artifact_pairs):
        artifact, _ = artifact_pairs["e2e"]
        # quick_kwargs override num_sessions/message_length; eta/seed come
        # from run_end_to_end's signature defaults.
        assert artifact.params["num_sessions"] == 3
        assert artifact.params["eta"] == 10
        assert artifact.seeds == {"seed": 42}

    def test_last_artifact_tracks_most_recent(self):
        experiment = get_experiment("atk-leakage")
        experiment.run(quick=True)
        first = last_artifact("atk-leakage")
        experiment.run(quick=True, sessions_per_message=4)
        second = last_artifact("atk-leakage")
        assert first is not None and second is not None
        assert second.params["sessions_per_message"] == 4
        assert first.params["sessions_per_message"] == 6

    def test_extractors_cover_all_registered_results(self, artifact_pairs):
        # has_extractor needs a result instance for type dispatch; the
        # experiment-id fallback covers list-shaped results.
        for experiment in list_experiments():
            artifact, _ = artifact_pairs[experiment.experiment_id]
            assert artifact.metrics or has_extractor(None, experiment.experiment_id)

    def test_artifact_dir_env_writes_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
        get_experiment("atk-leakage").run(quick=True)
        written = tmp_path / "artifacts" / "atk-leakage.json"
        assert written.exists()
        assert RunArtifact.read(written).experiment_id == "atk-leakage"

    def test_capture_is_scoped(self):
        with capture_artifacts() as outer:
            get_experiment("atk-leakage").run(quick=True)
            with capture_artifacts() as inner:
                get_experiment("atk-leakage").run(quick=True)
        assert len(outer) == 2
        assert len(inner) == 1
