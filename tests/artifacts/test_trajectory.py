"""Unit tests for benchmark trajectory files."""

import math

import pytest

from repro.artifacts.schema import ArtifactSchemaError
from repro.artifacts.trajectory import MAX_STORED_SAMPLES, BenchmarkRecord, Trajectory


def make_record(name="bench::a", samples=(0.1, 0.2), **overrides):
    fields = dict(name=name, samples=list(samples), metrics={"accuracy": 0.9}, info={"backend": "auto"})
    fields.update(overrides)
    return BenchmarkRecord(**fields)


class TestBenchmarkRecord:
    def test_statistics(self):
        record = make_record(samples=[0.1, 0.3])
        assert record.mean_time == pytest.approx(0.2)
        assert record.min_time == pytest.approx(0.1)
        assert record.rounds == 2

    def test_empty_samples_rejected(self):
        with pytest.raises(ArtifactSchemaError, match="no timing samples"):
            make_record(samples=[])

    def test_round_trip(self):
        record = make_record()
        restored = BenchmarkRecord.from_dict(record.to_dict())
        assert restored == record

    def test_subsampling_caps_stored_samples(self):
        samples = [1.0 + i / 1000 for i in range(1000)]
        record = make_record(samples=samples)
        assert len(record.samples) == MAX_STORED_SAMPLES
        assert record.rounds == 1000
        # the quantile subsample preserves the extremes and the location
        assert record.samples[0] == min(samples)
        assert record.samples[-1] == max(samples)
        assert record.mean_time == pytest.approx(sum(samples) / len(samples), rel=1e-3)

    def test_subsampling_is_deterministic(self):
        samples = list(reversed([float(i) for i in range(500)]))
        assert make_record(samples=samples).samples == make_record(samples=samples).samples


class TestTrajectory:
    def test_round_trip(self):
        trajectory = Trajectory(label="BENCH_6", environment={"python": "3.11"})
        trajectory.add(make_record("bench::b"))
        trajectory.add(make_record("bench::a"))
        restored = Trajectory.from_json(trajectory.to_json())
        assert restored.label == "BENCH_6"
        assert restored.environment == {"python": "3.11"}
        # records serialise sorted by name
        assert restored.names() == ["bench::a", "bench::b"]
        assert restored.get("bench::b") == trajectory.get("bench::b")

    def test_duplicate_names_rejected(self):
        trajectory = Trajectory(label="x")
        trajectory.add(make_record("bench::a"))
        with pytest.raises(ArtifactSchemaError, match="duplicate"):
            trajectory.add(make_record("bench::a"))

    def test_unknown_major_rejected(self):
        data = Trajectory(label="x").to_dict()
        data["schema_version"] = "9.0"
        with pytest.raises(ArtifactSchemaError):
            Trajectory.from_dict(data)

    def test_wrong_kind_rejected(self):
        data = Trajectory(label="x").to_dict()
        data["kind"] = "run_artifact"
        with pytest.raises(ArtifactSchemaError):
            Trajectory.from_dict(data)

    def test_write_and_read(self, tmp_path):
        trajectory = Trajectory(label="t", records=[make_record()])
        target = trajectory.write(tmp_path / "t.json")
        assert Trajectory.read(target).to_json() == trajectory.to_json()

    def test_nan_metrics_survive(self):
        trajectory = Trajectory(label="t", records=[make_record(metrics={"x": math.nan})])
        restored = Trajectory.from_json(trajectory.to_json())
        assert math.isnan(restored.records[0].metrics["x"])
