"""Tests for ``python -m repro.artifacts`` (the CI regression gate CLI)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.artifacts.cli import EXIT_GATE_FAILED, EXIT_OK, EXIT_USAGE, load_payload, main
from repro.artifacts.schema import RunArtifact
from repro.artifacts.trajectory import BenchmarkRecord, Trajectory

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
COMMITTED_TRAJECTORY = REPO_ROOT / "BENCH_6.json"


def write_trajectory(path, label, benches):
    trajectory = Trajectory(label=label, environment={"python": "3.11"})
    for name, (samples, metrics) in benches.items():
        trajectory.add(BenchmarkRecord(name=name, samples=list(samples), metrics=metrics))
    return trajectory.write(path)


@pytest.fixture
def baseline(tmp_path):
    return write_trajectory(
        tmp_path / "baseline.json",
        "baseline",
        {
            "bench::fast": ([0.010], {"accuracy": 0.95}),
            "bench::slow": ([0.800], {"fidelity": 0.99}),
        },
    )


class TestCompare:
    def test_self_compare_exits_zero(self, baseline, capsys):
        assert main(["compare", str(baseline), str(baseline)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "gate: PASS" in out

    def test_injected_2x_timing_regression_exits_nonzero(self, baseline, tmp_path, capsys):
        regressed = write_trajectory(
            tmp_path / "current.json",
            "current",
            {
                "bench::fast": ([0.020], {"accuracy": 0.95}),  # 2x slower
                "bench::slow": ([0.800], {"fidelity": 0.99}),
            },
        )
        assert main(["compare", str(baseline), str(regressed)]) == EXIT_GATE_FAILED
        out = capsys.readouterr().out
        assert "regressed" in out and "gate: FAIL" in out

    def test_metric_drift_exits_nonzero(self, baseline, tmp_path, capsys):
        drifted = write_trajectory(
            tmp_path / "current.json",
            "current",
            {
                "bench::fast": ([0.010], {"accuracy": 0.80}),
                "bench::slow": ([0.800], {"fidelity": 0.99}),
            },
        )
        assert main(["compare", str(baseline), str(drifted)]) == EXIT_GATE_FAILED
        assert "METRICS DRIFTED" in capsys.readouterr().out

    def test_timing_threshold_flag_relaxes_the_gate(self, baseline, tmp_path):
        regressed = write_trajectory(
            tmp_path / "current.json",
            "current",
            {
                "bench::fast": ([0.020], {"accuracy": 0.95}),
                "bench::slow": ([0.800], {"fidelity": 0.99}),
            },
        )
        args = ["compare", str(baseline), str(regressed), "--timing-threshold", "4.0"]
        assert main(args) == EXIT_OK

    def test_allow_missing_flag(self, baseline, tmp_path):
        shrunk = write_trajectory(
            tmp_path / "current.json",
            "current",
            {"bench::fast": ([0.010], {"accuracy": 0.95})},
        )
        assert main(["compare", str(baseline), str(shrunk)]) == EXIT_GATE_FAILED
        assert (
            main(["compare", str(baseline), str(shrunk), "--allow-missing"]) == EXIT_OK
        )

    def test_json_output(self, baseline, capsys):
        assert main(["compare", str(baseline), str(baseline), "--json"]) == EXIT_OK
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert len(data["verdicts"]) == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["compare", str(missing), str(missing)]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_run_artifact_file_rejected(self, baseline, tmp_path, capsys):
        artifact = RunArtifact(
            experiment_id="x",
            mode="quick",
            params={},
            seeds={},
            timings={"run": 1.0},
            metrics={},
            environment={},
        )
        path = artifact.write(tmp_path / "artifact.json")
        assert main(["compare", str(baseline), str(path)]) == EXIT_USAGE

    def test_unknown_schema_major_exits_two(self, baseline, tmp_path, capsys):
        data = json.loads(baseline.read_text())
        data["schema_version"] = "9.0"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(data))
        assert main(["compare", str(bad), str(baseline)]) == EXIT_USAGE


class TestShowAndRun:
    def test_show_trajectory(self, baseline, capsys):
        assert main(["show", str(baseline)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "2 benchmarks" in out and "bench::fast" in out

    def test_show_run_artifact(self, tmp_path, capsys):
        artifact = RunArtifact(
            experiment_id="demo",
            mode="quick",
            params={"seed": 1},
            seeds={"seed": 1},
            timings={"run": 0.25},
            metrics={"rate": 0.5},
            environment={},
        )
        path = artifact.write(tmp_path / "artifact.json")
        assert main(["show", str(path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "experiment 'demo'" in out and "rate = 0.5" in out

    def test_run_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "leakage.json"
        assert main(["run", "atk-leakage", "--out", str(out_path)]) == EXIT_OK
        artifact = RunArtifact.read(out_path)
        assert artifact.experiment_id == "atk-leakage"
        assert artifact.metrics

    def test_run_unknown_experiment_exits_two(self, capsys):
        assert main(["run", "no-such-experiment"]) == EXIT_USAGE


class TestCommittedTrajectory:
    """The acceptance criteria on the committed BENCH_6.json itself."""

    def test_committed_trajectory_parses_and_is_current_schema(self):
        trajectory = Trajectory.read(COMMITTED_TRAJECTORY)
        assert trajectory.label == "BENCH_6"
        assert len(trajectory.records) >= 20
        assert isinstance(load_payload(COMMITTED_TRAJECTORY), Trajectory)

    def test_committed_self_compare_exits_zero_in_subprocess(self):
        # The exact command the acceptance criteria and CI run.
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.artifacts",
                "compare",
                str(COMMITTED_TRAJECTORY),
                str(COMMITTED_TRAJECTORY),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "gate: PASS" in result.stdout
