"""Golden-fixture pins for quick-mode run-artifact payloads.

``tests/fixtures/artifact_metrics_quick.json`` extends the golden e2e pins
to the artifact layer: for *every* registered experiment it pins the
canonical payload (params, seeds, metrics) the registry emits in quick
mode.  A refactor that drifts a numeric result, renames a metric, changes
a default parameter, or stops surfacing a seed fails here loudly.

For an intentional change, regenerate with
``PYTHONPATH=src python tests/fixtures/regenerate_artifact_metrics_quick.py``
and justify the diff in review.
"""

import json
from pathlib import Path

import pytest

from repro.artifacts.schema import canonical_dumps
from repro.experiments.registry import list_experiments

FIXTURE_PATH = Path(__file__).parent.parent / "fixtures" / "artifact_metrics_quick.json"

EXPERIMENT_IDS = [experiment.experiment_id for experiment in list_experiments()]


@pytest.fixture(scope="module")
def golden():
    with FIXTURE_PATH.open() as handle:
        return json.load(handle)["artifacts"]


@pytest.fixture(scope="module")
def current():
    import sys

    sys.path.insert(0, str(FIXTURE_PATH.parent))
    try:
        from regenerate_artifact_metrics_quick import build_fixture
    finally:
        sys.path.pop(0)
    return build_fixture()["artifacts"]


class TestGoldenArtifactMetrics:
    def test_fixture_covers_every_registered_experiment(self, golden):
        assert sorted(golden) == sorted(EXPERIMENT_IDS)

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_canonical_payload_exact(self, golden, current, experiment_id):
        # canonical_dumps normalises the JSON round-trip (tuples vs lists,
        # non-finite markers) so pinned and fresh payloads compare byte-wise.
        assert canonical_dumps(current[experiment_id]) == canonical_dumps(
            golden[experiment_id]
        ), f"{experiment_id} artifact payload drifted from the golden fixture"

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_pinned_payload_shape(self, golden, experiment_id):
        payload = golden[experiment_id]
        assert payload["experiment_id"] == experiment_id
        assert payload["mode"] == "quick"
        assert payload["metrics"], f"{experiment_id} pinned an empty metrics dict"
        assert payload["seeds"], f"{experiment_id} pinned no seeds"
