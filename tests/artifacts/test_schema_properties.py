"""Property-based tests (Hypothesis) for RunArtifact JSON round-trips.

Deterministic by construction (``derandomize=True``): Hypothesis replays the
same example set every run, so a CI pass is a stable pass.

The schema's contract under test: *any* params/metrics payload built from
JSON-ish values — including NaN/±inf floats, nested containers, and keys
that collide with the encoder's own marker objects — survives
``to_json``/``from_json`` with canonical-JSON equality, and unknown schema
majors are always rejected.
"""

import json
import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.artifacts.schema import (
    SCHEMA_VERSION,
    ArtifactSchemaError,
    RunArtifact,
    canonical_dumps,
    canonical_loads,
    schema_major,
)

SETTINGS = settings(max_examples=100, deadline=None, derandomize=True)

#: Scalar leaves, explicitly including the floats JSON cannot express.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=20),
)

#: Keys biased towards the encoder's own marker names to hunt collisions.
keys = st.one_of(st.text(max_size=12), st.sampled_from(["$nonfinite", "$escape", ""]))

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=12,
)

payload_dicts = st.dictionaries(keys, values, max_size=5)


def build(params, metrics, seed):
    return RunArtifact(
        experiment_id="prop",
        mode="quick",
        params=params,
        seeds={"seed": seed},
        timings={"run": 0.5},
        metrics=metrics,
        environment={"python": "x"},
    )


class TestRoundTrip:
    @SETTINGS
    @given(params=payload_dicts, metrics=payload_dicts, seed=st.integers(0, 2**31))
    def test_json_round_trip_is_canonical_identity(self, params, metrics, seed):
        artifact = build(params, metrics, seed)
        text = artifact.to_json()
        json.loads(text)  # strict JSON: no NaN/Infinity literals
        restored = RunArtifact.from_json(text)
        assert restored.canonical_json() == artifact.canonical_json()

    @SETTINGS
    @given(params=payload_dicts, metrics=payload_dicts, seed=st.integers(0, 2**31))
    def test_second_round_trip_is_stable(self, params, metrics, seed):
        artifact = build(params, metrics, seed)
        once = RunArtifact.from_json(artifact.to_json())
        twice = RunArtifact.from_json(once.to_json())
        assert once.to_json() == twice.to_json()

    @SETTINGS
    @given(value=values)
    def test_canonical_value_round_trip(self, value):
        text = canonical_dumps(value)
        json.loads(text)
        assert canonical_dumps(canonical_loads(text)) == text

    @SETTINGS
    @given(value=st.floats(allow_nan=True, allow_infinity=True, width=64))
    def test_every_float_survives(self, value):
        restored = canonical_loads(canonical_dumps(value))
        if math.isnan(value):
            assert math.isnan(restored)
        else:
            assert restored == value


class TestSchemaRejection:
    @SETTINGS
    @given(major=st.integers(min_value=0, max_value=999), minor=st.integers(0, 99))
    def test_unknown_majors_always_rejected(self, major, minor):
        data = build({}, {}, 0).to_dict()
        data["schema_version"] = f"{major}.{minor}"
        if major == schema_major(SCHEMA_VERSION):
            assert RunArtifact.from_dict(data).schema_version == f"{major}.{minor}"
        else:
            with pytest.raises(ArtifactSchemaError):
                RunArtifact.from_dict(data)
