"""Invariant and metamorphic battery for the scheduler under dynamics + QoS.

Pins the contracts the ``fig_sla`` experiment relies on:

* **conservation** — every offered session ends in exactly one of
  delivered / aborted / rejected, whatever the traffic × policy × dynamics
  combination;
* **weighted fairness** — under symmetric saturation the per-class mean
  admission wait is ordered by weight, and equal offered work gets equal
  capacity shares;
* **outage safety** — no admitted session's reservation interval crosses a
  link or node inside a failure window, and blocked sessions are rejected
  with the ``outage_timeout`` reason;
* **metamorphic identities** — trivial dynamics reproduce the static
  scheduler byte-for-byte, and uniformly scaling QoS weights changes
  nothing;
* **input normalization** — ``TraceTraffic`` results are independent of
  entry order, including duplicate timestamps.
"""

import json

import pytest

from repro.network import (
    DEFAULT_QOS_WEIGHTS,
    NetworkDynamics,
    OutageSchedule,
    OutageWindow,
    PoissonTraffic,
    QoSPolicy,
    TraceTraffic,
    condition_profile,
    grid_topology,
    line_topology,
    link_key,
    simulate_network,
)
from repro.network.sessions import SessionParameters

PARAMS = SessionParameters(identity_pairs=1, check_pairs_per_round=16)
CLASSES = ("control", "interactive", "bulk")


def _topology():
    return grid_topology(2, 2, qubit_capacity=48)


def _symmetric_trace(topology, slots: int = 20):
    """Identical offered work per class: same arrival times and endpoints."""
    names = list(topology.node_names)
    entries = []
    for index in range(slots):
        time = 1e-4 * index
        source = names[index % len(names)]
        target = names[(index + 3) % len(names)]
        for priority in CLASSES:
            entries.append((time, source, target, 8, priority))
    return TraceTraffic(entries)


def _assert_conserved(result):
    assert (
        result.delivered_count + result.aborted_count + result.rejected_count
        == result.num_sessions
    )
    admitted = sum(1 for record in result.records if record.admitted)
    assert admitted == result.delivered_count + result.aborted_count
    counts = result.class_counts()
    assert sum(c["sessions"] for c in counts.values()) == result.num_sessions
    for per_class in counts.values():
        assert (
            per_class["delivered"] + per_class["aborted"] + per_class["rejected"]
            == per_class["sessions"]
        )
        assert per_class["admitted"] == per_class["delivered"] + per_class["aborted"]


class TestConservation:
    @pytest.mark.parametrize("traffic_kind", ["poisson", "trace"])
    @pytest.mark.parametrize("qos_kind", ["none", "weighted"])
    @pytest.mark.parametrize("dynamics_kind", ["none", "static", "drift_outage"])
    def test_offered_sessions_conserved(self, traffic_kind, qos_kind, dynamics_kind):
        topology = _topology()
        if traffic_kind == "poisson":
            traffic = PoissonTraffic(
                num_sessions=30,
                rate=2000.0,
                message_length=8,
                priority_mix={name: 1.0 for name in CLASSES},
            )
        else:
            traffic = _symmetric_trace(topology, slots=10)
        qos = None if qos_kind == "none" else QoSPolicy(weights=dict(DEFAULT_QOS_WEIGHTS))
        if dynamics_kind == "none":
            dynamics = None
        else:
            dynamics = condition_profile(dynamics_kind, topology, seed=11, horizon=0.2)
        result = simulate_network(
            topology,
            traffic,
            session_params=PARAMS,
            max_wait=0.02,
            seed=7,
            executor="serial",
            dynamics=dynamics,
            qos=qos,
        )
        _assert_conserved(result)


class TestWeightedFairness:
    def _saturated_run(self, weights):
        topology = _topology()
        return simulate_network(
            topology,
            _symmetric_trace(topology),
            session_params=PARAMS,
            max_wait=0.05,
            seed=7,
            executor="serial",
            qos=QoSPolicy(weights=weights),
        )

    def test_mean_wait_ordered_by_weight(self):
        result = self._saturated_run({"control": 4.0, "interactive": 2.0, "bulk": 1.0})
        waits = {}
        for name in CLASSES:
            samples = [
                record.wait_time
                for record in result.records
                if record.priority == name and record.admitted
            ]
            assert samples, f"expected admitted {name} sessions under saturation"
            waits[name] = sum(samples) / len(samples)
        assert waits["control"] < waits["interactive"] < waits["bulk"]

    def test_equal_offered_work_gets_equal_shares(self):
        result = self._saturated_run({"control": 4.0, "interactive": 2.0, "bulk": 1.0})
        shares = result.class_shares()
        assert result.rejected_count > 0  # genuinely saturated
        for name in CLASSES:
            assert shares[name] == pytest.approx(1.0 / len(CLASSES), abs=0.15)


class TestOutageSafety:
    def test_no_reservation_crosses_failure_window(self):
        topology = grid_topology(3, 3, qubit_capacity=96)
        dynamics = condition_profile("drift_outage", topology, seed=5, horizon=0.3)
        outages = dynamics.outages
        assert outages is not None and outages.windows  # profile produced failures
        traffic = PoissonTraffic(num_sessions=60, rate=1500.0, message_length=8)
        result = simulate_network(
            topology,
            traffic,
            session_params=PARAMS,
            max_wait=0.05,
            seed=5,
            executor="serial",
            dynamics=dynamics,
        )
        checked = 0
        for record in result.records:
            if not record.admitted:
                continue
            start, end = record.start_time, record.finish_time
            for node in record.route_nodes:
                assert not outages.node_blocked(node, start, end)
            for node_a, node_b in zip(record.route_nodes, record.route_nodes[1:]):
                assert not outages.link_blocked(node_a, node_b, start, end)
                checked += 1
        assert checked > 0

    def test_blocked_sessions_reject_with_outage_timeout(self):
        topology = line_topology(2, qubit_capacity=64)
        names = list(topology.node_names)
        dynamics = NetworkDynamics(
            outages=OutageSchedule(
                [OutageWindow("link", link_key(names[0], names[1]), 0.0, 1000.0)]
            )
        )
        traffic = TraceTraffic([(0.0, names[0], names[1], 8)])
        result = simulate_network(
            topology,
            traffic,
            session_params=PARAMS,
            max_wait=0.01,
            seed=3,
            dynamics=dynamics,
        )
        record = result.records[0]
        assert not record.admitted
        assert record.abort_reason == "outage_timeout"
        assert "rejected:outage_timeout" in result.outage_decomposition()


class TestMetamorphic:
    def _run(self, *, dynamics=None, qos=None, executor="serial"):
        topology = _topology()
        traffic = PoissonTraffic(
            num_sessions=30,
            rate=1500.0,
            message_length=8,
            priority_mix={name: 1.0 for name in CLASSES},
        )
        return simulate_network(
            topology,
            traffic,
            session_params=PARAMS,
            max_wait=0.05,
            seed=9,
            executor=executor,
            dynamics=dynamics,
            qos=qos,
        )

    def test_trivial_dynamics_bit_identical_to_static(self):
        """The dynamic reservation pass degenerates exactly to the static one."""
        static = self._run()
        trivial = self._run(dynamics=NetworkDynamics.static())
        assert json.dumps(static.summary(), sort_keys=True) == json.dumps(
            trivial.summary(), sort_keys=True
        )
        for left, right in zip(static.records, trivial.records):
            assert left.summary() == right.summary()

    def test_uniform_weight_scaling_changes_nothing(self):
        base = self._run(qos=QoSPolicy(weights={"control": 4.0, "interactive": 2.0, "bulk": 1.0}))
        scaled = self._run(
            qos=QoSPolicy(weights={"control": 28.0, "interactive": 14.0, "bulk": 7.0})
        )
        assert json.dumps(base.summary(), sort_keys=True) == json.dumps(
            scaled.summary(), sort_keys=True
        )

    def test_serial_thread_parity_with_dynamics_and_qos(self):
        topology = _topology()
        dynamics = condition_profile("drift_outage", topology, seed=9, horizon=0.2)
        qos = QoSPolicy(weights=dict(DEFAULT_QOS_WEIGHTS))
        serial = self._run(dynamics=dynamics, qos=qos, executor="serial")
        threaded = self._run(dynamics=dynamics, qos=qos, executor="thread")
        assert json.dumps(serial.summary(), sort_keys=True) == json.dumps(
            threaded.summary(), sort_keys=True
        )


class TestTraceNormalization:
    def test_entry_order_irrelevant_with_duplicate_timestamps(self):
        """Regression: session ids / seeds once depended on caller entry order."""
        topology = _topology()
        names = list(topology.node_names)
        entries = [
            (0.0, names[0], names[1], 8, "bulk"),
            (0.0, names[2], names[3], 8, "control"),
            (0.0, names[1], names[2], 8, "interactive"),
            (1e-3, names[3], names[0], 8, "bulk"),
            (1e-3, names[0], names[2], 8, "bulk"),
        ]
        summaries = []
        for permutation in (entries, entries[::-1], entries[2:] + entries[:2]):
            result = simulate_network(
                topology,
                TraceTraffic(permutation),
                session_params=PARAMS,
                max_wait=0.05,
                seed=21,
                executor="serial",
            )
            summaries.append(json.dumps(result.summary(), sort_keys=True))
        assert summaries[0] == summaries[1] == summaries[2]

    def test_four_tuples_default_to_bulk(self):
        traffic = TraceTraffic([(0.0, "a", "b", 8)])
        assert traffic.entries[0][4] == "bulk"
