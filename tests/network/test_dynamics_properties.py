"""Property-based tests for :mod:`repro.network.dynamics` (derandomized)."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.network.dynamics import (  # noqa: E402
    CalibrationAging,
    DriftProfile,
    NetworkDynamics,
    OutageSchedule,
    OutageWindow,
)

SETTINGS = settings(max_examples=100, deadline=None, derandomize=True)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def piecewise_knots(draw):
    """Strictly increasing (time, value) knots for a piecewise profile."""
    count = draw(st.integers(min_value=1, max_value=6))
    raw_times = draw(
        st.lists(times, min_size=count, max_size=count, unique=True)
    )
    values = draw(st.lists(positive, min_size=count, max_size=count))
    return list(zip(sorted(raw_times), values))


@st.composite
def drift_profiles(draw):
    kind = draw(st.sampled_from(["constant", "linear", "sinusoid", "step", "piecewise"]))
    floor = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    ceiling = draw(st.floats(min_value=1.0, max_value=10.0, allow_nan=False))
    if kind == "piecewise":
        return DriftProfile(
            kind="piecewise",
            points=tuple(draw(piecewise_knots())),
            floor=floor,
            ceiling=ceiling,
        )
    return DriftProfile(
        kind=kind,
        base=draw(positive),
        amplitude=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
        rate=draw(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)),
        period=draw(positive),
        floor=floor,
        ceiling=ceiling,
    )


@st.composite
def outage_windows(draw):
    element = draw(st.sampled_from(["link", "node"]))
    name = draw(st.sampled_from(["a|b", "b|c", "n1", "n2"]))
    start = draw(times)
    length = draw(positive)
    return OutageWindow(element, name, start, start + length)


@st.composite
def calibration_agings(draw):
    return CalibrationAging(
        t1_scale=draw(drift_profiles()),
        t2_scale=draw(drift_profiles()),
        error_scale=draw(drift_profiles()),
    )


class TestDriftProfileProperties:
    @SETTINGS
    @given(knots=piecewise_knots(), t1=times, t2=times)
    def test_piecewise_monotone_between_monotone_knots(self, knots, t1, t2):
        """With non-decreasing knot values, evaluation is monotone in time."""
        values = sorted(value for _, value in knots)
        monotone = [(time, value) for (time, _), value in zip(knots, values)]
        profile = DriftProfile.piecewise(monotone)
        lo, hi = min(t1, t2), max(t1, t2)
        assert profile.value(lo) <= profile.value(hi) + 1e-12

    @SETTINGS
    @given(profile=drift_profiles(), t=times)
    def test_value_within_bounds(self, profile, t):
        value = profile.value(t)
        assert profile.floor <= value <= profile.ceiling

    @SETTINGS
    @given(profile=drift_profiles())
    def test_round_trip(self, profile):
        assert DriftProfile.from_dict(profile.to_dict()) == profile

    @SETTINGS
    @given(profile=drift_profiles(), t=times)
    def test_trivial_profiles_evaluate_to_one(self, profile, t):
        if profile.trivial:
            assert profile.value(t) == 1.0


class TestOutageScheduleProperties:
    @SETTINGS
    @given(windows=st.lists(outage_windows(), max_size=12))
    def test_normalized_windows_never_overlap(self, windows):
        """After normalization, same-element windows are disjoint and sorted."""
        schedule = OutageSchedule(windows)
        by_element: dict = {}
        for window in schedule.windows:
            by_element.setdefault((window.element, window.key), []).append(window)
        for group in by_element.values():
            for earlier, later in zip(group, group[1:]):
                assert earlier.end < later.start  # disjoint, non-adjacent

    @SETTINGS
    @given(windows=st.lists(outage_windows(), max_size=12), t=times)
    def test_normalization_preserves_coverage(self, windows, t):
        schedule = OutageSchedule(windows)
        raw = any(
            w.covers(t) and w.element == "node" and w.key == "n1" for w in windows
        )
        assert schedule.node_down("n1", t) == raw

    @SETTINGS
    @given(windows=st.lists(outage_windows(), max_size=8))
    def test_recovery_times_cover_all_ends(self, windows):
        schedule = OutageSchedule(windows)
        recoveries = schedule.recovery_times()
        assert recoveries == sorted(recoveries)
        for window in schedule.windows:
            assert window.end in recoveries

    @SETTINGS
    @given(windows=st.lists(outage_windows(), max_size=8))
    def test_round_trip(self, windows):
        schedule = OutageSchedule(windows)
        rebuilt = OutageSchedule.from_dict(schedule.to_dict())
        assert rebuilt.to_dict() == schedule.to_dict()


class TestDynamicsRoundTrip:
    @SETTINGS
    @given(
        drift=drift_profiles(),
        aging=calibration_agings(),
        windows=st.lists(outage_windows(), max_size=6),
    )
    def test_network_dynamics_round_trip(self, drift, aging, windows):
        dynamics = NetworkDynamics(
            channel_drift={"*": drift},
            aging=aging,
            outages=OutageSchedule(windows),
        )
        rebuilt = NetworkDynamics.from_dict(dynamics.to_dict())
        assert rebuilt.to_dict() == dynamics.to_dict()
        assert rebuilt.is_static() == dynamics.is_static()

    @SETTINGS
    @given(aging=calibration_agings())
    def test_calibration_aging_round_trip(self, aging):
        assert CalibrationAging.from_dict(aging.to_dict()) == aging
