"""Scheduler tests: determinism, capacity/abort accounting, traffic models."""

from __future__ import annotations

import pytest

from repro.channel.quantum_channel import NoiselessChannel
from repro.exceptions import NetworkError
from repro.network.metrics import NetworkResult
from repro.network.scheduler import (
    NetworkScheduler,
    PoissonTraffic,
    TraceTraffic,
    simulate_network,
)
from repro.network.sessions import (
    STATUS_ABORTED,
    STATUS_DELIVERED,
    STATUS_DELIVERED_WITH_ERRORS,
    STATUS_REJECTED,
    SessionParameters,
)
from repro.network.topology import grid_topology, line_topology

QUICK = SessionParameters(identity_pairs=2, check_pairs_per_round=16)


def _noiseless_grid(rows=2, cols=2, **node_kwargs):
    return grid_topology(
        rows, cols, channel_factory=lambda length: NoiselessChannel(), **node_kwargs
    )


class TestTrafficModels:
    def test_poisson_deterministic_under_seed(self):
        topology = _noiseless_grid()
        traffic = PoissonTraffic(num_sessions=10, rate=50.0, message_length=8)
        from repro.utils.rng import as_rng

        first = traffic.generate(topology, as_rng(4))
        second = traffic.generate(topology, as_rng(4))
        assert [
            (r.arrival_time, r.source, r.target) for r in first
        ] == [(r.arrival_time, r.source, r.target) for r in second]
        assert all(r.source != r.target for r in first)
        arrivals = [r.arrival_time for r in first]
        assert arrivals == sorted(arrivals)

    def test_poisson_validation(self):
        with pytest.raises(NetworkError):
            PoissonTraffic(num_sessions=0)
        with pytest.raises(NetworkError):
            PoissonTraffic(num_sessions=1, rate=0.0)

    def test_trace_traffic_sorted_and_validated(self):
        topology = line_topology(3)
        traffic = TraceTraffic([(0.2, "n2", "n0", 8), (0.1, "n0", "n2", 8)])
        requests = traffic.generate(topology)
        assert [r.arrival_time for r in requests] == [0.1, 0.2]
        assert requests[0].session_id == 0
        with pytest.raises(NetworkError):
            TraceTraffic([(0.0, "n0", "ghost", 8)]).generate(topology)
        with pytest.raises(NetworkError):
            TraceTraffic([])


class TestDeterminism:
    def test_identical_results_across_repeats_and_executors(self):
        """The acceptance-criteria property, at unit-test scale."""
        topology = _noiseless_grid(2, 3, qubit_capacity=128)
        traffic = PoissonTraffic(num_sessions=12, rate=300.0, message_length=8)
        baseline = simulate_network(
            topology, traffic, session_params=QUICK, seed=42, executor="serial"
        )
        repeat = simulate_network(
            topology, traffic, session_params=QUICK, seed=42, executor="serial"
        )
        threaded = simulate_network(
            topology, traffic, session_params=QUICK, seed=42, executor="thread",
            max_workers=4,
        )
        assert baseline.summary() == repeat.summary()
        assert baseline.summary() == threaded.summary()

    def test_different_seed_changes_traffic(self):
        topology = _noiseless_grid(2, 2)
        traffic = PoissonTraffic(num_sessions=6, rate=100.0)
        first = simulate_network(topology, traffic, session_params=QUICK, seed=1)
        second = simulate_network(topology, traffic, session_params=QUICK, seed=2)
        assert first.summary() != second.summary()

    def test_process_executor_rejected(self):
        with pytest.raises(NetworkError):
            NetworkScheduler(_noiseless_grid(), executor="process")


class TestCapacityAccounting:
    def test_all_sessions_accounted(self):
        topology = _noiseless_grid(2, 2, qubit_capacity=100)
        traffic = PoissonTraffic(num_sessions=15, rate=1000.0, message_length=8)
        result = simulate_network(
            topology, traffic, session_params=QUICK, seed=5, max_wait=0.01
        )
        statuses = (
            STATUS_DELIVERED,
            STATUS_DELIVERED_WITH_ERRORS,
            STATUS_ABORTED,
            STATUS_REJECTED,
        )
        assert sum(result.count(status) for status in statuses) == 15
        assert result.num_sessions == 15

    def test_unviable_sessions_rejected_immediately(self):
        # capacity below one session's per-hop pair budget: nothing can run
        needed = QUICK.pairs_per_hop(8)
        topology = _noiseless_grid(2, 2, qubit_capacity=needed - 1)
        traffic = PoissonTraffic(num_sessions=4, rate=100.0, message_length=8)
        result = simulate_network(topology, traffic, session_params=QUICK, seed=3)
        assert result.rejected_count == 4
        assert all(
            record.abort_reason == "insufficient_capacity"
            for record in result.records
        )
        assert result.delivery_rate == 0.0

    def test_contention_queues_then_serves(self):
        # One shared relay with room for exactly one relayed session at a
        # time: simultaneous arrivals must be serialised, so later sessions
        # see positive wait (and positive memory hold time).
        relay_capacity = 2 * QUICK.pairs_per_hop(8)
        topology = line_topology(
            3, channel_factory=lambda length: NoiselessChannel()
        )
        topology.node("n1").qubit_capacity = relay_capacity
        traffic = TraceTraffic([(0.0, "n0", "n2", 8), (0.0, "n0", "n2", 8)])
        result = simulate_network(
            topology, traffic, session_params=QUICK, seed=9, hop_overhead=1e-3
        )
        waits = sorted(record.wait_time for record in result.records)
        assert waits[0] == 0.0
        assert waits[1] > 0.0
        holds = sorted(record.hold_time for record in result.records)
        assert holds[1] > 0.0
        assert result.rejected_count == 0

    def test_impatient_sessions_time_out(self):
        relay_capacity = 2 * QUICK.pairs_per_hop(8)
        topology = line_topology(
            3, channel_factory=lambda length: NoiselessChannel()
        )
        topology.node("n1").qubit_capacity = relay_capacity
        # Second session times out before the first one's reservation clears.
        traffic = TraceTraffic([(0.0, "n0", "n2", 8), (0.0, "n0", "n2", 8)])
        result = simulate_network(
            topology,
            traffic,
            session_params=QUICK,
            seed=9,
            hop_overhead=1.0,
            max_wait=0.5,
        )
        assert result.rejected_count == 1
        rejected = [r for r in result.records if r.status == STATUS_REJECTED]
        assert rejected[0].abort_reason == "capacity_timeout"

    def test_no_route_is_rejected(self):
        from repro.network.topology import NetworkTopology

        topology = NetworkTopology()
        for name in ("a", "b", "c"):
            topology.add_node(name)
        topology.add_link("a", "b", NoiselessChannel())
        traffic = TraceTraffic([(0.0, "a", "c", 8)])
        result = simulate_network(topology, traffic, session_params=QUICK, seed=1)
        assert result.rejected_count == 1
        assert result.records[0].abort_reason == "no_route"


class TestMetrics:
    def _run(self) -> NetworkResult:
        topology = _noiseless_grid(2, 2, qubit_capacity=256)
        traffic = PoissonTraffic(num_sessions=10, rate=200.0, message_length=8)
        return simulate_network(topology, traffic, session_params=QUICK, seed=11)

    def test_rates_are_consistent(self):
        result = self._run()
        assert 0.0 <= result.abort_rate <= 1.0
        assert 0.0 <= result.delivery_rate <= 1.0
        assert result.delivered_count + result.aborted_count + result.rejected_count == 10
        assert result.throughput_sessions >= 0.0
        if result.delivered_count:
            assert result.mean_latency > 0.0
            assert result.throughput_bits == pytest.approx(
                8 * result.throughput_sessions
            )

    def test_link_utilisation_counts_hops(self):
        result = self._run()
        total_hops = sum(len(record.hop_reports) for record in result.records)
        assert sum(result.link_utilisation().values()) == total_hops

    def test_route_stats_partition_sessions(self):
        result = self._run()
        stats = result.route_stats()
        assert sum(entry["sessions"] for entry in stats.values()) == 10

    def test_summary_is_json_serialisable(self):
        import json

        text = json.dumps(self._run().summary())
        assert "throughput_sessions" in text

    def test_classical_channels_log_reservations(self):
        topology = _noiseless_grid(2, 2, qubit_capacity=256)
        traffic = PoissonTraffic(num_sessions=5, rate=200.0, message_length=8)
        result = simulate_network(topology, traffic, session_params=QUICK, seed=11)
        logged = sum(len(link.classical_channel.log) for link in topology.links)
        admitted_hops = sum(
            len(record.route_nodes) - 1
            for record in result.records
            if record.admitted
        )
        # one reserve + one release broadcast per admitted hop
        assert logged == 2 * admitted_hops


class TestRequestOverrides:
    """Requests may pin their own message and seed (the messaging facade does)."""

    class _FixedTraffic:
        def __init__(self, requests):
            self.requests = requests

        def generate(self, topology, rng=None):
            return list(self.requests)

    def _requests(self):
        from repro.network.sessions import SessionRequest

        return [
            SessionRequest(0, "n0", "n2", 8, 0.0, message="10110010", seed=107),
            SessionRequest(1, "n0", "n2", 8, 0.0, message="01010101", seed=202),
        ]

    def test_pinned_messages_are_delivered(self):
        topology = line_topology(3, channel_factory=lambda length: NoiselessChannel())
        result = simulate_network(
            topology, self._FixedTraffic(self._requests()), session_params=QUICK, seed=0
        )
        delivered = {r.session_id: r.delivered_message for r in result.records}
        assert delivered == {0: "10110010", 1: "01010101"}
        assert result.records[0].sent_message == "10110010"

    def test_pinned_seeds_make_outcomes_scheduler_seed_independent(self):
        """With per-request seeds, the scheduler seed must not affect quantum outcomes."""

        def run(scheduler_seed):
            topology = line_topology(
                3, channel_factory=lambda length: NoiselessChannel()
            )
            return simulate_network(
                topology,
                self._FixedTraffic(self._requests()),
                session_params=QUICK,
                seed=scheduler_seed,
            )

        first, second = run(1), run(2)
        assert [r.summary() for r in first.records] == [
            r.summary() for r in second.records
        ]
