"""Routing correctness on known graphs, including the loss-aware policy."""

from __future__ import annotations

import pytest

from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.exceptions import NetworkError
from repro.network.routing import Route, RoutingTable, find_route, link_loss_weight
from repro.network.topology import (
    NetworkTopology,
    grid_topology,
    line_topology,
    ring_topology,
)


class TestRoute:
    def test_properties(self):
        route = Route(nodes=("a", "b", "c"))
        assert route.source == "a"
        assert route.target == "c"
        assert route.num_hops == 2
        assert route.relays == ("b",)
        assert route.hops() == [("a", "b"), ("b", "c")]

    def test_rejects_degenerate_paths(self):
        with pytest.raises(NetworkError):
            Route(nodes=("a",))
        with pytest.raises(NetworkError):
            Route(nodes=("a", "b", "a"))


class TestShortestHops:
    def test_line_end_to_end(self):
        topology = line_topology(5)
        route = find_route(topology, "n0", "n4")
        assert route.nodes == ("n0", "n1", "n2", "n3", "n4")
        assert route.cost == 4

    def test_ring_takes_short_side(self):
        topology = ring_topology(6)
        route = find_route(topology, "n0", "n2")
        assert route.nodes == ("n0", "n1", "n2")

    def test_grid_manhattan_distance(self):
        topology = grid_topology(3, 3)
        route = find_route(topology, "n0_0", "n2_2")
        assert route.num_hops == 4

    def test_deterministic_tiebreak(self):
        # A 2×2 grid has two equal-length paths between opposite corners;
        # Dijkstra's lexicographic tie-break must always pick the same one.
        topology = grid_topology(2, 2)
        routes = {find_route(topology, "n0_0", "n1_1").nodes for _ in range(10)}
        assert routes == {("n0_0", "n0_1", "n1_1")}

    def test_unreachable_raises(self):
        topology = NetworkTopology()
        topology.add_node("a")
        topology.add_node("b")
        topology.add_node("c")
        topology.add_link("a", "b")
        with pytest.raises(NetworkError):
            find_route(topology, "a", "c")

    def test_same_endpoints_rejected(self):
        topology = line_topology(3)
        with pytest.raises(NetworkError):
            find_route(topology, "n0", "n0")

    def test_unknown_policy_rejected(self):
        topology = line_topology(3)
        with pytest.raises(NetworkError):
            find_route(topology, "n0", "n2", policy="fastest")


class TestLowestLoss:
    def _triangle(self) -> NetworkTopology:
        """Direct edge a—c is very noisy; the a—b—c detour is clean."""
        topology = NetworkTopology()
        for name in ("a", "b", "c"):
            topology.add_node(name)
        topology.add_link("a", "c", IdentityChainChannel(eta=500))
        topology.add_link("a", "b", NoiselessChannel())
        topology.add_link("b", "c", NoiselessChannel())
        return topology

    def test_hops_policy_takes_direct_edge(self):
        route = find_route(self._triangle(), "a", "c", policy="hops")
        assert route.nodes == ("a", "c")

    def test_loss_policy_takes_clean_detour(self):
        route = find_route(self._triangle(), "a", "c", policy="loss")
        assert route.nodes == ("a", "b", "c")

    def test_loss_weight_monotone_in_eta(self):
        topology = NetworkTopology()
        for name in ("a", "b"):
            topology.add_node(name)
        short = topology.add_link("a", "b", IdentityChainChannel(eta=10))
        assert link_loss_weight(short) > 0
        long_link = NetworkTopology()
        for name in ("a", "b"):
            long_link.add_node(name)
        longer = long_link.add_link("a", "b", IdentityChainChannel(eta=100))
        assert link_loss_weight(longer) > link_loss_weight(short)


class TestRoutingTable:
    def test_caches_routes(self):
        table = RoutingTable(grid_topology(3, 3))
        first = table.route("n0_0", "n2_2")
        second = table.route("n0_0", "n2_2")
        assert first is second
        assert len(table) == 1

    def test_rejects_unknown_policy(self):
        with pytest.raises(NetworkError):
            RoutingTable(line_topology(3), policy="magic")
