"""Unit tests for network topology construction and the standard generators."""

from __future__ import annotations

import pytest

from repro.channel.quantum_channel import IdentityChainChannel
from repro.exceptions import NetworkError
from repro.network.topology import (
    NetworkNode,
    NetworkTopology,
    build_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    ring_topology,
    star_topology,
)
from repro.quantum.channels import depolarizing_channel


class TestNetworkTopology:
    def test_add_nodes_and_links(self):
        topology = NetworkTopology("t")
        topology.add_node("a")
        topology.add_node("b", qubit_capacity=64)
        link = topology.add_link("a", "b", IdentityChainChannel(eta=20))
        assert topology.num_nodes == 2
        assert topology.num_links == 1
        assert link.key == ("a", "b")
        assert topology.node("b").qubit_capacity == 64
        assert topology.link("b", "a") is link  # undirected lookup

    def test_duplicate_node_rejected(self):
        topology = NetworkTopology()
        topology.add_node("a")
        with pytest.raises(NetworkError):
            topology.add_node("a")

    def test_duplicate_and_self_links_rejected(self):
        topology = NetworkTopology()
        topology.add_node("a")
        topology.add_node("b")
        topology.add_link("a", "b")
        with pytest.raises(NetworkError):
            topology.add_link("b", "a")
        with pytest.raises(NetworkError):
            topology.add_link("a", "a")

    def test_link_to_unknown_node_rejected(self):
        topology = NetworkTopology()
        topology.add_node("a")
        with pytest.raises(NetworkError):
            topology.add_link("a", "ghost")

    def test_neighbors_sorted(self):
        topology = star_topology(4)
        assert topology.neighbors("n0") == ["n1", "n2", "n3"]
        assert topology.neighbors("n2") == ["n0"]

    def test_compromise_marks_node(self):
        topology = line_topology(3)
        assert topology.compromised_nodes() == []
        topology.compromise("n1", lambda rng: object())
        assert topology.node("n1").compromised
        assert topology.compromised_nodes() == ["n1"]

    def test_node_validation(self):
        with pytest.raises(NetworkError):
            NetworkNode(name="")
        with pytest.raises(NetworkError):
            NetworkNode(name="a", qubit_capacity=0)
        with pytest.raises(NetworkError):
            NetworkNode(name="a", memory_decoherence=depolarizing_channel(0.1, num_qubits=2))

    def test_spawn_memory_uses_node_model(self):
        node = NetworkNode(name="a", memory_decoherence=depolarizing_channel(0.2))
        memory = node.spawn_memory()
        assert memory.decoherence_channel is node.memory_decoherence
        assert NetworkNode(name="b").spawn_memory().decoherence_channel is None


class TestGenerators:
    def test_line(self):
        topology = line_topology(5)
        assert topology.num_nodes == 5
        assert topology.num_links == 4
        assert topology.is_connected()
        assert topology.neighbors("n2") == ["n1", "n3"]

    def test_ring(self):
        topology = ring_topology(6)
        assert topology.num_links == 6
        assert all(len(topology.neighbors(n)) == 2 for n in topology.node_names)

    def test_star(self):
        topology = star_topology(7)
        assert topology.num_links == 6
        assert len(topology.neighbors("n0")) == 6

    def test_grid(self):
        topology = grid_topology(3, 4)
        assert topology.num_nodes == 12
        # 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17
        assert topology.num_links == 17
        assert topology.is_connected()
        assert sorted(topology.neighbors("n1_1")) == ["n0_1", "n1_0", "n1_2", "n2_1"]

    def test_grid_corner_degree(self):
        topology = grid_topology(3, 3)
        assert len(topology.neighbors("n0_0")) == 2
        assert len(topology.neighbors("n1_1")) == 4

    def test_geometric_deterministic_and_connected(self):
        first = random_geometric_topology(10, radius=0.3, rng=11)
        second = random_geometric_topology(10, radius=0.3, rng=11)
        assert first.is_connected()
        assert [link.key for link in first.links] == [link.key for link in second.links]
        assert [first.node(n).position for n in first.node_names] == [
            second.node(n).position for n in second.node_names
        ]

    def test_geometric_lengths_feed_channel_factory(self):
        lengths = []

        def factory(length):
            lengths.append(length)
            return IdentityChainChannel(eta=10)

        topology = random_geometric_topology(8, radius=0.5, rng=3, channel_factory=factory)
        assert len(lengths) == topology.num_links
        assert all(length > 0 for length in lengths)
        for link in topology.links:
            assert link.length > 0

    def test_build_topology_dispatch(self):
        assert build_topology("line", num_nodes=4).num_nodes == 4
        assert build_topology("grid", rows=2, cols=2).num_links == 4
        with pytest.raises(NetworkError):
            build_topology("torus", num_nodes=4)

    def test_generators_reject_tiny_networks(self):
        with pytest.raises(NetworkError):
            line_topology(1)
        with pytest.raises(NetworkError):
            ring_topology(2)
        with pytest.raises(NetworkError):
            grid_topology(1, 1)
