"""Unit tests for :mod:`repro.network.dynamics`."""

import math

import pytest

from repro.channel.quantum_channel import (
    DepolarizingChannel,
    FiberLossChannel,
    IdentityChainChannel,
    NoiselessChannel,
)
from repro.device.calibration import ibm_brisbane_calibration
from repro.exceptions import NetworkError
from repro.network.dynamics import (
    CONDITION_PROFILES,
    CalibrationAging,
    DriftProfile,
    NetworkDynamics,
    OutageSchedule,
    OutageWindow,
    condition_profile,
    evolve_channel,
    link_key,
)
from repro.network.routing import find_route
from repro.network.topology import grid_topology


class TestDriftProfile:
    def test_constant(self):
        profile = DriftProfile.constant(1.3)
        assert profile.value(0.0) == 1.3
        assert profile.value(100.0) == 1.3

    def test_linear_ramp(self):
        profile = DriftProfile.linear(base=1.0, rate=0.5)
        assert profile.value(0.0) == 1.0
        assert profile.value(2.0) == pytest.approx(2.0)

    def test_sinusoid_period(self):
        profile = DriftProfile.sinusoid(base=1.0, amplitude=0.5, period=4.0)
        assert profile.value(0.0) == pytest.approx(1.0)
        assert profile.value(1.0) == pytest.approx(1.5)
        assert profile.value(3.0) == pytest.approx(0.5)

    def test_step_staircase(self):
        profile = DriftProfile(kind="step", base=1.0, amplitude=0.25, period=1.0)
        assert profile.value(0.5) == 1.0
        assert profile.value(2.5) == pytest.approx(1.5)

    def test_piecewise_interpolates_and_clamps_ends(self):
        profile = DriftProfile.piecewise([(1.0, 1.0), (3.0, 2.0)])
        assert profile.value(0.0) == 1.0  # before first knot
        assert profile.value(2.0) == pytest.approx(1.5)
        assert profile.value(9.0) == 2.0  # past last knot

    def test_floor_and_ceiling_clip(self):
        profile = DriftProfile.linear(base=1.0, rate=-10.0)
        assert profile.value(100.0) == 0.0  # default floor
        capped = DriftProfile.linear(base=1.0, rate=10.0, ceiling=2.0)
        assert capped.value(100.0) == 2.0

    def test_trivial_detection(self):
        assert DriftProfile().trivial
        assert DriftProfile.sinusoid(amplitude=0.0).trivial
        assert not DriftProfile.sinusoid(amplitude=0.1).trivial
        assert not DriftProfile.constant(1.01).trivial

    def test_validation(self):
        with pytest.raises(NetworkError):
            DriftProfile(kind="nope")
        with pytest.raises(NetworkError):
            DriftProfile(kind="sinusoid", period=0.0)
        with pytest.raises(NetworkError):
            DriftProfile.piecewise([(1.0, 1.0), (1.0, 2.0)])  # non-increasing
        with pytest.raises(NetworkError):
            DriftProfile(floor=1.0, ceiling=0.5)

    def test_round_trip(self):
        profile = DriftProfile.piecewise([(0.0, 1.0), (2.5, 0.75)], ceiling=1.5)
        assert DriftProfile.from_dict(profile.to_dict()) == profile


class TestCalibrationAging:
    def test_apply_bumps_version_and_scales(self):
        calibration = ibm_brisbane_calibration()
        before_version = calibration.version
        before_t1 = calibration.qubit_defaults.t1
        before_error = calibration.gate("id").error
        aging = CalibrationAging(
            t1_scale=DriftProfile.constant(0.5),
            t2_scale=DriftProfile.constant(0.5),
            error_scale=DriftProfile.constant(2.0),
        )
        aging.apply_to(calibration, time=1.0)
        assert calibration.version > before_version
        assert calibration.qubit_defaults.t1 == pytest.approx(before_t1 * 0.5)
        assert calibration.gate("id").error == pytest.approx(before_error * 2.0)

    def test_t2_reclamped_to_physical_bound(self):
        calibration = ibm_brisbane_calibration()
        aging = CalibrationAging(
            t1_scale=DriftProfile.constant(0.1),
            t2_scale=DriftProfile.constant(1.0),
        )
        aging.apply_to(calibration, time=0.0)
        defaults = calibration.qubit_defaults
        assert defaults.t2 <= 2.0 * defaults.t1 + 1e-15

    def test_round_trip(self):
        aging = CalibrationAging(error_scale=DriftProfile.linear(rate=0.25))
        assert CalibrationAging.from_dict(aging.to_dict()) == aging


class TestOutageSchedule:
    def test_window_semantics_half_open(self):
        window = OutageWindow("link", "a|b", 1.0, 2.0)
        assert not window.covers(0.999)
        assert window.covers(1.0)
        assert window.covers(1.999)
        assert not window.covers(2.0)  # recovered exactly at end

    def test_window_validation(self):
        with pytest.raises(NetworkError):
            OutageWindow("cable", "a|b", 0.0, 1.0)
        with pytest.raises(NetworkError):
            OutageWindow("link", "a|b", 1.0, 1.0)
        with pytest.raises(NetworkError):
            OutageWindow("link", "a|b", math.inf, math.inf + 1)

    def test_normalisation_merges_overlaps(self):
        schedule = OutageSchedule(
            [
                OutageWindow("link", "a|b", 0.0, 2.0),
                OutageWindow("link", "a|b", 1.0, 3.0),
                OutageWindow("link", "a|b", 3.0, 4.0),  # adjacent: merged too
                OutageWindow("node", "n1", 0.5, 1.5),
            ]
        )
        link_windows = [w for w in schedule.windows if w.element == "link"]
        assert len(link_windows) == 1
        assert (link_windows[0].start, link_windows[0].end) == (0.0, 4.0)
        assert schedule.link_down("b", "a", 3.5)  # endpoint order irrelevant
        assert not schedule.link_down("a", "b", 4.0)
        assert schedule.node_down("n1", 1.0)

    def test_blocked_interval_queries(self):
        schedule = OutageSchedule([OutageWindow("link", "a|b", 5.0, 6.0)])
        assert schedule.link_blocked("a", "b", 4.0, 5.0)
        assert schedule.link_blocked("a", "b", 5.5, 9.0)
        assert not schedule.link_blocked("a", "b", 6.0, 9.0)

    def test_recovery_times_sorted_distinct(self):
        schedule = OutageSchedule(
            [
                OutageWindow("link", "a|b", 0.0, 2.0),
                OutageWindow("node", "n", 1.0, 2.0),
                OutageWindow("node", "m", 0.0, 1.0),
            ]
        )
        assert schedule.recovery_times() == [1.0, 2.0]

    def test_random_schedule_deterministic(self):
        topology = grid_topology(2, 2)
        kwargs = dict(seed=5, horizon=10.0, link_failure_rate=0.3, mean_downtime=1.0)
        first = OutageSchedule.random(topology, **kwargs)
        second = OutageSchedule.random(topology, **kwargs)
        assert first.to_dict() == second.to_dict()
        other = OutageSchedule.random(topology, **{**kwargs, "seed": 6})
        assert first.to_dict() != other.to_dict()

    def test_round_trip(self):
        schedule = OutageSchedule([OutageWindow("node", "n3", 0.25, 1.75)])
        assert OutageSchedule.from_dict(schedule.to_dict()).to_dict() == schedule.to_dict()


class TestEvolveChannel:
    def test_identity_returns_same_object(self):
        channel = IdentityChainChannel(eta=10)
        assert evolve_channel(channel, 1.0, 1.0, 1.0) is channel

    def test_identity_chain_scaling(self):
        channel = IdentityChainChannel(eta=10)
        evolved = evolve_channel(channel, error_scale=2.0, t1_scale=0.5, t2_scale=0.5)
        assert evolved is not channel
        assert evolved.gate_error == pytest.approx(channel.gate_error * 2.0)
        assert evolved.t1 == pytest.approx(channel.t1 * 0.5)
        assert evolved.t2 <= 2.0 * evolved.t1 + 1e-15

    def test_depolarizing_probability_clipped(self):
        channel = DepolarizingChannel(probability=0.6)
        assert evolve_channel(channel, error_scale=2.0).probability == 1.0

    def test_fiber_scaling(self):
        channel = FiberLossChannel(length_km=5.0)
        evolved = evolve_channel(channel, error_scale=2.0)
        assert evolved.attenuation_db_per_km == pytest.approx(
            channel.attenuation_db_per_km * 2.0
        )
        assert evolved.length_km == channel.length_km

    def test_unknown_channel_unchanged(self):
        channel = NoiselessChannel()
        assert evolve_channel(channel, error_scale=3.0) is channel

    def test_negative_factor_rejected(self):
        with pytest.raises(NetworkError):
            evolve_channel(IdentityChainChannel(eta=10), error_scale=-0.1)


class TestNetworkDynamics:
    def test_specific_link_overrides_wildcard(self):
        dynamics = NetworkDynamics(
            channel_drift={
                "*": DriftProfile.constant(2.0),
                link_key("b", "a"): DriftProfile.constant(3.0),
            }
        )
        assert dynamics.factors_at("a", "b", 0.0)[0] == 3.0
        assert dynamics.factors_at("a", "c", 0.0)[0] == 2.0

    def test_is_static(self):
        assert NetworkDynamics.static().is_static()
        assert NetworkDynamics(
            channel_drift={"*": DriftProfile.sinusoid(amplitude=0.0)}
        ).is_static()
        assert not NetworkDynamics(
            channel_drift={"*": DriftProfile.sinusoid(amplitude=0.5)}
        ).is_static()
        assert not NetworkDynamics(
            outages=OutageSchedule([OutageWindow("node", "n", 0.0, 1.0)])
        ).is_static()

    def test_route_blocked_reports_elements(self):
        topology = grid_topology(2, 2)
        route = find_route(topology, "n0_0", "n1_1")
        key = link_key(route.nodes[0], route.nodes[1])
        dynamics = NetworkDynamics(
            outages=OutageSchedule([OutageWindow("link", key, 0.0, 1.0)])
        )
        assert ("link", key) in dynamics.route_blocked(route, 0.5, 0.6)
        assert dynamics.route_blocked(route, 1.0, 2.0) == []

    def test_round_trip(self):
        dynamics = NetworkDynamics(
            channel_drift={"*": DriftProfile.sinusoid(amplitude=0.4, period=2.0)},
            aging=CalibrationAging(error_scale=DriftProfile.linear(rate=0.1)),
            outages=OutageSchedule([OutageWindow("link", "a|b", 0.0, 1.0)]),
        )
        assert NetworkDynamics.from_dict(dynamics.to_dict()).to_dict() == dynamics.to_dict()

    def test_condition_profiles(self):
        topology = grid_topology(2, 2)
        for name in CONDITION_PROFILES:
            dynamics = condition_profile(name, topology, seed=3, horizon=1.0)
            assert isinstance(dynamics, NetworkDynamics)
        assert condition_profile("static", topology, 3, 1.0).is_static()
        assert not condition_profile("drift", topology, 3, 1.0).is_static()
        with pytest.raises(NetworkError):
            condition_profile("stormy", topology, 3, 1.0)
