"""Multi-hop session execution: relaying, error accounting, compromised relays."""

from __future__ import annotations

import pytest

from repro.attacks.intercept_resend import InterceptResendAttack
from repro.channel.quantum_channel import NoiselessChannel
from repro.exceptions import NetworkError
from repro.network.routing import find_route
from repro.network.sessions import (
    STATUS_ABORTED,
    STATUS_DELIVERED,
    SessionParameters,
    SessionRequest,
    run_session,
)
from repro.network.topology import line_topology


def _noiseless_line(num_nodes: int):
    return line_topology(num_nodes, channel_factory=lambda length: NoiselessChannel())


def _request(topology, message_length=8, session_id=0):
    names = topology.node_names
    return SessionRequest(
        session_id=session_id,
        source=names[0],
        target=names[-1],
        message_length=message_length,
        arrival_time=0.0,
    )


PARAMS = SessionParameters(identity_pairs=2, check_pairs_per_round=48)


class TestSessionRequest:
    def test_validation(self):
        with pytest.raises(NetworkError):
            SessionRequest(0, "a", "a", 8, 0.0)
        with pytest.raises(NetworkError):
            SessionRequest(0, "a", "b", 0, 0.0)
        with pytest.raises(NetworkError):
            SessionRequest(0, "a", "b", 8, -1.0)

    def test_explicit_message_validation(self):
        with pytest.raises(NetworkError):
            SessionRequest(0, "a", "b", 8, 0.0, message="10x10010")
        with pytest.raises(NetworkError):
            SessionRequest(0, "a", "b", 8, 0.0, message="1011")  # length mismatch
        request = SessionRequest(0, "a", "b", 4, 0.0, message="1011", seed=9)
        assert request.message == "1011" and request.seed == 9


class TestExplicitMessageAndSeed:
    def test_explicit_message_is_delivered(self):
        topology = _noiseless_line(3)
        request = SessionRequest(0, "n0", "n2", 8, 0.0, message="10110010")
        outcome = run_session(
            topology, find_route(topology, "n0", "n2"), request, PARAMS, seed=11
        )
        assert outcome.status == STATUS_DELIVERED
        assert outcome.sent_message == "10110010"
        assert outcome.delivered_message == "10110010"

    def test_explicit_message_keeps_hop_randomness(self):
        """Supplying the random-path message explicitly must not perturb seeds.

        The per-hop RNG derivation consumes parent state in a fixed
        sequence; a request carrying the exact bits the random path would
        have drawn must reproduce the random-path outcome bit for bit.
        """
        topology = _noiseless_line(3)
        route = find_route(topology, "n0", "n2")
        implicit = run_session(
            topology, route, _request(topology), PARAMS, seed=23
        )
        explicit_request = SessionRequest(
            0, "n0", "n2", 8, 0.0, message=implicit.sent_message
        )
        explicit = run_session(topology, route, explicit_request, PARAMS, seed=23)
        assert explicit.summary() == implicit.summary()


class TestSessionParameters:
    def test_check_bits_parity_rule(self):
        params = SessionParameters()
        for length in (4, 8, 9, 16, 33):
            check_bits = params.check_bits_for(length)
            assert (length + check_bits) % 2 == 0
            assert check_bits >= 2

    def test_pairs_per_hop(self):
        params = SessionParameters(identity_pairs=2, check_pairs_per_round=16)
        # n=8 -> c=2 -> N=5; total = 5 + 2*2 + 2*16 = 41
        assert params.pairs_per_hop(8) == 41

    def test_explicit_check_bits_respected(self):
        params = SessionParameters(num_check_bits=4)
        assert params.check_bits_for(8) == 4
        assert params.check_bits_for(9) == 5  # parity adjustment


class TestSingleHop:
    def test_delivers_exact_message(self):
        topology = _noiseless_line(2)
        route = find_route(topology, "n0", "n1")
        outcome = run_session(topology, route, _request(topology), PARAMS, seed=101)
        assert outcome.status == STATUS_DELIVERED
        assert outcome.delivered
        assert outcome.end_to_end_error_rate == 0.0
        assert outcome.delivered_message == outcome.sent_message
        assert len(outcome.hop_reports) == 1
        assert outcome.hop_reports[0].success

    def test_deterministic_for_seed(self):
        topology = _noiseless_line(2)
        route = find_route(topology, "n0", "n1")
        first = run_session(topology, route, _request(topology), PARAMS, seed=7)
        second = run_session(topology, route, _request(topology), PARAMS, seed=7)
        assert first.summary() == second.summary()
        third = run_session(topology, route, _request(topology), PARAMS, seed=8)
        assert third.sent_message != first.sent_message  # message derives from seed

    def test_route_must_match_request(self):
        topology = _noiseless_line(3)
        route = find_route(topology, "n0", "n1")
        with pytest.raises(NetworkError):
            run_session(topology, route, _request(topology), PARAMS, seed=1)


class TestTrustedRelay:
    def test_two_hop_relay_delivers(self):
        topology = _noiseless_line(3)
        route = find_route(topology, "n0", "n2")
        outcome = run_session(topology, route, _request(topology), PARAMS, seed=21)
        assert outcome.status == STATUS_DELIVERED
        assert [r.sender for r in outcome.hop_reports] == ["n0", "n1"]
        assert [r.receiver for r in outcome.hop_reports] == ["n1", "n2"]

    def test_abort_stops_at_failed_hop(self):
        # A relay mounting a full intercept-resend attack breaks the CHSH
        # correlations of the pairs it forwards; the session must stop at
        # that hop and never execute the next one.
        topology = _noiseless_line(4)
        topology.compromise("n2", lambda rng: InterceptResendAttack(rng=rng))
        route = find_route(topology, "n0", "n3")
        outcome = run_session(topology, route, _request(topology), PARAMS, seed=3)
        assert outcome.status == STATUS_ABORTED
        assert outcome.failed_hop is not None
        # hop 1 (n1->n2) is the first hop touching the compromised relay
        assert outcome.failed_hop == 1
        assert len(outcome.hop_reports) == outcome.failed_hop + 1
        assert outcome.delivered_message is None


class TestCompromisedRelayDetection:
    def test_intercept_resend_relay_is_detected(self):
        """The headline security property: a malicious relay cannot hide.

        Intercept-resend destroys entanglement, so the DI security check of
        every hop adjacent to the compromised relay should fire with
        overwhelming probability (the paper's §III-B analysis); across many
        seeded sessions the detection rate must be near one.
        """
        topology = _noiseless_line(3)
        topology.compromise("n1", lambda rng: InterceptResendAttack(rng=rng))
        route = find_route(topology, "n0", "n2")
        trials = 12
        detected = 0
        for seed in range(trials):
            outcome = run_session(
                topology, route, _request(topology), PARAMS, seed=500 + seed
            )
            if outcome.status == STATUS_ABORTED:
                detected += 1
                assert outcome.hop_reports[outcome.failed_hop].attack is not None
        assert detected >= trials - 1

    def test_honest_network_mostly_delivers(self):
        topology = _noiseless_line(3)
        route = find_route(topology, "n0", "n2")
        delivered = sum(
            run_session(topology, route, _request(topology), PARAMS, seed=900 + s).delivered
            for s in range(8)
        )
        assert delivered >= 6
