"""Tests for the error-mitigation extension (readout mitigation and ZNE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.backend import NoisyBackend
from repro.device.counts import Counts
from repro.device.device_model import DeviceModel
from repro.exceptions import ReproError
from repro.experiments.emulation import decode_distribution_to_messages
from repro.experiments.mitigation_study import run_mitigation_study
from repro.experiments.report import render_result
from repro.mitigation import (
    ReadoutMitigator,
    ZeroNoiseExtrapolator,
    fold_channel_length,
)
from repro.quantum.noise_model import NoiseModel, ReadoutError


def noise_model_with_readout(p01: float = 0.1, p10: float = 0.05) -> NoiseModel:
    model = NoiseModel()
    model.add_readout_error(ReadoutError(p01, p10))
    return model


class TestReadoutMitigator:
    def test_from_noise_model(self):
        mitigator = ReadoutMitigator.from_noise_model(noise_model_with_readout(), [0, 1])
        assert mitigator.num_qubits == 2
        matrix = mitigator.assignment_matrix()
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(matrix.sum(axis=0), np.ones(4))

    def test_qubit_without_error_gets_identity(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.2, 0.2), qubit=1)
        mitigator = ReadoutMitigator.from_noise_model(model, [0, 1])
        np.testing.assert_allclose(mitigator.assignment_matrix()[:2, :2].diagonal(), [0.8, 0.8])

    def test_mitigation_recovers_true_distribution(self):
        # True state always "00"; readout error flips each bit with prob 0.1.
        error = ReadoutError(0.1, 0.1)
        a = error.assignment_matrix
        full = np.kron(a, a)
        true = np.array([1.0, 0.0, 0.0, 0.0])
        measured = full @ true
        counts = {format(i, "02b"): int(round(p * 100000)) for i, p in enumerate(measured)}
        model = NoiseModel()
        model.add_readout_error(error)
        mitigator = ReadoutMitigator.from_noise_model(model, [0, 1])
        mitigated = mitigator.apply(counts)
        assert mitigated["00"] == pytest.approx(1.0, abs=0.01)

    def test_mitigated_distribution_is_normalised_and_non_negative(self):
        mitigator = ReadoutMitigator.from_noise_model(noise_model_with_readout(), [0, 1])
        mitigated = mitigator.apply({"00": 90, "01": 5, "10": 4, "11": 1})
        assert sum(mitigated.values()) == pytest.approx(1.0)
        assert all(value >= 0 for value in mitigated.values())

    def test_calibration_on_noisy_backend(self):
        backend = NoisyBackend(DeviceModel.ibm_brisbane(), seed=4)
        mitigator = ReadoutMitigator.calibrate(backend, num_qubits=2, shots=4096)
        matrix = mitigator.assignment_matrix()
        # The calibrated diagonal should be close to 1 - readout error (≈ 0.987).
        assert matrix[0, 0] == pytest.approx(0.974, abs=0.02)

    def test_mitigation_improves_fig2_style_accuracy(self):
        backend = NoisyBackend(DeviceModel.ibm_brisbane(), seed=6)
        from repro.experiments.emulation import run_message_transfer_raw

        counts = run_message_transfer_raw("10", eta=10, backend=backend, shots=2048)
        raw = decode_distribution_to_messages(
            {k: v / counts.shots for k, v in counts.items()}
        )
        mitigator = ReadoutMitigator.from_noise_model(backend.noise_model, [0, 1])
        mitigated = decode_distribution_to_messages(mitigator.apply(counts))
        assert mitigated["10"] >= raw["10"]

    def test_expectation_of(self):
        mitigator = ReadoutMitigator.from_noise_model(noise_model_with_readout(), [0])
        assert mitigator.expectation_of({"0": 95, "1": 5}, "0") > 0.9

    def test_validation_errors(self):
        with pytest.raises(ReproError):
            ReadoutMitigator([])
        with pytest.raises(ReproError):
            ReadoutMitigator([np.eye(3)])
        with pytest.raises(ReproError):
            ReadoutMitigator([np.array([[0.5, 0.5], [0.6, 0.5]])])
        mitigator = ReadoutMitigator([np.eye(2)])
        with pytest.raises(ReproError):
            mitigator.apply({})
        with pytest.raises(ReproError):
            mitigator.apply({"00": 5})  # wrong width
        with pytest.raises(ReproError):
            ReadoutMitigator.calibrate(NoisyBackend(DeviceModel.ideal(1)), num_qubits=0)

    def test_counts_object_accepted(self):
        mitigator = ReadoutMitigator.from_noise_model(noise_model_with_readout(), [0])
        mitigated = mitigator.apply(Counts({"0": 90, "1": 10}))
        assert sum(mitigated.values()) == pytest.approx(1.0)


class TestZeroNoiseExtrapolation:
    def test_fold_channel_length(self):
        assert fold_channel_length(100, 1.0) == 100
        assert fold_channel_length(100, 2.5) == 250
        with pytest.raises(ReproError):
            fold_channel_length(100, 0.5)
        with pytest.raises(ReproError):
            fold_channel_length(-1, 1.0)

    def test_linear_extrapolation_recovers_intercept(self):
        extrapolator = ZeroNoiseExtrapolator(model="linear")
        result = extrapolator.extrapolate([1, 2, 3], [0.9, 0.8, 0.7])
        assert result.zero_noise_value == pytest.approx(1.0)
        assert result.model == "linear"
        assert result.rms_residual == pytest.approx(0.0, abs=1e-9)

    def test_quadratic_extrapolation(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [1.0 - 0.1 * x - 0.01 * x**2 for x in xs]
        result = ZeroNoiseExtrapolator(model="quadratic").extrapolate(xs, ys)
        assert result.zero_noise_value == pytest.approx(1.0, abs=1e-6)

    def test_exponential_extrapolation_recovers_noiseless_accuracy(self):
        # Simulated accuracy a(s) = 0.72 exp(-0.4 s) + 0.25.
        xs = [1.0, 1.5, 2.0, 3.0]
        ys = [0.72 * np.exp(-0.4 * x) + 0.25 for x in xs]
        result = ZeroNoiseExtrapolator(model="exponential", floor=0.25).extrapolate(xs, ys)
        assert result.zero_noise_value == pytest.approx(0.97, abs=0.01)
        assert result.improvement_over_unmitigated > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            ZeroNoiseExtrapolator(model="cubic")
        with pytest.raises(ReproError):
            ZeroNoiseExtrapolator(floor=1.5)
        extrapolator = ZeroNoiseExtrapolator(model="quadratic")
        with pytest.raises(ReproError):
            extrapolator.extrapolate([1, 2], [0.9, 0.8])
        with pytest.raises(ReproError):
            extrapolator.extrapolate([1, 1, 2], [0.9, 0.9, 0.8])
        with pytest.raises(ReproError):
            extrapolator.extrapolate([1, 2, 3], [0.9, 0.8])


class TestMitigationStudy:
    def test_study_improves_accuracy(self):
        result = run_mitigation_study(
            etas=(100, 500),
            shots=256,
            messages=("00", "11"),
            noise_scales=(1.0, 2.0, 3.0),
            seed=3,
        )
        assert len(result.points) == 2
        for point in result.points:
            assert point.readout_mitigated_accuracy >= point.raw_accuracy - 0.02
            assert point.zne_accuracy >= point.raw_accuracy - 0.02
        assert result.improvement("readout") > 0.0
        assert result.improvement("zne") > 0.0
        assert "Error mitigation" in render_result(result)

    def test_study_validation(self):
        with pytest.raises(Exception):
            run_mitigation_study(shots=0)
        with pytest.raises(Exception):
            run_mitigation_study(noise_scales=(2.0, 3.0))
        with pytest.raises(Exception):
            run_mitigation_study(messages=())

    def test_registry_contains_mitigation(self):
        from repro.experiments import get_experiment

        experiment = get_experiment("mitigation")
        assert experiment.paper_artifact.startswith("Section IV-B")
