"""Unit tests for RNG plumbing and JSON serialization helpers."""

from __future__ import annotations

import dataclasses
from enum import Enum

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_rng, spawn_rngs
from repro.utils.serialization import from_json, to_json, to_jsonable


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(42).integers(0, 1000) == as_rng(42).integers(0, 1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert as_rng(generator) is generator

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestDeriveAndSpawn:
    def test_derive_is_deterministic_given_parent_state(self):
        child_a = derive_rng(np.random.default_rng(7), "alice")
        child_b = derive_rng(np.random.default_rng(7), "alice")
        assert child_a.integers(0, 10**9) == child_b.integers(0, 10**9)

    def test_derive_differs_by_tag(self):
        parent = np.random.default_rng(7)
        child_a = derive_rng(parent, "alice")
        parent = np.random.default_rng(7)
        child_b = derive_rng(parent, "bob")
        assert child_a.integers(0, 10**9) != child_b.integers(0, 10**9)

    def test_spawn_count(self):
        children = spawn_rngs(3, 5)
        assert len(children) == 5
        values = {int(c.integers(0, 10**9)) for c in children}
        assert len(values) == 5

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class Colour(Enum):
    RED = "red"


@dataclasses.dataclass
class Sample:
    name: str
    values: list
    score: float


class TestSerialization:
    def test_numpy_scalars(self):
        payload = {"a": np.int64(3), "b": np.float64(2.5), "c": np.bool_(True)}
        assert to_jsonable(payload) == {"a": 3, "b": 2.5, "c": True}

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2, 3])) == [1, 2, 3]

    def test_complex_number(self):
        assert to_jsonable(1 + 2j) == {"real": 1.0, "imag": 2.0}

    def test_enum(self):
        assert to_jsonable(Colour.RED) == "red"

    def test_dataclass_round_trip(self):
        sample = Sample(name="x", values=[1, 2], score=0.5)
        parsed = from_json(to_json(sample))
        assert parsed == {"name": "x", "values": [1, 2], "score": 0.5}

    def test_nested_structures(self):
        data = {"outer": [{"inner": np.array([0.5])}, (1, 2)]}
        assert to_jsonable(data) == {"outer": [{"inner": [0.5]}, [1, 2]]}

    def test_unserialisable_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
