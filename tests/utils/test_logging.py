"""Tests for the logging satellite: namespacing, idempotency, trace ids."""

from __future__ import annotations

import logging

import pytest

from repro import telemetry
from repro.utils.logging import (
    DEFAULT_FORMAT,
    TRACE_FORMAT,
    TraceIdFilter,
    enable_console_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    logger = logging.getLogger("repro")
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    yield
    logger.handlers[:] = saved_handlers
    logger.setLevel(saved_level)


def _installed_handlers():
    logger = logging.getLogger("repro")
    return [
        h for h in logger.handlers if getattr(h, "_repro_console_handler", False)
    ]


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("network.scheduler").name == "repro.network.scheduler"

    def test_already_namespaced_names_pass_through(self):
        assert get_logger("repro.api.service").name == "repro.api.service"


class TestEnableConsoleLogging:
    def test_installs_exactly_one_handler(self):
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.INFO)
        assert len(_installed_handlers()) == 1

    def test_reconfigures_in_place_instead_of_stacking(self):
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.DEBUG, fmt=TRACE_FORMAT)
        handlers = _installed_handlers()
        assert len(handlers) == 1
        assert handlers[0].level == logging.DEBUG
        assert handlers[0].formatter._fmt == TRACE_FORMAT
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_default_format_used_when_unspecified(self):
        enable_console_logging(logging.INFO)
        assert _installed_handlers()[0].formatter._fmt == DEFAULT_FORMAT

    def test_application_handlers_are_untouched(self):
        logger = logging.getLogger("repro")
        app_handler = logging.NullHandler()
        logger.addHandler(app_handler)
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.DEBUG)
        assert app_handler in logger.handlers

    def test_handler_carries_trace_id_filter(self):
        enable_console_logging(logging.INFO)
        handler = _installed_handlers()[0]
        assert any(isinstance(f, TraceIdFilter) for f in handler.filters)


class TestTraceIdFilter:
    def _record(self) -> logging.LogRecord:
        return logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "msg", (), None
        )

    def test_stamps_dash_when_telemetry_disabled(self):
        record = self._record()
        assert TraceIdFilter().filter(record) is True
        assert record.trace_id == "-"

    def test_stamps_current_span_id_when_tracing(self):
        with telemetry.capture(clock="ticks"):
            with telemetry.span("work") as span:
                record = self._record()
                TraceIdFilter().filter(record)
                assert record.trace_id == span.span_id

    def test_trace_format_renders(self):
        record = self._record()
        TraceIdFilter().filter(record)
        line = logging.Formatter(TRACE_FORMAT).format(record)
        assert "[span=-]" in line
