"""Unit tests for bitstring utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ReproError
from repro.utils import bits as bits_mod
from repro.utils.bits import (
    bits_to_int,
    bits_to_str,
    bitstring_to_bits,
    chunk_bits,
    hamming_distance,
    insert_check_bits,
    int_to_bits,
    pad_bits,
    random_bits,
    remove_check_bits,
    validate_bits,
    xor_bits,
)


class TestValidateBits:
    def test_accepts_zeros_and_ones(self):
        assert validate_bits([0, 1, 1, 0]) == (0, 1, 1, 0)

    def test_accepts_numpy_integers(self):
        assert validate_bits(np.array([1, 0, 1])) == (1, 0, 1)

    def test_accepts_booleans(self):
        assert validate_bits([True, False]) == (1, 0)

    def test_rejects_other_values(self):
        with pytest.raises(ReproError):
            validate_bits([0, 2, 1])

    def test_empty_sequence_is_allowed(self):
        assert validate_bits([]) == ()


class TestConversions:
    def test_bits_to_str(self):
        assert bits_to_str((1, 0, 1, 1)) == "1011"

    def test_bitstring_to_bits_round_trip(self):
        assert bitstring_to_bits("0101") == (0, 1, 0, 1)
        assert bits_to_str(bitstring_to_bits("110")) == "110"

    def test_bitstring_rejects_non_binary_characters(self):
        with pytest.raises(ReproError):
            bitstring_to_bits("01a1")

    def test_bits_to_int_big_endian(self):
        assert bits_to_int((1, 0, 1)) == 5
        assert bits_to_int((0, 0, 1, 1)) == 3

    def test_int_to_bits_round_trip(self):
        for value in (0, 1, 5, 42, 255):
            assert bits_to_int(int_to_bits(value, 9)) == value

    def test_int_to_bits_rejects_overflow(self):
        with pytest.raises(ReproError):
            int_to_bits(8, 3)

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(ReproError):
            int_to_bits(-1, 4)

    def test_int_to_bits_zero_width(self):
        assert int_to_bits(0, 0) == ()


class TestRandomBits:
    def test_deterministic_with_seed(self):
        assert random_bits(32, rng=7) == random_bits(32, rng=7)

    def test_length(self):
        assert len(random_bits(17, rng=1)) == 17

    def test_negative_length_rejected(self):
        with pytest.raises(ReproError):
            random_bits(-1)

    def test_roughly_balanced(self):
        bits = random_bits(2000, rng=3)
        ones = sum(bits)
        assert 800 < ones < 1200


class TestXorAndHamming:
    def test_xor(self):
        assert xor_bits((1, 0, 1), (1, 1, 0)) == (0, 1, 1)

    def test_xor_length_mismatch(self):
        with pytest.raises(ReproError):
            xor_bits((1, 0), (1,))

    def test_hamming_distance(self):
        assert hamming_distance((1, 0, 1, 1), (1, 1, 1, 0)) == 2

    def test_hamming_distance_identical(self):
        assert hamming_distance((0, 1, 0), (0, 1, 0)) == 0


class TestChunkAndPad:
    def test_chunk_pairs(self):
        assert chunk_bits((1, 0, 1, 1), 2) == [(1, 0), (1, 1)]

    def test_chunk_rejects_indivisible(self):
        with pytest.raises(ReproError):
            chunk_bits((1, 0, 1), 2)

    def test_chunk_rejects_nonpositive_size(self):
        with pytest.raises(ReproError):
            chunk_bits((1, 0), 0)

    def test_pad_to_multiple(self):
        padded, n_pad = pad_bits((1, 0, 1), 2, rng=0)
        assert n_pad == 1
        assert len(padded) == 4
        assert padded[:3] == (1, 0, 1)

    def test_pad_noop_when_aligned(self):
        padded, n_pad = pad_bits((1, 0), 2, rng=0)
        assert n_pad == 0
        assert padded == (1, 0)


class TestCheckBits:
    def test_insert_then_remove_round_trip(self):
        message = (1, 0, 1, 1, 0, 0)
        check = (1, 1, 0)
        positions = (0, 4, 7)
        combined = insert_check_bits(message, check, positions)
        assert len(combined) == 9
        recovered, recovered_check = remove_check_bits(combined, positions)
        assert recovered == message
        assert recovered_check == check

    def test_insert_rejects_duplicate_positions(self):
        with pytest.raises(ReproError):
            insert_check_bits((1, 0), (1, 1), (1, 1))

    def test_insert_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            insert_check_bits((1, 0), (1,), (5,))

    def test_insert_rejects_mismatched_lengths(self):
        with pytest.raises(ReproError):
            insert_check_bits((1, 0), (1, 1), (0,))

    def test_remove_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            remove_check_bits((1, 0, 1), (5,))

    @given(
        message=st.lists(st.integers(0, 1), min_size=0, max_size=64),
        check=st.lists(st.integers(0, 1), min_size=0, max_size=16),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_round_trip_property(self, message, check, seed):
        rng = np.random.default_rng(seed)
        total = len(message) + len(check)
        positions = tuple(
            int(p) for p in rng.choice(total, size=len(check), replace=False)
        ) if check else ()
        combined = insert_check_bits(message, check, positions)
        recovered, recovered_check = remove_check_bits(combined, positions)
        assert recovered == tuple(message)
        assert recovered_check == tuple(check)


class TestRandomPositions:
    def test_positions_sorted_unique_in_range(self):
        positions = bits_mod.random_positions(100, 20, rng=5)
        assert len(positions) == 20
        assert len(set(positions)) == 20
        assert list(positions) == sorted(positions)
        assert all(0 <= p < 100 for p in positions)

    def test_too_many_positions_rejected(self):
        with pytest.raises(ReproError):
            bits_mod.random_positions(3, 5)
