"""Tests for the static eligibility analysis and backend routing."""

import numpy as np
import pytest

from repro.channel.quantum_channel import (
    FiberLossChannel,
    IdentityChainChannel,
    NoiselessChannel,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.protocol.config import ProtocolConfig
from repro.quantum.channels import (
    amplitude_damping_channel,
    bit_flip_channel,
    bit_phase_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.dispatch import (
    BACKEND_CHOICES,
    circuit_is_clifford,
    channel_is_pauli,
    noise_model_is_pauli,
    pauli_mixture,
    pauli_twirl_channel,
    pauli_twirl_noise_model,
    protocol_eligibility,
    select_backend,
)
from repro.quantum.noise_model import NoiseModel, ReadoutError


class TestPauliMixture:
    def test_identity_channel(self):
        assert pauli_mixture(identity_channel()) == {"I": pytest.approx(1.0)}

    def test_depolarizing_channel(self):
        mixture = pauli_mixture(depolarizing_channel(0.1))
        assert mixture is not None
        assert mixture["I"] == pytest.approx(1 - 0.1 + 0.1 / 4)
        for label in ("X", "Y", "Z"):
            assert mixture[label] == pytest.approx(0.1 / 4)

    def test_two_qubit_depolarizing_channel(self):
        mixture = pauli_mixture(depolarizing_channel(0.2, num_qubits=2))
        assert mixture is not None
        assert len(mixture) == 16
        assert sum(mixture.values()) == pytest.approx(1.0)

    def test_flip_channels(self):
        assert pauli_mixture(bit_flip_channel(0.3))["X"] == pytest.approx(0.3)
        assert pauli_mixture(phase_flip_channel(0.2))["Z"] == pytest.approx(0.2)
        assert pauli_mixture(bit_phase_flip_channel(0.1))["Y"] == pytest.approx(0.1)

    def test_general_pauli_channel(self):
        mixture = pauli_mixture(pauli_channel(0.05, 0.02, 0.01))
        assert mixture == {
            "I": pytest.approx(0.92),
            "X": pytest.approx(0.05),
            "Y": pytest.approx(0.02),
            "Z": pytest.approx(0.01),
        }

    @pytest.mark.parametrize(
        "channel",
        [
            amplitude_damping_channel(0.1),
            phase_damping_channel(0.2),
            thermal_relaxation_channel(200e-6, 130e-6, 60e-9),
        ],
        ids=["amplitude_damping", "phase_damping", "thermal_relaxation"],
    )
    def test_non_pauli_channels_rejected(self, channel):
        assert pauli_mixture(channel) is None
        assert not channel_is_pauli(channel)

    def test_composed_pauli_channels_recognised(self):
        composed = bit_flip_channel(0.1).compose(phase_flip_channel(0.2))
        mixture = pauli_mixture(composed)
        assert mixture is not None
        assert sum(mixture.values()) == pytest.approx(1.0)


class TestCircuitAnalysis:
    def test_clifford_circuit_accepted(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.s(1)
        circuit.sdg(0)
        circuit.cx(0, 1)
        circuit.cz(0, 1)
        circuit.swap(0, 1)
        circuit.measure_all()
        assert circuit_is_clifford(circuit)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.t(0),
            lambda c: c.rx(0.3, 0),
            lambda c: c.u3(0.1, 0.2, 0.3, 0),
            lambda c: c.ch(0, 1),
            lambda c: c.unitary(np.eye(2), [0]),
        ],
        ids=["t", "rx", "u3", "ch", "unitary"],
    )
    def test_non_clifford_gates_rejected(self, builder):
        circuit = QuantumCircuit(2)
        builder(circuit)
        assert not circuit_is_clifford(circuit)

    def test_noise_model_analysis_scoped_to_circuit(self):
        model = NoiseModel("mixed")
        model.add_all_qubit_error(depolarizing_channel(0.01), "id")
        model.add_all_qubit_error(amplitude_damping_channel(0.1), "t")
        clifford_only = QuantumCircuit(1)
        clifford_only.id(0)
        clifford_only.measure_all()
        assert noise_model_is_pauli(model, clifford_only)
        assert not noise_model_is_pauli(model)  # whole model carries damping

    def test_readout_errors_never_disqualify(self):
        model = NoiseModel("readout_only")
        model.add_readout_error(ReadoutError.symmetric(0.05))
        assert noise_model_is_pauli(model)


class TestSelectBackend:
    def _bell(self):
        circuit = QuantumCircuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        return circuit

    def test_dense_always_honoured(self):
        decision = select_backend("dense", self._bell(), None)
        assert decision.backend == "dense"
        assert not decision.use_stabilizer

    def test_auto_picks_stabilizer_for_clifford_pauli(self):
        model = NoiseModel("pauli")
        model.add_all_qubit_error(depolarizing_channel(0.01), "cx")
        decision = select_backend("auto", [self._bell()], model)
        assert decision.use_stabilizer

    def test_auto_falls_back_on_non_clifford(self):
        circuit = QuantumCircuit(1, name="rot")
        circuit.rx(0.2, 0)
        circuit.measure_all()
        decision = select_backend("auto", circuit, None)
        assert decision.backend == "dense"
        assert "non-Clifford" in decision.reason

    def test_auto_falls_back_on_non_pauli_noise(self):
        model = NoiseModel("damping")
        model.add_all_qubit_error(thermal_relaxation_channel(2e-4, 1e-4, 6e-8), "cx")
        decision = select_backend("auto", self._bell(), model)
        assert decision.backend == "dense"
        assert "non-Pauli" in decision.reason

    def test_forced_stabilizer_raises_on_ineligible(self):
        circuit = QuantumCircuit(1)
        circuit.t(0)
        circuit.measure_all()
        with pytest.raises(SimulationError, match="forced"):
            select_backend("stabilizer", circuit, None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulator backend"):
            select_backend("gpu", self._bell(), None)


class TestPauliTwirl:
    def test_twirl_is_identity_on_pauli_channels(self):
        original = pauli_mixture(depolarizing_channel(0.07))
        twirled = pauli_mixture(pauli_twirl_channel(depolarizing_channel(0.07)))
        assert twirled is not None
        for label, probability in original.items():
            assert twirled[label] == pytest.approx(probability)

    def test_twirl_makes_damping_pauli(self):
        twirled = pauli_twirl_channel(amplitude_damping_channel(0.2))
        mixture = pauli_mixture(twirled)
        assert mixture is not None
        assert sum(mixture.values()) == pytest.approx(1.0)

    def test_twirled_noise_model_is_stabilizer_eligible(self):
        from repro.device.device_model import DeviceModel

        model = DeviceModel.ibm_brisbane().noise_model()
        assert not noise_model_is_pauli(model)
        twirled = pauli_twirl_noise_model(model)
        assert noise_model_is_pauli(twirled)
        assert twirled.has_readout_error() == model.has_readout_error()


class TestProtocolEligibility:
    def test_noiseless_channel_eligible(self):
        config = ProtocolConfig.default(8, seed=0).with_channel(NoiselessChannel())
        assert protocol_eligibility(config).eligible

    def test_depolarizing_only_identity_chain_eligible(self):
        channel = IdentityChainChannel(eta=30, include_thermal_relaxation=False)
        config = ProtocolConfig.default(8, seed=0).with_channel(channel)
        assert protocol_eligibility(config).eligible

    def test_thermal_relaxation_chain_ineligible(self):
        config = ProtocolConfig.default(8, seed=0)  # default η-chain with relaxation
        eligibility = protocol_eligibility(config)
        assert not eligibility.eligible
        assert "not a Pauli channel" in eligibility.reason

    def test_fiber_channel_with_dephasing_eligible(self):
        channel = FiberLossChannel(length_km=5.0, dephasing_per_km=0.0)
        config = ProtocolConfig.default(8, seed=0).with_channel(channel)
        assert protocol_eligibility(config).eligible

    def test_forced_stabilizer_config_validation(self):
        eligible = (
            ProtocolConfig.default(8, seed=0)
            .with_channel(NoiselessChannel())
            .with_simulator_backend("stabilizer")
        )
        eligible.validate()  # does not raise
        ineligible = ProtocolConfig.default(8, seed=0).with_simulator_backend(
            "stabilizer"
        )
        with pytest.raises(ConfigurationError, match="Pauli"):
            ineligible.validate()

    def test_unknown_backend_name_rejected(self):
        config = ProtocolConfig.default(8, seed=0).with_simulator_backend("qpu")
        with pytest.raises(ConfigurationError, match="unknown simulator_backend"):
            config.validate()

    def test_backend_choices_contract(self):
        assert BACKEND_CHOICES == ("auto", "dense", "stabilizer", "stabilizer_batched")
