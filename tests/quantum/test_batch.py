"""Parity and determinism tests for the batched simulation path.

The batched path (``run_batch`` + compiled propagators) must produce the same
final distributions as the sequential reference path (``run``) under
identical seeds — bit-for-bit when the probability vectors agree to float
precision, statistically always.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.device_model import DeviceModel
from repro.exceptions import SimulationError
from repro.experiments.emulation import build_message_transfer_circuit
from repro.quantum.batch import (
    BatchResult,
    PropagatorCache,
    circuit_structure_key,
    compile_channel,
    compile_unitary,
    superoperator_of_kraus,
    superoperator_of_unitary,
)
from repro.quantum.channels import depolarizing_channel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise_model import NoiseModel, ReadoutError
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator


def _bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


def _total_variation(counts_a: dict[str, int], counts_b: dict[str, int]) -> float:
    total_a = sum(counts_a.values()) or 1
    total_b = sum(counts_b.values()) or 1
    keys = set(counts_a) | set(counts_b)
    return 0.5 * sum(
        abs(counts_a.get(k, 0) / total_a - counts_b.get(k, 0) / total_b) for k in keys
    )


class TestStructureKeys:
    def test_identical_circuits_share_a_key(self):
        assert circuit_structure_key(_bell_circuit()) == circuit_structure_key(
            _bell_circuit()
        )

    def test_different_gates_differ(self):
        other = QuantumCircuit(2)
        other.h(0)
        other.cz(0, 1)
        other.measure_all()
        assert circuit_structure_key(_bell_circuit()) != circuit_structure_key(other)

    def test_rotation_parameters_differ(self):
        a = QuantumCircuit(1).rx(0.1, 0)
        b = QuantumCircuit(1).rx(0.2, 0)
        assert circuit_structure_key(a) != circuit_structure_key(b)

    def test_barriers_are_ignored(self):
        with_barrier = QuantumCircuit(2)
        with_barrier.h(0)
        with_barrier.barrier()
        with_barrier.cx(0, 1)
        with_barrier.measure_all()
        assert circuit_structure_key(with_barrier) == circuit_structure_key(
            _bell_circuit()
        )


class TestSuperoperatorAlgebra:
    def test_unitary_superoperator_matches_conjugation(self):
        rng = np.random.default_rng(3)
        unitary = np.linalg.qr(rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)))[0]
        rho = np.array([[0.7, 0.2 - 0.1j], [0.2 + 0.1j, 0.3]], dtype=complex)
        direct = unitary @ rho @ unitary.conj().T
        via_superop = (superoperator_of_unitary(unitary) @ rho.reshape(-1)).reshape(2, 2)
        assert np.allclose(direct, via_superop)

    def test_kraus_superoperator_matches_sum(self):
        kraus = depolarizing_channel(0.2).kraus_operators
        rho = np.array([[0.6, 0.1], [0.1, 0.4]], dtype=complex)
        direct = sum(k @ rho @ k.conj().T for k in kraus)
        via_superop = (superoperator_of_kraus(kraus) @ rho.reshape(-1)).reshape(2, 2)
        assert np.allclose(direct, via_superop)


class TestCompiledPropagators:
    def test_compiled_unitary_matches_to_operator(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        compiled = compile_unitary(circuit)
        assert np.allclose(compiled.matrix, circuit.to_operator().matrix)

    def test_run_length_compression_matches_explicit_chain(self):
        chain = QuantumCircuit(1)
        for _ in range(137):
            chain.rx(0.01, 0)
        compiled = compile_unitary(chain)
        explicit = chain.to_operator().matrix
        assert np.allclose(compiled.matrix, explicit)

    def test_compiled_channel_matches_sequential_density_evolution(self):
        device = DeviceModel.ibm_brisbane()
        noise = device.noise_model()
        circuit = build_message_transfer_circuit("10", eta=60)
        simulator = DensityMatrixSimulator(noise_model=noise)
        sequential = simulator.final_density_matrix(circuit)
        compiled = compile_channel(circuit, noise)
        from repro.quantum.density import DensityMatrix

        batched = DensityMatrix(compiled.propagate(
            DensityMatrix.zero_state(2).matrix
        ), validate=False)
        assert np.allclose(sequential.matrix, batched.matrix, atol=1e-10)

    def test_cache_hits_on_structurally_identical_circuits(self):
        cache = PropagatorCache()
        compile_unitary(_bell_circuit(), cache)
        assert cache.misses == 1
        compile_unitary(_bell_circuit(), cache)
        assert cache.hits == 1
        assert len(cache) == 1

    def test_shared_cache_separates_unitary_and_channel_entries(self):
        # compile_unitary and compile_channel of the same circuit must not
        # collide in a shared cache (the compiled matrices have different
        # dimensions and semantics).
        cache = PropagatorCache()
        circuit = _bell_circuit()
        unitary = compile_unitary(circuit, cache)
        channel = compile_channel(circuit, None, cache)
        assert unitary.matrix.shape == (4, 4)
        assert channel.superoperator.shape == (16, 16)

    def test_in_place_noise_mutation_invalidates_compiled_channels(self):
        cache = PropagatorCache()
        noise = NoiseModel("mutable")
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.measure([0], [0])
        before = compile_channel(circuit, noise, cache)
        noise.add_all_qubit_error(depolarizing_channel(0.5), "x")
        after = compile_channel(circuit, noise, cache)
        assert not np.allclose(before.superoperator, after.superoperator)

    def test_noise_models_never_share_cache_tokens(self):
        # id() can be reused after garbage collection; cache tokens cannot,
        # so a long-lived shared cache never serves one model's compiled
        # superoperator for another.
        tokens = {NoiseModel().cache_token for _ in range(64)}
        assert len(tokens) == 64

    def test_copied_noise_models_get_fresh_tokens(self):
        import copy
        import pickle

        model = NoiseModel("original")
        assert copy.deepcopy(model).cache_token != model.cache_token
        assert pickle.loads(pickle.dumps(model)).cache_token != model.cache_token

    def test_mutating_a_shallow_copy_leaves_the_original_untouched(self):
        import copy

        original = NoiseModel("original")
        clone = copy.copy(original)
        clone.add_all_qubit_error(depolarizing_channel(0.5), "x")
        assert original.errors_for("x", [0]) == []
        assert original.version == 0
        assert clone.errors_for("x", [0]) != []

    def test_cache_byte_budget_evicts(self):
        # A tiny byte budget forces eviction even when entry counts are low.
        cache = PropagatorCache(max_entries=256, max_bytes=1024)
        for theta in (0.01, 0.02, 0.03, 0.04):
            chain = QuantumCircuit(3)
            for _ in range(5):
                chain.rx(theta, 0)
            compile_unitary(chain, cache)
        assert cache._bytes <= 1024

    def test_compile_rejects_mid_circuit_measurement(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.measure([0], [0])
        circuit.x(0)
        with pytest.raises(SimulationError):
            compile_unitary(circuit)
        with pytest.raises(SimulationError):
            compile_channel(circuit, None)

    def test_cache_eviction_is_bounded(self):
        cache = PropagatorCache(max_entries=2)
        for theta in (0.1, 0.2, 0.3):
            compile_unitary(QuantumCircuit(1).rx(theta, 0), cache)
        assert len(cache) == 2


class TestStatevectorBatchParity:
    def test_counts_match_sequential_path_under_fixed_seed(self):
        circuit = build_message_transfer_circuit("01", eta=25)
        simulator = StatevectorSimulator()
        sequential = simulator.run(circuit, shots=2048, rng=np.random.default_rng(11))
        batched = simulator.run_batch(
            [circuit], shots=2048, rng=np.random.default_rng(11)
        )[0]
        assert batched.counts == sequential.counts

    def test_batch_preserves_submission_order(self):
        circuits = [
            build_message_transfer_circuit(message, eta=5)
            for message in ("00", "01", "10", "11")
        ]
        batch = StatevectorSimulator(seed=5).run_batch(circuits, shots=64)
        assert isinstance(batch, BatchResult)
        assert len(batch) == 4
        for circuit, result in zip(circuits, batch):
            # Ideal dense coding decodes deterministically: one outcome per circuit.
            assert sum(result.counts.values()) == 64
            assert len(result.counts) == 1

    def test_mid_circuit_measurement_falls_back_to_run(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.measure([0], [0])
        circuit.x(0)
        simulator = StatevectorSimulator()
        sequential = simulator.run(circuit, shots=256, rng=np.random.default_rng(4))
        batched = simulator.run_batch(
            [circuit], shots=256, rng=np.random.default_rng(4)
        )[0]
        assert batched.counts == sequential.counts

    def test_negative_shots_rejected(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator().run_batch([_bell_circuit()], shots=-1)


class TestDensityBatchParity:
    @pytest.fixture(scope="class")
    def noise(self):
        return DeviceModel.ibm_brisbane().noise_model()

    def test_counts_match_sequential_path_under_fixed_seed(self, noise):
        # The compiled and sequential paths compute the same probability
        # vector to ~1e-14, so the same generator state draws the same
        # multinomial sample, readout errors included.
        circuit = build_message_transfer_circuit("11", eta=120)
        simulator = DensityMatrixSimulator(noise_model=noise)
        sequential = simulator.run(circuit, shots=4096, rng=np.random.default_rng(23))
        batched = simulator.run_batch(
            [circuit], shots=4096, rng=np.random.default_rng(23)
        )[0]
        assert batched.counts == sequential.counts

    def test_statistical_consistency_across_seeds(self, noise):
        # Different seeds: the two paths must still sample the same
        # distribution (TV distance small at large shot counts).
        circuit = build_message_transfer_circuit("00", eta=200)
        simulator = DensityMatrixSimulator(noise_model=noise)
        sequential = simulator.run(circuit, shots=8192, rng=np.random.default_rng(1))
        batched = simulator.run_batch(
            [circuit], shots=8192, rng=np.random.default_rng(2)
        )[0]
        assert _total_variation(sequential.counts, batched.counts) < 0.03

    def test_reset_instruction_parity(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.reset(0)
        circuit.measure_all()
        simulator = DensityMatrixSimulator()
        sequential = simulator.run(circuit, shots=512, rng=np.random.default_rng(9))
        batched = simulator.run_batch(
            [circuit], shots=512, rng=np.random.default_rng(9)
        )[0]
        assert batched.counts == sequential.counts

    def test_readout_errors_are_applied(self):
        noise = NoiseModel("readout_only").add_readout_error(ReadoutError.symmetric(0.25))
        circuit = QuantumCircuit(1)
        circuit.measure([0], [0])
        batched = DensityMatrixSimulator(noise_model=noise).run_batch(
            [circuit], shots=8192, rng=np.random.default_rng(0)
        )[0]
        # |0> measured through a 25% symmetric flip: ~25% ones.
        assert 0.2 < batched.counts.get("1", 0) / 8192 < 0.3

    def test_run_batch_rejects_mid_circuit_measurement(self):
        circuit = QuantumCircuit(1)
        circuit.measure([0], [0])
        circuit.x(0)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run_batch([circuit], shots=16)

    def test_repeated_batches_reuse_the_cache(self, noise):
        circuit = build_message_transfer_circuit("10", eta=40)
        simulator = DensityMatrixSimulator(noise_model=noise)
        first = simulator.run_batch([circuit], shots=32)
        second = simulator.run_batch([circuit], shots=32)
        # Metadata reports per-batch deltas, not lifetime totals.
        assert first.metadata["cache_misses"] == 1
        assert first.metadata["cache_hits"] == 0
        assert second.metadata["cache_hits"] == 1
        assert second.metadata["cache_misses"] == 0

    def test_duck_typed_noise_models_bypass_the_cache(self):
        # A foreign object that merely quacks like a NoiseModel offers no
        # mutation-proof identity, so its compiled channels are never cached.
        class DuckNoise:
            def errors_for(self, gate_name, qubits):
                return []

            def has_readout_error(self):
                return False

        cache = PropagatorCache()
        circuit = _bell_circuit()
        compile_channel(circuit, DuckNoise(), cache)
        assert len(cache) == 0

    def test_mixed_register_widths_share_one_simulator(self, noise):
        # Step/power cache entries are keyed by register size: a 1-qubit and
        # a 2-qubit circuit sharing a gate signature must not collide.
        narrow = QuantumCircuit(1)
        narrow.h(0)
        narrow.measure([0], [0])
        wide = QuantumCircuit(2)
        wide.h(0)
        wide.cx(0, 1)
        wide.measure_all()
        simulator = DensityMatrixSimulator(noise_model=noise)
        batch = simulator.run_batch([narrow, wide, narrow], shots=256)
        assert sum(batch[0].counts.values()) == 256
        assert sum(batch[1].counts.values()) == 256

    def test_statevector_mixed_register_widths(self):
        narrow = QuantumCircuit(1)
        narrow.h(0)
        narrow.measure([0], [0])
        wide = QuantumCircuit(2)
        wide.h(0)
        wide.measure_all()
        batch = StatevectorSimulator(seed=8).run_batch([narrow, wide], shots=128)
        assert sum(batch[0].counts.values()) == 128
        assert sum(batch[1].counts.values()) == 128

    def test_swapping_noise_model_invalidates_compiled_circuits(self, noise):
        circuit = build_message_transfer_circuit("00", eta=30)
        simulator = DensityMatrixSimulator(noise_model=noise)
        noisy = simulator.run_batch([circuit], shots=4096, rng=np.random.default_rng(6))[0]
        simulator.noise_model = None
        ideal = simulator.run_batch([circuit], shots=4096, rng=np.random.default_rng(6))[0]
        # The ideal path decodes perfectly; the noisy path cannot.
        assert ideal.counts == {"00": 4096}
        assert noisy.counts != ideal.counts

    def test_determinism_under_fixed_seed(self, noise):
        circuit = build_message_transfer_circuit("01", eta=80)
        first = DensityMatrixSimulator(noise_model=noise, seed=77).run_batch(
            [circuit], shots=1024
        )
        second = DensityMatrixSimulator(noise_model=noise, seed=77).run_batch(
            [circuit], shots=1024
        )
        assert first.counts == second.counts


class TestBackendBatch:
    def test_backend_run_batch_matches_single_runs_statistically(self):
        from repro.device.backend import NoisyBackend

        circuits = [
            build_message_transfer_circuit(message, eta=50)
            for message in ("00", "01", "10", "11")
        ]
        batched = NoisyBackend(seed=3).run_batch(circuits, shots=4096)
        sequential = [
            NoisyBackend(seed=3).run(circuit, shots=4096) for circuit in circuits
        ]
        for got, want in zip(batched, sequential):
            assert _total_variation(dict(got), dict(want)) < 0.05

    def test_backend_records_one_job_per_circuit(self):
        from repro.device.backend import NoisyBackend

        backend = NoisyBackend(seed=1)
        circuits = [build_message_transfer_circuit("00", eta=3)] * 3
        backend.run_batch(circuits, shots=16)
        assert len(backend.jobs) == 3
