"""Unit tests for Kraus noise channels."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.quantum.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    bit_phase_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from repro.quantum.density import DensityMatrix
from repro.quantum.states import Statevector


def _plus_state() -> DensityMatrix:
    return DensityMatrix(Statevector.from_label("+"))


class TestKrausChannelValidation:
    def test_requires_operators(self):
        with pytest.raises(NoiseModelError):
            KrausChannel([])

    def test_rejects_incomplete_kraus_set(self):
        with pytest.raises(NoiseModelError):
            KrausChannel([np.array([[0.5, 0], [0, 0.5]])])

    def test_identity_channel_is_unital(self):
        assert identity_channel().is_unital()

    def test_amplitude_damping_not_unital(self):
        assert not amplitude_damping_channel(0.3).is_unital()

    def test_channel_composition_preserves_cptp(self):
        composed = bit_flip_channel(0.1).compose(phase_flip_channel(0.2))
        total = sum(k.conj().T @ k for k in composed.kraus_operators)
        assert np.allclose(total, np.eye(2), atol=1e-10)

    def test_tensor_product_channel(self):
        tensored = bit_flip_channel(0.1).tensor(identity_channel())
        assert tensored.num_qubits == 2
        total = sum(k.conj().T @ k for k in tensored.kraus_operators)
        assert np.allclose(total, np.eye(4), atol=1e-10)

    def test_invalid_probability_rejected(self):
        with pytest.raises(NoiseModelError):
            bit_flip_channel(1.5)
        with pytest.raises(NoiseModelError):
            depolarizing_channel(-0.1)

    def test_choi_matrix_trace(self):
        choi = depolarizing_channel(0.3).choi_matrix()
        assert np.trace(choi).real == pytest.approx(2.0)


class TestChannelAction:
    def test_identity_channel_preserves_state(self):
        state = _plus_state()
        assert identity_channel().apply(state).fidelity(state) == pytest.approx(1.0)

    def test_full_depolarizing_gives_maximally_mixed(self):
        result = depolarizing_channel(1.0).apply(DensityMatrix.zero_state(1))
        np.testing.assert_allclose(result.matrix, np.eye(2) / 2, atol=1e-10)

    def test_depolarizing_purity_decreases(self):
        noisy = depolarizing_channel(0.2).apply(_plus_state())
        assert noisy.purity() < 1.0

    def test_depolarizing_two_qubit(self):
        channel = depolarizing_channel(0.5, num_qubits=2)
        result = channel.apply(DensityMatrix.zero_state(2))
        # rho -> (1-p) rho + p I/4: diagonal (1-p) + p/4 on |00>.
        assert result.probability_of("00") == pytest.approx(0.5 + 0.125)

    def test_bit_flip_probability(self):
        result = bit_flip_channel(0.3).apply(DensityMatrix.zero_state(1))
        assert result.probability_of("1") == pytest.approx(0.3)

    def test_phase_flip_destroys_coherence(self):
        result = phase_flip_channel(0.5).apply(_plus_state())
        assert abs(result.matrix[0, 1]) == pytest.approx(0.0, abs=1e-12)

    def test_bit_phase_flip(self):
        result = bit_phase_flip_channel(0.25).apply(DensityMatrix.zero_state(1))
        assert result.probability_of("1") == pytest.approx(0.25)

    def test_pauli_channel_combines_probabilities(self):
        result = pauli_channel(0.1, 0.2, 0.0).apply(DensityMatrix.zero_state(1))
        assert result.probability_of("1") == pytest.approx(0.3)

    def test_pauli_channel_rejects_sum_above_one(self):
        with pytest.raises(NoiseModelError):
            pauli_channel(0.5, 0.4, 0.3)

    def test_amplitude_damping_decays_excited_state(self):
        excited = DensityMatrix(Statevector.from_label("1"))
        result = amplitude_damping_channel(0.4).apply(excited)
        assert result.probability_of("0") == pytest.approx(0.4)

    def test_amplitude_damping_preserves_ground_state(self):
        ground = DensityMatrix.zero_state(1)
        result = amplitude_damping_channel(0.7).apply(ground)
        assert result.fidelity(ground) == pytest.approx(1.0)

    def test_phase_damping_reduces_off_diagonals_only(self):
        result = phase_damping_channel(0.36).apply(_plus_state())
        np.testing.assert_allclose(np.diag(result.matrix).real, [0.5, 0.5], atol=1e-12)
        assert abs(result.matrix[0, 1]) == pytest.approx(0.5 * math.sqrt(1 - 0.36))


class TestThermalRelaxation:
    T1 = 233.04e-6  # ibm_brisbane median from the paper
    T2 = 145.75e-6
    GATE_TIME = 60e-9

    def test_rejects_unphysical_times(self):
        with pytest.raises(NoiseModelError):
            thermal_relaxation_channel(1e-6, 3e-6, 1e-7)
        with pytest.raises(NoiseModelError):
            thermal_relaxation_channel(-1.0, 1e-6, 1e-7)

    def test_excited_state_decay_matches_t1(self):
        gate_time = 50e-6
        channel = thermal_relaxation_channel(self.T1, self.T2, gate_time)
        excited = DensityMatrix(Statevector.from_label("1"))
        result = channel.apply(excited)
        expected_p1 = math.exp(-gate_time / self.T1)
        assert result.probability_of("1") == pytest.approx(expected_p1, rel=1e-6)

    def test_coherence_decay_matches_t2(self):
        gate_time = 30e-6
        channel = thermal_relaxation_channel(self.T1, self.T2, gate_time)
        result = channel.apply(_plus_state())
        expected_coherence = 0.5 * math.exp(-gate_time / self.T2)
        assert abs(result.matrix[0, 1]) == pytest.approx(expected_coherence, rel=1e-6)

    def test_zero_time_is_identity(self):
        channel = thermal_relaxation_channel(self.T1, self.T2, 0.0)
        state = _plus_state()
        assert channel.apply(state).fidelity(state) == pytest.approx(1.0)

    def test_single_identity_gate_fidelity_is_high(self):
        # One 60 ns identity gate on ibm_brisbane barely decoheres the qubit.
        channel = thermal_relaxation_channel(self.T1, self.T2, self.GATE_TIME)
        assert channel.average_gate_fidelity() > 0.999

    def test_excited_population_mixes_towards_one(self):
        channel = thermal_relaxation_channel(1e-5, 1e-5, 1e-4, excited_state_population=1.0)
        result = channel.apply(DensityMatrix.zero_state(1))
        assert result.probability_of("1") > 0.9


class TestAverageGateFidelity:
    def test_identity_channel_has_unit_fidelity(self):
        assert identity_channel().average_gate_fidelity() == pytest.approx(1.0)

    def test_depolarizing_fidelity_formula(self):
        p = 0.12
        # F_avg = 1 - p/2 for a single-qubit depolarizing channel.
        assert depolarizing_channel(p).average_gate_fidelity() == pytest.approx(1 - p / 2)
