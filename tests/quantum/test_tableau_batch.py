"""Unit tests for the vectorized batched-tableau engine.

The cross-backend battery (``test_backend_conformance.py``) pins the
simulator-level contracts; this file exercises the engine itself:
bit-packed gate updates against the serial ``CliffordTableau`` on random
Clifford streams, batch measurement/reset semantics, masked Pauli frames,
the popcount kernel, and the ``BatchedStabilizerSimulator`` error surface.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.stabilizer import CliffordTableau, StabilizerSimulator
from repro.quantum.tableau_batch import (
    BatchedCliffordTableau,
    BatchedStabilizerSimulator,
    popcount,
)

ONE_QUBIT_GATES = ("h", "s", "sdg", "x", "y", "z")
TWO_QUBIT_GATES = ("cx", "cz", "cy", "swap")


def serial_stabilizer_strings(tableau: CliffordTableau) -> list[str]:
    """Signed stabilizer generators of a serial tableau (test-local helper)."""
    out = []
    for row in range(tableau.n, 2 * tableau.n):
        sign = "-" if tableau.r[row] else "+"
        chars = []
        for q in range(tableau.n):
            xb, zb = bool(tableau.x[row, q]), bool(tableau.z[row, q])
            chars.append("Y" if xb and zb else "X" if xb else "Z" if zb else "I")
        out.append(sign + "".join(chars))
    return out


def apply_random_stream(rng, batched, serial, steps=80, paulis=True):
    n = batched.n
    for _ in range(steps):
        if n >= 2 and rng.random() < 0.4:
            gate = TWO_QUBIT_GATES[int(rng.integers(len(TWO_QUBIT_GATES)))]
            qubits = [int(q) for q in rng.choice(n, size=2, replace=False)]
        else:
            gate = ONE_QUBIT_GATES[int(rng.integers(len(ONE_QUBIT_GATES)))]
            qubits = [int(rng.integers(n))]
        repetitions = int(rng.integers(1, 5))
        batched.apply_gate(gate, qubits, repetitions)
        serial.apply_gate(gate, qubits, repetitions)
        if paulis and rng.random() < 0.15:
            label = "".join("ixyz"[int(rng.integers(4))] for _ in qubits)
            batched.apply_pauli(label, qubits)
            serial.apply_pauli(label, qubits)


class TestPopcount:
    def test_matches_python_bit_count(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=64, dtype=np.uint64)
        words[0] = 0
        words[1] = np.uint64(2**64 - 1)
        expected = np.array([int(w).bit_count() for w in words], dtype=np.uint64)
        assert np.array_equal(popcount(words), expected)


class TestBatchedTableauGateParity:
    """Every packed-word gate update reproduces the serial bool-matrix one."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_random_clifford_stream_parity(self, seed, n):
        rng = np.random.default_rng(1000 * n + seed)
        batched = BatchedCliffordTableau(n, batch_size=2)
        serial = CliffordTableau(n)
        apply_random_stream(rng, batched, serial)
        assert batched.stabilizer_strings(0) == serial_stabilizer_strings(serial)
        # Shared symplectic: with no per-element randomness injected, both
        # batch elements are the same state.
        assert batched.stabilizer_strings(1) == batched.stabilizer_strings(0)

    def test_word_boundary_qubits(self):
        # Qubits 63/64/65 straddle the packed 64-bit word boundary.
        n = 66
        batched = BatchedCliffordTableau(n, batch_size=1)
        serial = CliffordTableau(n)
        for gate, qubits in [
            ("h", [63]), ("s", [64]), ("cx", [63, 64]), ("cz", [64, 65]),
            ("swap", [62, 65]), ("cy", [65, 63]), ("sdg", [64]), ("y", [63]),
        ]:
            batched.apply_gate(gate, qubits)
            serial.apply_gate(gate, qubits)
        assert batched.stabilizer_strings(0) == serial_stabilizer_strings(serial)

    def test_measurement_and_reset_parity_batch_of_one(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 7))
            batched = BatchedCliffordTableau(n, batch_size=1)
            serial = CliffordTableau(n)
            rng_batched = np.random.default_rng(seed + 4000)
            rng_serial = np.random.default_rng(seed + 4000)
            for _ in range(50):
                draw = rng.random()
                if draw < 0.55:
                    apply_random_stream(rng, batched, serial, steps=1, paulis=False)
                elif draw < 0.8:
                    q = int(rng.integers(n))
                    assert int(batched.measure(q, rng_batched)[0]) == serial.measure(
                        q, rng_serial
                    )
                else:
                    q = int(rng.integers(n))
                    batched.reset(q, rng_batched)
                    serial.reset(q, rng_serial)
            assert batched.stabilizer_strings(0) == serial_stabilizer_strings(serial)

    def test_deterministic_measurement_is_common_across_batch(self):
        batched = BatchedCliffordTableau(2, batch_size=5)
        batched.apply_gate("x", [0])
        outcomes = batched.measure(0, np.random.default_rng(0))
        assert outcomes.tolist() == [1, 1, 1, 1, 1]

    def test_masked_pauli_flips_only_selected_elements(self):
        batched = BatchedCliffordTableau(1, batch_size=4)
        mask = np.array([True, False, True, False])
        batched.apply_pauli_masked("x", [0], mask)
        outcomes = batched.measure(0, np.random.default_rng(0))
        assert outcomes.tolist() == [1, 0, 1, 0]

    def test_random_measurement_outcomes_vary_per_element(self):
        batched = BatchedCliffordTableau(1, batch_size=512)
        batched.apply_gate("h", [0])
        outcomes = batched.measure(0, np.random.default_rng(7))
        assert 100 < int(outcomes.sum()) < 412  # both values occur

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            BatchedCliffordTableau(0, 1)
        with pytest.raises(SimulationError):
            BatchedCliffordTableau(1, 0)

    def test_non_clifford_gate_rejected(self):
        batched = BatchedCliffordTableau(1, 1)
        with pytest.raises(SimulationError, match="not Clifford"):
            batched.apply_gate("t", [0])

    def test_unknown_pauli_character_rejected(self):
        batched = BatchedCliffordTableau(1, 1)
        with pytest.raises(SimulationError, match="Pauli"):
            batched.apply_pauli("q", [0])


def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, 2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure([0, 1], [0, 1])
    return circuit


class TestBatchedStabilizerSimulatorSurface:
    def test_run_is_a_batch_of_one(self):
        simulator = BatchedStabilizerSimulator(seed=3)
        reference = StabilizerSimulator(seed=3)
        assert (
            simulator.run(bell_circuit(), shots=512).counts
            == reference.run(bell_circuit(), shots=512).counts
        )

    def test_result_metadata_names_the_batched_method(self):
        result = BatchedStabilizerSimulator(seed=0).run(bell_circuit(), shots=8)
        assert result.metadata["method"] == "stabilizer_batched"
        assert result.metadata["stabilizer_mode"] == "analytic"

    def test_negative_shots_rejected(self):
        with pytest.raises(SimulationError, match="non-negative"):
            BatchedStabilizerSimulator().run_batch([bell_circuit()], shots=-1)

    def test_initial_state_rejected(self):
        with pytest.raises(SimulationError, match=r"\|0\.\.\.0>"):
            BatchedStabilizerSimulator().run_batch(
                [bell_circuit()], shots=8, initial_state=object()
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError, match="unknown batched stabilizer method"):
            BatchedStabilizerSimulator().run_batch([bell_circuit()], method="exact")

    def test_conflicting_serial_and_noise_model_rejected(self):
        from repro.quantum.noise_model import NoiseModel

        serial = StabilizerSimulator()
        with pytest.raises(SimulationError, match="conflicting"):
            BatchedStabilizerSimulator(noise_model=NoiseModel("m"), serial=serial)

    def test_non_clifford_circuit_rejected(self):
        circuit = QuantumCircuit(1, 1, name="t_gate")
        circuit.t(0)
        circuit.measure([0], [0])
        with pytest.raises(SimulationError, match="not Clifford"):
            BatchedStabilizerSimulator().run_batch([circuit], shots=8)

    def test_measurement_free_circuit_yields_empty_counts_without_rng(self):
        circuit = QuantumCircuit(2, name="no_measure")
        circuit.h(0)
        simulator = BatchedStabilizerSimulator(seed=1)
        result = simulator.run_batch([circuit, bell_circuit()], shots=64).results
        assert result[0].counts == {} and result[0].shots == 0
        # The empty circuit consumed no randomness: the Bell counts match a
        # fresh simulator sampling the Bell circuit alone.
        alone = BatchedStabilizerSimulator(seed=1).run(bell_circuit(), shots=64)
        assert result[1].counts == alone.counts

    def test_repeated_circuit_object_resolves_one_structure(self):
        circuit = bell_circuit()
        simulator = BatchedStabilizerSimulator(seed=2)
        batch = simulator.run_batch([circuit] * 16, shots=32)
        assert batch.metadata["structures"] == 1
        assert len(batch.results) == 16

    def test_plan_cache_reuses_serial_distribution_cache(self):
        simulator = BatchedStabilizerSimulator(seed=2)
        simulator.run_batch([bell_circuit()], shots=8)
        second = simulator.run_batch([bell_circuit()], shots=8)
        # Distinct circuit objects with equal structure hit the shared
        # serial analytic cache.
        assert second.metadata["cache_hits"] == 1

    def test_out_of_envelope_falls_back_serially_bit_identical(self):
        # 13 measured qubits exceed the analytic envelope; auto must match
        # the serial simulator bit for bit (both fall back to trajectories).
        circuit = QuantumCircuit(13, 13, name="wide")
        circuit.h(0)
        for q in range(12):
            circuit.cx(q, q + 1)
        circuit.measure(range(13), range(13))
        batched = BatchedStabilizerSimulator(seed=4)
        serial = StabilizerSimulator(seed=4)
        batch = batched.run_batch([circuit], shots=64)
        assert batch.metadata["serial_fallbacks"] == 1
        assert batch.results[0].counts == serial.run(circuit, shots=64).counts

    def test_forced_analytic_raises_out_of_envelope(self):
        circuit = QuantumCircuit(13, 13, name="wide")
        circuit.h(0)
        for q in range(12):
            circuit.cx(q, q + 1)
        circuit.measure(range(13), range(13))
        with pytest.raises(SimulationError, match="analytic envelope"):
            BatchedStabilizerSimulator().run_batch(
                [circuit], shots=8, method="analytic"
            )
