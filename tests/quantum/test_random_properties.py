"""Property-based tests (hypothesis) for the quantum substrate invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.bell import BellState, bell_state, chsh_value, TSIRELSON_BOUND
from repro.quantum.channels import (
    amplitude_damping_channel,
    depolarizing_channel,
    phase_damping_channel,
    thermal_relaxation_channel,
)
from repro.quantum.density import DensityMatrix
from repro.quantum.operators import PAULI_MATRICES
from repro.quantum.random import (
    haar_random_state,
    haar_random_unitary,
    random_bloch_state,
    random_pauli,
)
from repro.quantum.states import Statevector

seeds = st.integers(min_value=0, max_value=2**32 - 1)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


class TestRandomObjects:
    @given(seed=seeds, num_qubits=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_haar_unitary_is_unitary(self, seed, num_qubits):
        unitary = haar_random_unitary(num_qubits, rng=seed)
        assert unitary.is_unitary()

    @given(seed=seeds, num_qubits=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_haar_state_is_normalised(self, seed, num_qubits):
        state = haar_random_state(num_qubits, rng=seed)
        assert state.norm() == pytest.approx(1.0)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_random_pauli_is_valid(self, seed):
        label, operator = random_pauli(rng=seed)
        assert label in ("I", "X", "Y", "Z")
        assert np.allclose(operator.matrix, PAULI_MATRICES[label])

    def test_random_pauli_without_identity(self):
        labels = {random_pauli(rng=seed, include_identity=False)[0] for seed in range(40)}
        assert "I" not in labels
        assert labels == {"X", "Y", "Z"}

    def test_bloch_state_single_qubit(self):
        assert random_bloch_state(rng=0).num_qubits == 1


class TestUnitaryInvariance:
    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_unitary_evolution_preserves_norm(self, seed):
        state = haar_random_state(2, rng=seed)
        unitary = haar_random_unitary(2, rng=seed + 1)
        evolved = state.apply_operator(unitary)
        assert evolved.norm() == pytest.approx(1.0)

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_unitary_evolution_preserves_purity(self, seed):
        state = haar_random_state(2, rng=seed).density_matrix()
        unitary = haar_random_unitary(2, rng=seed + 1)
        assert state.evolve(unitary).purity() == pytest.approx(1.0)

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_fidelity_is_unitarily_invariant(self, seed):
        state_a = haar_random_state(2, rng=seed)
        state_b = haar_random_state(2, rng=seed + 1)
        unitary = haar_random_unitary(2, rng=seed + 2)
        before = state_a.fidelity(state_b)
        after = state_a.apply_operator(unitary).fidelity(state_b.apply_operator(unitary))
        assert after == pytest.approx(before, abs=1e-9)


class TestChannelInvariants:
    @given(p=probabilities, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_depolarizing_preserves_trace_and_positivity(self, p, seed):
        state = haar_random_state(1, rng=seed).density_matrix()
        noisy = depolarizing_channel(p).apply(state)
        assert noisy.trace().real == pytest.approx(1.0)
        noisy.require_physical()

    @given(p=probabilities, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_amplitude_damping_preserves_trace(self, p, seed):
        state = haar_random_state(1, rng=seed).density_matrix()
        noisy = amplitude_damping_channel(p).apply(state)
        assert noisy.trace().real == pytest.approx(1.0)
        noisy.require_physical()

    @given(p=probabilities, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_phase_damping_never_increases_purity(self, p, seed):
        state = haar_random_state(1, rng=seed).density_matrix()
        noisy = phase_damping_channel(p).apply(state)
        assert noisy.purity() <= state.purity() + 1e-9

    @given(
        t1=st.floats(min_value=1e-6, max_value=1e-3),
        ratio=st.floats(min_value=0.1, max_value=2.0),
        gate_time=st.floats(min_value=0.0, max_value=1e-4),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_thermal_relaxation_is_physical(self, t1, ratio, gate_time, seed):
        t2 = min(ratio * t1, 2 * t1)
        channel = thermal_relaxation_channel(t1, t2, gate_time)
        state = haar_random_state(1, rng=seed).density_matrix()
        channel.apply(state).require_physical()

    @given(p=probabilities)
    @settings(max_examples=25, deadline=None)
    def test_depolarizing_chsh_scales_linearly(self, p):
        """Two-sided depolarizing noise scales the CHSH value by (1-p)."""
        state = bell_state(BellState.PHI_PLUS).density_matrix()
        noisy = depolarizing_channel(p).apply(state, [0])
        expected = (1 - p) * TSIRELSON_BOUND
        assert chsh_value(noisy) == pytest.approx(expected, abs=1e-8)


class TestMeasurementStatistics:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_probabilities_sum_to_one(self, seed):
        state = haar_random_state(3, rng=seed)
        assert state.probabilities().sum() == pytest.approx(1.0)
        for qubits in ([0], [1, 2], [2, 0]):
            assert state.probabilities(qubits).sum() == pytest.approx(1.0)

    @given(seed=seeds, shots=st.integers(1, 500))
    @settings(max_examples=15, deadline=None)
    def test_sample_counts_total_equals_shots(self, seed, shots):
        state = haar_random_state(2, rng=seed)
        counts = state.sample_counts(shots, rng=seed)
        assert sum(counts.values()) == shots

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_partial_trace_trace_preserved(self, seed):
        state = haar_random_state(3, rng=seed).density_matrix()
        for keep in ([0], [1, 2], [0, 2]):
            assert state.partial_trace(keep).trace().real == pytest.approx(1.0)

    @given(seed=seeds, angle=angles)
    @settings(max_examples=20, deadline=None)
    def test_chsh_never_exceeds_tsirelson(self, seed, angle):
        state = haar_random_state(2, rng=seed)
        value = chsh_value(state, (angle, angle + math.pi / 2), (angle + math.pi / 4, angle - math.pi / 4))
        assert abs(value) <= TSIRELSON_BOUND + 1e-9
