"""Boundary pins for the stabilizer analytic-sampling envelope.

The stabilizer simulator samples measurement distributions analytically only
while a circuit stays inside the documented envelope — at most
``ANALYTIC_MAX_MEASURED_QUBITS`` (12) measured qubits and at most
``ANALYTIC_MAX_SYMBOLS`` (16) random measurement outcomes.  Both bounds are
*inclusive*: exactly 12 qubits / exactly 16 symbols still run analytically,
and 13 / 17 fall back to per-shot trajectories.  These tests pin each side of
both boundaries (the doc comments in ``repro/quantum/stabilizer.py`` point
here) and cross-check the at-the-boundary analytic results bit for bit
against the dense backends so an off-by-one regression cannot pass silently.
"""

import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.stabilizer import (
    ANALYTIC_MAX_MEASURED_QUBITS,
    ANALYTIC_MAX_SYMBOLS,
    StabilizerSimulator,
)

SHOTS = 2048


def ghz_circuit(width: int) -> QuantumCircuit:
    circuit = QuantumCircuit(width, width, name=f"ghz_{width}")
    circuit.h(0)
    for qubit in range(width - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure(range(width), range(width))
    return circuit


def symbol_circuit(reset_cycles: int) -> QuantumCircuit:
    """A 2-qubit circuit with ``reset_cycles + 1`` random measurement symbols.

    Each ``h``/``reset`` cycle collapses one random outcome and the final
    Bell measurement adds exactly one more (the second clbit is determined),
    so ``reset_cycles = 15`` sits exactly at ``ANALYTIC_MAX_SYMBOLS = 16``.
    """
    circuit = QuantumCircuit(2, 2, name=f"symbols_{reset_cycles + 1}")
    for _ in range(reset_cycles):
        circuit.h(0)
        circuit.reset(0)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure([0, 1], [0, 1])
    return circuit


class TestMeasuredQubitBoundary:
    def test_documented_bound_is_twelve(self):
        assert ANALYTIC_MAX_MEASURED_QUBITS == 12

    def test_exactly_twelve_measured_qubits_stays_analytic(self):
        result = StabilizerSimulator(seed=11).run(
            ghz_circuit(ANALYTIC_MAX_MEASURED_QUBITS), shots=SHOTS
        )
        assert result.metadata["stabilizer_mode"] == "analytic"

    def test_at_boundary_counts_match_statevector_bit_for_bit(self):
        circuit = ghz_circuit(ANALYTIC_MAX_MEASURED_QUBITS)
        stabilizer = StabilizerSimulator(seed=11).run(circuit, shots=SHOTS)
        dense = StatevectorSimulator(seed=11).run(circuit, shots=SHOTS)
        assert stabilizer.counts == dense.counts

    def test_thirteen_measured_qubits_falls_back_to_trajectories(self):
        result = StabilizerSimulator(seed=11).run(
            ghz_circuit(ANALYTIC_MAX_MEASURED_QUBITS + 1), shots=64
        )
        assert result.metadata["stabilizer_mode"] == "trajectory"

    def test_thirteen_measured_qubits_forced_analytic_raises(self):
        with pytest.raises(SimulationError, match="analytic envelope"):
            StabilizerSimulator(seed=11).run(
                ghz_circuit(ANALYTIC_MAX_MEASURED_QUBITS + 1),
                shots=64,
                method="analytic",
            )


class TestRandomSymbolBoundary:
    def test_documented_bound_is_sixteen(self):
        assert ANALYTIC_MAX_SYMBOLS == 16

    def test_exactly_sixteen_symbols_stays_analytic(self):
        result = StabilizerSimulator(seed=13).run(
            symbol_circuit(ANALYTIC_MAX_SYMBOLS - 1), shots=SHOTS
        )
        assert result.metadata["stabilizer_mode"] == "analytic"

    def test_at_boundary_counts_match_density_matrix_bit_for_bit(self):
        circuit = symbol_circuit(ANALYTIC_MAX_SYMBOLS - 1)
        stabilizer = StabilizerSimulator(seed=13).run(circuit, shots=SHOTS)
        dense = DensityMatrixSimulator(seed=13).run(circuit, shots=SHOTS)
        assert stabilizer.counts == dense.counts

    def test_seventeen_symbols_falls_back_to_trajectories(self):
        result = StabilizerSimulator(seed=13).run(
            symbol_circuit(ANALYTIC_MAX_SYMBOLS), shots=64
        )
        assert result.metadata["stabilizer_mode"] == "trajectory"

    def test_seventeen_symbols_forced_analytic_raises(self):
        with pytest.raises(SimulationError, match="analytic envelope"):
            StabilizerSimulator(seed=13).run(
                symbol_circuit(ANALYTIC_MAX_SYMBOLS), shots=64, method="analytic"
            )
