"""Unit tests for the CHP stabilizer tableau and its simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.channels import depolarizing_channel
from repro.quantum.noise_model import NoiseModel, ReadoutError
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.stabilizer import (
    ANALYTIC_MAX_MEASURED_QUBITS,
    CliffordTableau,
    StabilizerSimulator,
)


def _bell_circuit():
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


class TestCliffordTableau:
    def test_initial_state_stabilized_by_z(self):
        tableau = CliffordTableau(3)
        assert tableau.stabilizer_strings() == ["+ZII", "+IZI", "+IIZ"]

    def test_bell_preparation_stabilizers(self):
        tableau = CliffordTableau(2)
        tableau.h(0)
        tableau.cx(0, 1)
        assert tableau.stabilizer_strings() == ["+XX", "+ZZ"]

    def test_pauli_application_flips_signs(self):
        tableau = CliffordTableau(2)
        tableau.h(0)
        tableau.cx(0, 1)
        tableau.apply_pauli("Z", [0])  # |Φ+> -> |Φ->
        assert tableau.stabilizer_strings() == ["-XX", "+ZZ"]
        tableau.apply_pauli("X", [0])  # -> |Ψ->
        assert tableau.stabilizer_strings() == ["-XX", "-ZZ"]

    def test_deterministic_measurement(self):
        tableau = CliffordTableau(1)
        tableau.x_gate(0)
        rng = np.random.default_rng(0)
        assert tableau.measure(0, rng) == 1
        assert tableau.measure(0, rng) == 1  # repeated measurement is stable

    def test_random_measurement_collapses(self):
        rng = np.random.default_rng(5)
        tableau = CliffordTableau(1)
        tableau.h(0)
        outcome = tableau.measure(0, rng)
        assert outcome in (0, 1)
        # After collapse the qubit is in a computational state.
        assert tableau.measure(0, rng) == outcome

    def test_entangled_measurement_correlates(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            tableau = CliffordTableau(2)
            tableau.h(0)
            tableau.cx(0, 1)
            assert tableau.measure(0, rng) == tableau.measure(1, rng)

    def test_gate_order_reduction_matches_explicit_loop(self):
        explicit = CliffordTableau(1)
        for _ in range(5):
            explicit.s(0)
        reduced = CliffordTableau(1)
        reduced.apply_gate("s", [0], repetitions=5)
        assert np.array_equal(explicit.x, reduced.x)
        assert np.array_equal(explicit.z, reduced.z)
        assert np.array_equal(explicit.r, reduced.r)

    def test_s_squared_is_z(self):
        via_s = CliffordTableau(1)
        via_s.h(0)  # X stabilizer, so phases matter
        via_s.s(0)
        via_s.s(0)
        via_z = CliffordTableau(1)
        via_z.h(0)
        via_z.z_gate(0)
        assert via_s.stabilizer_strings() == via_z.stabilizer_strings()

    def test_reset_returns_qubit_to_zero(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            tableau = CliffordTableau(2)
            tableau.h(0)
            tableau.cx(0, 1)
            tableau.reset(0, rng)
            assert tableau.measure(0, rng) == 0

    def test_non_clifford_gate_rejected(self):
        tableau = CliffordTableau(1)
        with pytest.raises(SimulationError):
            tableau.apply_gate("t", [0])

    def test_symbolic_measurement_allocates_symbols(self):
        tableau = CliffordTableau(2, track_symbols=True)
        tableau.h(0)
        tableau.cx(0, 1)
        constant0, mask0 = tableau.measure_symbolic(0)
        constant1, mask1 = tableau.measure_symbolic(1)
        # First measurement is random (one symbol); second is the same symbol.
        assert tableau.num_symbols == 1
        assert (constant0, mask0) == (0, 1)
        assert (constant1, mask1) == (0, 1)


class TestStabilizerSimulator:
    def test_counts_shape_and_shots(self):
        result = StabilizerSimulator(seed=0).run(_bell_circuit(), shots=100)
        assert sum(result.counts.values()) == 100
        assert set(result.counts) <= {"00", "11"}
        assert result.metadata["method"] == "stabilizer"
        assert result.metadata["stabilizer_mode"] == "analytic"

    def test_noiseless_counts_bit_identical_to_dense(self):
        circuit = _bell_circuit()
        dense = DensityMatrixSimulator(seed=123).run(circuit, shots=4096)
        stab = StabilizerSimulator(seed=123).run(circuit, shots=4096)
        sv = StatevectorSimulator(seed=123).run(circuit, shots=4096)
        assert stab.counts == dense.counts
        assert stab.counts == sv.counts

    def test_trajectory_mode_statistics(self):
        circuit = _bell_circuit()
        result = StabilizerSimulator(seed=7).run(
            circuit, shots=4000, method="trajectory"
        )
        assert result.metadata["stabilizer_mode"] == "trajectory"
        assert set(result.counts) <= {"00", "11"}
        assert abs(result.counts.get("00", 0) / 4000 - 0.5) < 0.05

    def test_partial_measurement_maps_to_clbits(self):
        circuit = QuantumCircuit(3, num_clbits=2)
        circuit.h(0)
        circuit.cx(0, 2)
        circuit.measure([2, 0], [1, 0])
        dense = DensityMatrixSimulator(seed=5).run(circuit, shots=512)
        stab = StabilizerSimulator(seed=5).run(circuit, shots=512)
        assert stab.counts == dense.counts

    def test_repetitions_equivalent_to_expanded_chain(self):
        rle = QuantumCircuit(2)
        rle.h(0)
        rle.cx(0, 1)
        rle.repeat("id", 0, 97)
        rle.cx(0, 1)
        rle.h(0)
        rle.measure_all()
        expanded = QuantumCircuit(2)
        expanded.h(0)
        expanded.cx(0, 1)
        for _ in range(97):
            expanded.id(0)
        expanded.cx(0, 1)
        expanded.h(0)
        expanded.measure_all()
        a = StabilizerSimulator(seed=31).run(rle, shots=256)
        b = StabilizerSimulator(seed=31).run(expanded, shots=256)
        assert a.counts == b.counts

    def test_pauli_noise_matches_dense_distribution(self):
        model = NoiseModel("pauli")
        model.add_all_qubit_error(depolarizing_channel(0.01), "id")
        model.add_readout_error(ReadoutError.symmetric(0.02))
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.repeat("id", 0, 150)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.measure_all()
        dense = DensityMatrixSimulator(noise_model=model, seed=17).run(
            circuit, shots=8192
        )
        stab = StabilizerSimulator(noise_model=model, seed=17).run(circuit, shots=8192)
        assert stab.counts == dense.counts

    def test_non_clifford_gate_raises(self):
        circuit = QuantumCircuit(1)
        circuit.t(0)
        circuit.measure_all()
        with pytest.raises(SimulationError, match="not Clifford"):
            StabilizerSimulator().run(circuit)

    def test_non_pauli_noise_raises(self):
        from repro.quantum.channels import amplitude_damping_channel

        model = NoiseModel("damping")
        model.add_all_qubit_error(amplitude_damping_channel(0.1), "id")
        circuit = QuantumCircuit(1)
        circuit.id(0)
        circuit.measure_all()
        with pytest.raises(SimulationError, match="not a Pauli channel"):
            StabilizerSimulator(noise_model=model).run(circuit)

    def test_initial_state_rejected(self):
        from repro.quantum.states import Statevector

        with pytest.raises(SimulationError, match=r"\|0\.\.\.0>"):
            StabilizerSimulator().run(
                _bell_circuit(), initial_state=Statevector.zero_state(2)
            )

    def test_negative_shots_rejected(self):
        with pytest.raises(SimulationError):
            StabilizerSimulator().run(_bell_circuit(), shots=-1)

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError, match="unknown stabilizer method"):
            StabilizerSimulator().run(_bell_circuit(), method="exact")

    def test_no_measurement_returns_empty_counts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        result = StabilizerSimulator(seed=0).run(circuit, shots=64)
        assert result.counts == {}
        assert result.shots == 0

    def test_run_batch_caches_structure(self):
        simulator = StabilizerSimulator(seed=0)
        batch = simulator.run_batch([_bell_circuit(), _bell_circuit()], shots=32)
        assert len(batch) == 2
        assert batch.metadata["method"] == "stabilizer_batch"
        assert batch.metadata["cache_hits"] >= 1

    def test_many_qubit_register_beyond_dense_superop_limit(self):
        # 9 qubits is beyond MAX_SUPEROP_QUBITS; the tableau handles it
        # easily and the analytic envelope still applies.
        n = 9
        assert n <= ANALYTIC_MAX_MEASURED_QUBITS
        circuit = QuantumCircuit(n)
        circuit.h(0)
        for q in range(n - 1):
            circuit.cx(q, q + 1)
        circuit.measure_all()
        result = StabilizerSimulator(seed=2).run(circuit, shots=1024)
        assert set(result.counts) == {"0" * n, "1" * n}

    def test_swap_cz_cy_sdg_against_statevector(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.s(0)
        circuit.cz(0, 1)
        circuit.cy(1, 2)
        circuit.sdg(1)
        circuit.swap(0, 2)
        circuit.h(2)
        circuit.measure_all()
        dense = DensityMatrixSimulator(seed=77).run(circuit, shots=4096)
        stab = StabilizerSimulator(seed=77).run(circuit, shots=4096)
        assert stab.counts == dense.counts

    def test_final_tableau_requires_gate_only_circuit(self):
        with pytest.raises(SimulationError):
            StabilizerSimulator().final_tableau(_bell_circuit())
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        tableau = StabilizerSimulator().final_tableau(circuit)
        assert tableau.stabilizer_strings() == ["+XX", "+ZZ"]
