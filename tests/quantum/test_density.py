"""Unit tests for repro.quantum.density."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError, NonPhysicalStateError
from repro.quantum.bell import BellState, bell_state
from repro.quantum.density import DensityMatrix
from repro.quantum.operators import H_MATRIX, X_MATRIX
from repro.quantum.states import Statevector


class TestConstruction:
    def test_from_statevector(self):
        dm = DensityMatrix(Statevector.from_label("1"))
        assert dm.probability_of("1") == pytest.approx(1.0)

    def test_zero_state(self):
        dm = DensityMatrix.zero_state(2)
        assert dm.probability_of("00") == pytest.approx(1.0)

    def test_maximally_mixed(self):
        dm = DensityMatrix.maximally_mixed(2)
        assert dm.purity() == pytest.approx(0.25)
        np.testing.assert_allclose(dm.probabilities(), [0.25] * 4)

    def test_rejects_non_hermitian(self):
        with pytest.raises(NonPhysicalStateError):
            DensityMatrix(np.array([[1, 1], [0, 0]], dtype=complex))

    def test_rejects_wrong_trace(self):
        with pytest.raises(NonPhysicalStateError):
            DensityMatrix(np.eye(2, dtype=complex))

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            DensityMatrix(np.ones((2, 3)))

    def test_require_physical_rejects_negative_eigenvalue(self):
        matrix = np.array([[1.5, 0], [0, -0.5]], dtype=complex)
        with pytest.raises(NonPhysicalStateError):
            DensityMatrix(matrix, validate=False).require_physical()


class TestPurityAndEntropy:
    def test_pure_state_entropy_zero(self):
        dm = DensityMatrix(Statevector.from_label("+"))
        assert dm.von_neumann_entropy() == pytest.approx(0.0, abs=1e-9)
        assert dm.is_pure()

    def test_maximally_mixed_entropy(self):
        dm = DensityMatrix.maximally_mixed(1)
        assert dm.von_neumann_entropy() == pytest.approx(1.0)
        assert not dm.is_pure()

    def test_bell_reduced_state_entropy_is_one_bit(self):
        dm = bell_state(BellState.PHI_PLUS).density_matrix().partial_trace([1])
        assert dm.von_neumann_entropy() == pytest.approx(1.0)


class TestEvolutionAndChannels:
    def test_unitary_evolution(self):
        dm = DensityMatrix.zero_state(1).evolve(X_MATRIX)
        assert dm.probability_of("1") == pytest.approx(1.0)

    def test_evolution_on_subset(self):
        dm = DensityMatrix.zero_state(2).evolve(H_MATRIX, [1])
        np.testing.assert_allclose(dm.probabilities([1]), [0.5, 0.5], atol=1e-12)

    def test_kraus_completely_dephasing(self):
        plus = DensityMatrix(Statevector.from_label("+"))
        kraus = [
            np.array([[1, 0], [0, 0]], dtype=complex),
            np.array([[0, 0], [0, 1]], dtype=complex),
        ]
        dephased = plus.apply_kraus(kraus)
        assert dephased.purity() == pytest.approx(0.5)
        np.testing.assert_allclose(dephased.probabilities(), [0.5, 0.5])

    def test_kraus_requires_operators(self):
        with pytest.raises(DimensionError):
            DensityMatrix.zero_state(1).apply_kraus([])

    def test_evolve_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            DensityMatrix.zero_state(2).evolve(X_MATRIX)


class TestPartialTrace:
    def test_product_state_partial_trace(self):
        state = Statevector.from_label("0+")
        reduced = DensityMatrix(state).partial_trace([1])
        np.testing.assert_allclose(reduced.probabilities(), [0.5, 0.5], atol=1e-12)

    def test_bell_partial_trace_is_maximally_mixed(self):
        reduced = bell_state(BellState.PHI_PLUS).density_matrix().partial_trace([0])
        np.testing.assert_allclose(reduced.matrix, np.eye(2) / 2, atol=1e-12)

    def test_partial_trace_keep_order(self):
        # |01> reduced to (qubit1, qubit0) must be |10><10|.
        dm = DensityMatrix(Statevector.from_label("01"))
        reduced = dm.partial_trace([1, 0])
        assert reduced.probability_of("10") == pytest.approx(1.0)

    def test_partial_trace_invalid_qubit(self):
        with pytest.raises(DimensionError):
            DensityMatrix.zero_state(2).partial_trace([3])

    def test_partial_trace_preserves_trace(self):
        dm = bell_state(BellState.PSI_MINUS).density_matrix()
        reduced = dm.partial_trace([0])
        assert reduced.trace().real == pytest.approx(1.0)


class TestMeasurementAndSampling:
    def test_probabilities_of_mixed_state(self):
        dm = DensityMatrix.maximally_mixed(1)
        np.testing.assert_allclose(dm.probabilities(), [0.5, 0.5])

    def test_sample_counts_sums_to_shots(self):
        counts = DensityMatrix.maximally_mixed(2).sample_counts(200, rng=1)
        assert sum(counts.values()) == 200

    def test_expectation_value(self):
        dm = DensityMatrix(Statevector.from_label("+"))
        assert np.real(dm.expectation_value(X_MATRIX)) == pytest.approx(1.0)

    def test_expectation_value_subset(self):
        dm = DensityMatrix(Statevector.from_label("0+"))
        assert np.real(dm.expectation_value(X_MATRIX, [1])) == pytest.approx(1.0)


class TestFidelity:
    def test_fidelity_with_itself(self):
        dm = DensityMatrix(Statevector.from_label("+"))
        assert dm.fidelity(dm) == pytest.approx(1.0)

    def test_fidelity_with_pure_state(self):
        dm = DensityMatrix.maximally_mixed(1)
        assert dm.fidelity(Statevector.from_label("0")) == pytest.approx(0.5)

    def test_fidelity_orthogonal_states(self):
        zero = DensityMatrix(Statevector.from_label("0"))
        one = DensityMatrix(Statevector.from_label("1"))
        assert zero.fidelity(one) == pytest.approx(0.0, abs=1e-9)

    def test_fidelity_symmetry(self):
        a = DensityMatrix(Statevector.from_label("+"))
        b = DensityMatrix.maximally_mixed(1)
        assert a.fidelity(b) == pytest.approx(b.fidelity(a))

    def test_fidelity_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            DensityMatrix.zero_state(1).fidelity(DensityMatrix.zero_state(2))

    def test_tensor_product(self):
        dm = DensityMatrix.zero_state(1).tensor(
            DensityMatrix(Statevector.from_label("1"))
        )
        assert dm.probability_of("01") == pytest.approx(1.0)
