"""Unit tests for Bell states, CHSH values and measurement helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.bell import (
    BellState,
    CLASSICAL_CHSH_BOUND,
    TSIRELSON_BOUND,
    bell_projector,
    bell_state,
    bell_states,
    chsh_operator,
    chsh_value,
    correlation,
)
from repro.quantum.channels import depolarizing_channel
from repro.quantum.density import DensityMatrix
from repro.quantum.measurement import (
    BELL_STATE_TO_BITS,
    bell_measurement,
    bell_measurement_counts,
    bell_measurement_probabilities,
    equatorial_observable,
    measure_observable,
    projective_measurement,
)
from repro.quantum.operators import PAULI_MATRICES
from repro.quantum.states import Statevector

PAPER_ALICE_ANGLES = (0.0, math.pi / 2)
PAPER_BOB_ANGLES = (math.pi / 4, -math.pi / 4)


class TestBellStates:
    def test_all_four_states_are_normalised_and_orthogonal(self):
        states = bell_states()
        assert len(states) == 4
        for which_a, state_a in states.items():
            for which_b, state_b in states.items():
                expected = 1.0 if which_a is which_b else 0.0
                assert abs(state_a.overlap(state_b)) == pytest.approx(expected, abs=1e-12)

    def test_phi_plus_amplitudes(self):
        state = bell_state(BellState.PHI_PLUS)
        np.testing.assert_allclose(
            state.vector, np.array([1, 0, 0, 1]) / np.sqrt(2), atol=1e-12
        )

    def test_labels(self):
        assert bell_state(BellState.PSI_MINUS) is not None
        assert BellState.PSI_MINUS.label == "|Ψ-⟩"

    def test_projector_is_idempotent(self):
        proj = bell_projector(BellState.PHI_MINUS)
        assert np.allclose(proj.matrix @ proj.matrix, proj.matrix)

    def test_bell_state_rejects_bad_argument(self):
        with pytest.raises(DimensionError):
            bell_state("phi_plus")


class TestPauliEncodingOfBellStates:
    """Alice's dense coding: a Pauli on the first qubit maps |Φ+⟩ between Bell states."""

    @pytest.mark.parametrize(
        "pauli, expected",
        [
            ("I", BellState.PHI_PLUS),
            ("Z", BellState.PHI_MINUS),
            ("X", BellState.PSI_PLUS),
            ("Y", BellState.PSI_MINUS),
        ],
    )
    def test_pauli_maps_phi_plus_to_expected_bell_state(self, pauli, expected):
        encoded = bell_state(BellState.PHI_PLUS).apply_operator(
            PAULI_MATRICES[pauli], [0]
        )
        assert encoded.fidelity(bell_state(expected)) == pytest.approx(1.0)


class TestCHSH:
    def test_phi_plus_reaches_tsirelson_bound_with_paper_settings(self):
        value = chsh_value(
            bell_state(BellState.PHI_PLUS), PAPER_ALICE_ANGLES, PAPER_BOB_ANGLES
        )
        assert value == pytest.approx(TSIRELSON_BOUND)

    def test_product_state_stays_below_classical_bound(self):
        product = Statevector.from_label("00")
        value = chsh_value(product, PAPER_ALICE_ANGLES, PAPER_BOB_ANGLES)
        assert abs(value) <= CLASSICAL_CHSH_BOUND + 1e-9

    def test_maximally_mixed_state_has_zero_chsh(self):
        value = chsh_value(DensityMatrix.maximally_mixed(2))
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_werner_state_crossover(self):
        # Werner state p|Φ+><Φ+| + (1-p) I/4 violates CHSH iff p > 1/sqrt(2).
        bell_dm = bell_state(BellState.PHI_PLUS).density_matrix()
        for p, should_violate in ((0.5, False), (0.8, True)):
            werner = DensityMatrix(
                p * bell_dm.matrix + (1 - p) * np.eye(4) / 4, validate=False
            )
            value = chsh_value(werner)
            assert (value > CLASSICAL_CHSH_BOUND) is should_violate

    def test_depolarized_pair_chsh_decreases(self):
        state = bell_state(BellState.PHI_PLUS).density_matrix()
        noisy = depolarizing_channel(0.2).apply(state, [0])
        assert chsh_value(noisy) < TSIRELSON_BOUND

    def test_correlation_analytic_form(self):
        # E(a, b) = cos(a - b) for |Φ+⟩ under the conjugate-Bob convention.
        for a, b in ((0.0, math.pi / 4), (math.pi / 2, -math.pi / 4), (0.3, 1.1)):
            value = correlation(bell_state(BellState.PHI_PLUS), a, b)
            assert value == pytest.approx(math.cos(a - b), abs=1e-9)

    def test_chsh_operator_norm(self):
        op = chsh_operator(PAPER_ALICE_ANGLES, PAPER_BOB_ANGLES)
        eigenvalues = np.linalg.eigvalsh(op.matrix)
        assert max(abs(eigenvalues)) == pytest.approx(TSIRELSON_BOUND)

    def test_plus_convention_differs(self):
        # With the literal "+" phase convention the paper's angles give S = 0 on |Φ+⟩.
        value = chsh_value(
            bell_state(BellState.PHI_PLUS),
            PAPER_ALICE_ANGLES,
            PAPER_BOB_ANGLES,
            conjugate_bob=False,
        )
        assert value == pytest.approx(0.0, abs=1e-9)


class TestObservableMeasurement:
    def test_x_measurement_on_plus_state_is_deterministic(self):
        plus = Statevector.from_label("+")
        outcome, post = measure_observable(plus, equatorial_observable(0.0), [0], rng=0)
        assert outcome == 1
        assert post.fidelity(plus) == pytest.approx(1.0)

    def test_measurement_outcomes_are_pm_one(self):
        state = Statevector.from_label("0")
        outcomes = {
            measure_observable(state, equatorial_observable(0.0), [0], rng=seed)[0]
            for seed in range(20)
        }
        assert outcomes <= {-1, 1}
        assert len(outcomes) == 2  # |0> gives ±1 with probability 1/2 each

    def test_measurement_on_density_matrix(self):
        dm = DensityMatrix(Statevector.from_label("+"))
        outcome, post = measure_observable(dm, equatorial_observable(0.0), [0], rng=1)
        assert outcome == 1
        assert isinstance(post, DensityMatrix)

    def test_non_hermitian_observable_rejected(self):
        with pytest.raises(DimensionError):
            measure_observable(
                Statevector.from_label("0"), np.array([[0, 1], [0, 0]]), [0]
            )

    def test_non_involutory_observable_rejected(self):
        with pytest.raises(DimensionError):
            measure_observable(
                Statevector.from_label("0"), np.diag([2.0, -1.0]), [0]
            )

    def test_projective_measurement_statevector(self):
        outcome, post = projective_measurement(Statevector.from_label("1"), rng=0)
        assert outcome == "1"

    def test_projective_measurement_density_matrix(self):
        dm = DensityMatrix.maximally_mixed(1)
        outcome, post = projective_measurement(dm, rng=3)
        assert outcome in ("0", "1")
        assert post.probability_of(outcome) == pytest.approx(1.0)


class TestBellMeasurement:
    def test_bell_measurement_identifies_each_bell_state(self):
        for which in BellState:
            result = bell_measurement(bell_state(which), [0, 1], rng=0)
            assert result.bell_state is which
            assert result.bits == BELL_STATE_TO_BITS[which]

    def test_bell_measurement_probabilities_sum_to_one(self):
        probs = bell_measurement_probabilities(Statevector.from_label("00"), [0, 1])
        assert sum(probs.values()) == pytest.approx(1.0)
        # |00> = (|Φ+> + |Φ->)/sqrt2.
        assert probs[BellState.PHI_PLUS] == pytest.approx(0.5)
        assert probs[BellState.PHI_MINUS] == pytest.approx(0.5)

    def test_bell_measurement_counts(self):
        counts = bell_measurement_counts(
            bell_state(BellState.PSI_PLUS), [0, 1], shots=500, rng=1
        )
        assert counts == {BellState.PSI_PLUS: 500}

    def test_bell_measurement_on_noisy_state(self):
        noisy = depolarizing_channel(0.3).apply(
            bell_state(BellState.PHI_PLUS).density_matrix(), [0]
        )
        counts = bell_measurement_counts(noisy, [0, 1], shots=2000, rng=2)
        assert counts[BellState.PHI_PLUS] > 1000
        assert sum(counts.values()) == 2000

    def test_bell_measurement_requires_two_qubits(self):
        with pytest.raises(DimensionError):
            bell_measurement(bell_state(BellState.PHI_PLUS), [0])

    def test_bell_measurement_on_subset_of_register(self):
        # Pair on qubits (1, 2) of a 3-qubit register encoded with X on qubit 1.
        register = Statevector.from_label("0").tensor(bell_state(BellState.PHI_PLUS))
        encoded = register.apply_pauli("X", [1])
        result = bell_measurement(encoded, [1, 2], rng=5)
        assert result.bell_state is BellState.PSI_PLUS
