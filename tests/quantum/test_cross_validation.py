"""Cross-validation tests: independent code paths must agree with each other.

These tests pin down consistency between

* the statevector and density-matrix simulators on the same circuits,
* the circuit-level Bell-state measurement used by the hardware-emulation
  experiments and the projector-based Bell measurement used by the protocol's
  pair-level simulation,
* the analytic CHSH value and the sampled CHSH estimator,
* the composed identity-chain channel and the gate-by-gate circuit
  realisation of the same channel.

Agreement between such independent implementations is the main internal
evidence that the reproduction's numbers can be trusted.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.quantum_channel import IdentityChainChannel
from repro.device.backend import NoisyBackend
from repro.device.device_model import DeviceModel
from repro.experiments.emulation import build_message_transfer_circuit, decode_counts_to_messages
from repro.protocol.chsh import CHSHSettings, DISecurityCheck
from repro.protocol.encoding import decode_bell_state_to_bits, encode_bits_to_pauli, pauli_operator
from repro.quantum.bell import BellState, bell_state, chsh_value
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix
from repro.quantum.measurement import bell_measurement_probabilities
from repro.quantum.random import haar_random_unitary
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_circuit(num_qubits: int, depth: int, rng: np.random.Generator) -> QuantumCircuit:
    """A random circuit over the standard gate set (no measurements)."""
    circuit = QuantumCircuit(num_qubits)
    single_qubit = ("h", "x", "y", "z", "s", "t")
    for _ in range(depth):
        if num_qubits > 1 and rng.random() < 0.3:
            control, target = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(control), int(target))
        else:
            name = single_qubit[int(rng.integers(0, len(single_qubit)))]
            getattr(circuit, name)(int(rng.integers(0, num_qubits)))
        if rng.random() < 0.3:
            circuit.rz(float(rng.uniform(-math.pi, math.pi)), int(rng.integers(0, num_qubits)))
    return circuit


class TestSimulatorAgreement:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_final_states_agree(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(num_qubits=3, depth=8, rng=rng)
        pure = StatevectorSimulator().final_statevector(circuit)
        mixed = DensityMatrixSimulator().final_density_matrix(circuit)
        assert mixed.fidelity(pure) == pytest.approx(1.0, abs=1e-9)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_measurement_distributions_agree(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(num_qubits=3, depth=6, rng=rng)
        circuit.measure_all()
        sv_result = StatevectorSimulator(seed=1).run(circuit, shots=4000)
        dm_result = DensityMatrixSimulator(seed=2).run(circuit, shots=4000)
        for outcome in set(sv_result.counts) | set(dm_result.counts):
            sv_probability = sv_result.counts.get(outcome, 0) / 4000
            dm_probability = dm_result.counts.get(outcome, 0) / 4000
            assert sv_probability == pytest.approx(dm_probability, abs=0.05)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_random_unitary_expectations_agree(self, seed):
        unitary = haar_random_unitary(2, rng=seed)
        pure = bell_state(BellState.PHI_PLUS).apply_operator(unitary)
        mixed = bell_state(BellState.PHI_PLUS).density_matrix().evolve(unitary)
        assert chsh_value(pure) == pytest.approx(chsh_value(mixed), abs=1e-9)


class TestCircuitVersusPairLevelDecoding:
    @pytest.mark.parametrize("bits", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_bsm_circuit_matches_projector_measurement(self, bits):
        """The (CNOT, H, measure) circuit and the Bell projectors agree exactly."""
        label = encode_bits_to_pauli(bits)
        # Pair-level path: Pauli on qubit 0 of |Φ+⟩, projector-based BSM.
        pair = bell_state(BellState.PHI_PLUS).density_matrix()
        if label != "I":
            pair = pair.evolve(pauli_operator(label), [0])
        probabilities = bell_measurement_probabilities(pair, [0, 1])
        dominant_state = max(probabilities, key=probabilities.get)
        assert decode_bell_state_to_bits(dominant_state) == bits

        # Circuit-level path on an ideal backend.
        backend = NoisyBackend(DeviceModel.ideal(2), seed=0)
        circuit = build_message_transfer_circuit("".join(map(str, bits)), eta=3)
        decoded = decode_counts_to_messages(backend.run(circuit, shots=256))
        assert decoded == {"".join(map(str, bits)): 256}

    @pytest.mark.parametrize("eta", [50, 400])
    def test_channel_models_agree_between_paths(self, eta):
        """Composed-channel fidelity matches the gate-by-gate circuit noise model.

        The pair-level protocol applies the analytically composed η-gate
        channel; the emulation experiments apply η noisy identity gates one by
        one through the backend.  Both must give the same Bell-state fidelity
        up to the (small) difference between composing depolarizing+relaxation
        once versus per gate.
        """
        # Pair-level composed channel.
        channel = IdentityChainChannel(eta=eta)
        composed = channel.transmit(bell_state(BellState.PHI_PLUS).density_matrix(), 0)
        composed_fidelity = composed.fidelity(bell_state(BellState.PHI_PLUS))

        # Circuit-level: EPR preparation + eta ideal-identity gates with the
        # device noise attached, no SPAM beyond the gates themselves.
        device = DeviceModel.ibm_brisbane()
        backend = NoisyBackend(device, seed=1)
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        for _ in range(eta):
            circuit.id(0)
        circuit_state = backend.final_density_matrix(circuit)
        circuit_fidelity = circuit_state.fidelity(bell_state(BellState.PHI_PLUS))

        # The circuit path additionally contains the (noisy) H and CX of the
        # EPR preparation, so it sits slightly below the composed-channel
        # value; both must agree to within that preparation overhead.
        assert circuit_fidelity <= composed_fidelity + 1e-6
        assert composed_fidelity - circuit_fidelity < 0.02


class TestAnalyticVersusSampledCHSH:
    @pytest.mark.parametrize("depolarizing", [0.0, 0.1, 0.3])
    def test_sampled_estimator_converges_to_analytic_value(self, depolarizing):
        from repro.quantum.channels import depolarizing_channel

        state = bell_state(BellState.PHI_PLUS).density_matrix()
        if depolarizing > 0:
            state = depolarizing_channel(depolarizing).apply(state, [0])
        analytic = chsh_value(state)
        estimate = DISecurityCheck(CHSHSettings()).estimate([state] * 3000, rng=7)
        assert estimate.value == pytest.approx(analytic, abs=0.15)

    def test_settings_follow_paper_angles(self):
        settings_obj = CHSHSettings()
        analytic = chsh_value(
            bell_state(BellState.PHI_PLUS),
            settings_obj.chsh_alice_angles,
            settings_obj.bob_angles,
        )
        assert analytic == pytest.approx(2 * math.sqrt(2))
