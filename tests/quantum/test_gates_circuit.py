"""Unit tests for the gate library and circuit representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import Gate, make_gate, standard_gates
from repro.quantum.operators import is_unitary_matrix
from repro.quantum.states import Statevector


class TestGateLibrary:
    def test_all_standard_gates_are_unitary(self):
        for name, num_qubits in standard_gates().items():
            if name in ("rx", "ry", "rz", "p"):
                gate = make_gate(name, 0.7)
            elif name == "u3":
                gate = make_gate(name, 0.3, 0.5, 0.7)
            else:
                gate = make_gate(name)
            assert gate.num_qubits == num_qubits
            assert is_unitary_matrix(gate.matrix), name

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            make_gate("toffoli")

    def test_fixed_gate_rejects_parameters(self):
        with pytest.raises(CircuitError):
            make_gate("x", 0.5)

    def test_parametric_gate_requires_parameters(self):
        with pytest.raises(CircuitError):
            make_gate("rx")

    def test_rx_pi_equals_x_up_to_phase(self):
        rx = make_gate("rx", np.pi).matrix
        x = make_gate("x").matrix
        phase = rx[0, 1] / x[0, 1]
        assert np.allclose(rx, phase * x)

    def test_gate_inverse(self):
        s = make_gate("s")
        identity = s.matrix @ s.inverse().matrix
        assert np.allclose(identity, np.eye(2))

    def test_gate_shape_validation(self):
        with pytest.raises(CircuitError):
            Gate("bad", 2, np.eye(2))


class TestCircuitConstruction:
    def test_instruction_counting(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).measure_all()
        ops = qc.count_ops()
        assert ops["h"] == 1
        assert ops["cx"] == 1
        assert ops["measure"] == 1
        assert qc.num_gates() == 2

    def test_invalid_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.x(2)

    def test_duplicate_qubits_in_two_qubit_gate_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.cx(1, 1)

    def test_measure_requires_matching_clbits(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.measure([0, 1], [0])

    def test_measure_all_requires_enough_clbits(self):
        qc = QuantumCircuit(2, num_clbits=1)
        with pytest.raises(CircuitError):
            qc.measure_all()

    def test_needs_at_least_one_qubit(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_unitary_instruction_requires_unitary(self):
        qc = QuantumCircuit(1)
        with pytest.raises(Exception):
            qc.unitary(np.array([[1, 0], [0, 2]]), [0])

    def test_pauli_string_helper(self):
        qc = QuantumCircuit(3)
        qc.pauli("XIZ", [0, 1, 2])
        names = [instr.name for instr in qc.instructions]
        assert names == ["x", "id", "z"]

    def test_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1).cx(0, 1)
        assert qc.depth() == 2

    def test_barrier_does_not_affect_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().h(0)
        assert qc.depth() == 2

    def test_has_measurements_and_measured_qubits(self):
        qc = QuantumCircuit(3)
        qc.h(0).measure([2, 0], [2, 0])
        assert qc.has_measurements()
        assert set(qc.measured_qubits()) == {0, 2}


class TestCircuitOperations:
    def test_to_operator_matches_statevector(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        op = qc.to_operator()
        state = op.matrix @ Statevector.zero_state(2).vector
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_to_operator_rejects_measurements(self):
        qc = QuantumCircuit(1)
        qc.h(0).measure([0], [0])
        with pytest.raises(CircuitError):
            qc.to_operator()

    def test_inverse_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).s(1)
        product = qc.copy().compose(qc.inverse()).to_operator()
        assert np.allclose(product.matrix, np.eye(4), atol=1e-10)

    def test_inverse_rejects_measurement(self):
        qc = QuantumCircuit(1)
        qc.measure([0], [0])
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_compose_with_qubit_mapping(self):
        inner = QuantumCircuit(1)
        inner.x(0)
        outer = QuantumCircuit(3)
        outer.compose(inner, qubits=[2])
        assert outer.instructions[0].qubits == (2,)

    def test_compose_rejects_wrong_mapping_length(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            outer.compose(inner, qubits=[0])

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        copy = qc.copy()
        copy.x(0)
        assert len(qc) == 1
        assert len(copy) == 2

    def test_iteration_and_len(self):
        qc = QuantumCircuit(1)
        qc.h(0).measure([0], [0])
        assert len(list(iter(qc))) == len(qc) == 2
