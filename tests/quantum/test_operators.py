"""Unit tests for repro.quantum.operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError, NonUnitaryError
from repro.quantum.operators import (
    H_MATRIX,
    I_MATRIX,
    Operator,
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    X_MATRIX,
    Y_MATRIX,
    Z_MATRIX,
    embed_operator,
    is_hermitian_matrix,
    is_unitary_matrix,
    kron_all,
)


class TestMatrixPredicates:
    def test_paulis_are_unitary_and_hermitian(self):
        for matrix in (I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX, H_MATRIX):
            assert is_unitary_matrix(matrix)
            assert is_hermitian_matrix(matrix)

    def test_non_unitary_detected(self):
        assert not is_unitary_matrix(np.array([[1, 0], [0, 2]]))

    def test_non_square_rejected(self):
        assert not is_unitary_matrix(np.ones((2, 3)))
        assert not is_hermitian_matrix(np.ones((2, 3)))


class TestKron:
    def test_kron_all_order(self):
        result = kron_all([X_MATRIX, Z_MATRIX])
        assert np.allclose(result, np.kron(X_MATRIX, Z_MATRIX))

    def test_kron_all_empty(self):
        assert np.allclose(kron_all([]), np.eye(1))


class TestOperatorBasics:
    def test_dimension_inference(self):
        assert Operator(np.eye(4)).num_qubits == 2
        assert Operator(np.eye(8)).num_qubits == 3

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            Operator(np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DimensionError):
            Operator(np.eye(3))

    def test_copy_constructor(self):
        op = Operator(X_MATRIX)
        assert Operator(op) == op

    def test_require_unitary_raises(self):
        with pytest.raises(NonUnitaryError):
            Operator(np.array([[1, 0], [0, 2]])).require_unitary()

    def test_adjoint(self):
        s_gate = Operator(np.array([[1, 0], [0, 1j]]))
        assert np.allclose(s_gate.adjoint().matrix, np.array([[1, 0], [0, -1j]]))


class TestOperatorAlgebra:
    def test_pauli_products(self):
        # X Y = i Z
        product = PAULI_Y @ PAULI_X
        assert np.allclose(product.matrix, 1j * Z_MATRIX) or np.allclose(
            product.matrix, -1j * Z_MATRIX
        )

    def test_compose_order(self):
        # compose applies self first: (H . X)|0> = H X |0> = H|1> = |->
        op = Operator(X_MATRIX).compose(Operator(H_MATRIX))
        state = op.matrix @ np.array([1, 0], dtype=complex)
        minus = np.array([1, -1], dtype=complex) / np.sqrt(2)
        assert np.allclose(state, minus)

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            PAULI_X @ Operator(np.eye(4))

    def test_tensor(self):
        op = PAULI_X.tensor(PAULI_Z)
        assert op.num_qubits == 2
        assert np.allclose(op.matrix, np.kron(X_MATRIX, Z_MATRIX))

    def test_power(self):
        assert PAULI_X.power(2) == PAULI_I

    def test_scale_i_sigma_y_is_real(self):
        i_sigma_y = PAULI_Y.scale(1j)
        assert np.allclose(i_sigma_y.matrix.imag, 0)
        assert i_sigma_y.is_unitary()

    def test_expectation_value(self):
        plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
        assert Operator(X_MATRIX).expectation(plus) == pytest.approx(1.0)
        assert Operator(Z_MATRIX).expectation(plus) == pytest.approx(0.0)

    def test_expectation_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            Operator(np.eye(4)).expectation(np.array([1, 0]))

    def test_eigenvalues_of_pauli(self):
        assert sorted(np.round(PAULI_Z.eigenvalues(), 6)) == [-1.0, 1.0]

    def test_equiv_up_to_phase(self):
        op = Operator(X_MATRIX)
        assert op.equiv(Operator(np.exp(1j * 0.3) * X_MATRIX), up_to_phase=True)
        assert not op.equiv(Operator(np.exp(1j * 0.3) * X_MATRIX), up_to_phase=False)


class TestEmbedOperator:
    def test_single_qubit_embedding_matches_kron(self):
        embedded = embed_operator(X_MATRIX, [0], 2)
        assert np.allclose(embedded, np.kron(X_MATRIX, I_MATRIX))
        embedded = embed_operator(X_MATRIX, [1], 2)
        assert np.allclose(embedded, np.kron(I_MATRIX, X_MATRIX))

    def test_two_qubit_embedding_reordered_targets(self):
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        # control = qubit 2, target = qubit 0 in a 3-qubit register.
        embedded = embed_operator(cx, [2, 0], 3)
        state = np.zeros(8, dtype=complex)
        state[0b001] = 1.0  # q0=0, q1=0, q2=1
        flipped = embedded @ state
        assert np.argmax(np.abs(flipped)) == 0b101  # q0 flipped because control q2 = 1

    def test_embedding_preserves_unitarity(self):
        embedded = embed_operator(H_MATRIX, [1], 3)
        assert is_unitary_matrix(embedded)

    def test_rejects_duplicate_targets(self):
        with pytest.raises(DimensionError):
            embed_operator(np.eye(4), [0, 0], 2)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(DimensionError):
            embed_operator(X_MATRIX, [3], 2)

    def test_rejects_wrong_target_count(self):
        with pytest.raises(DimensionError):
            embed_operator(np.eye(4), [0], 3)
