"""Deterministic-contract tests: tie-breaking and measurement seed handling.

Covers the two determinism guarantees the simulators document:

* :meth:`SimulationResult.most_frequent` (and the device-level
  :meth:`Counts.most_frequent`) break count ties towards the
  lexicographically smallest outcome, independent of dict insertion order —
  so "the decoded symbol" of an experiment can never depend on histogram
  construction order, backend choice or platform;
* measurement sampling consumes exactly one RNG draw per sampled circuit
  from an explicitly resolved generator, so a fixed seed reproduces counts
  bit-for-bit across runs, execution paths and platforms (numpy's
  ``Generator`` bit streams are platform-stable for a fixed algorithm
  version; the pinned histogram below would flag any regression).
"""

import numpy as np
import pytest

from repro.device.counts import Counts
from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import (
    DensityMatrixSimulator,
    SimulationResult,
    StatevectorSimulator,
)
from repro.quantum.stabilizer import StabilizerSimulator


def _bell():
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


class TestMostFrequentTieBreaking:
    def test_clear_winner(self):
        result = SimulationResult(counts={"01": 10, "10": 3}, shots=13)
        assert result.most_frequent() == "01"

    def test_tie_breaks_to_lexicographically_smallest(self):
        result = SimulationResult(counts={"11": 5, "00": 5}, shots=10)
        assert result.most_frequent() == "00"

    def test_tie_break_independent_of_insertion_order(self):
        forward = SimulationResult(counts={"00": 7, "11": 7, "01": 1}, shots=15)
        backward = SimulationResult(counts={"01": 1, "11": 7, "00": 7}, shots=15)
        assert forward.most_frequent() == backward.most_frequent() == "00"

    def test_empty_counts_raise(self):
        with pytest.raises(SimulationError):
            SimulationResult(counts={}, shots=0).most_frequent()

    def test_device_counts_same_rule(self):
        assert Counts({"11": 4, "10": 4}, shots=8).most_frequent() == "10"
        assert (
            Counts({"10": 4, "11": 4}, shots=8).most_frequent()
            == Counts({"11": 4, "10": 4}, shots=8).most_frequent()
        )


class TestSamplingSeedHandling:
    #: Pinned histogram for seed 1234 / 100 shots on a Bell circuit; equal on
    #: every backend and platform (regenerate only on a numpy Generator
    #: algorithm change, which numpy treats as a major-version event).
    PINNED = {"00": 55, "11": 45}

    @pytest.mark.parametrize(
        "factory",
        [StatevectorSimulator, DensityMatrixSimulator, StabilizerSimulator],
        ids=["statevector", "density", "stabilizer"],
    )
    def test_pinned_seed_reproduces_exact_counts(self, factory):
        assert factory(seed=1234).run(_bell(), shots=100).counts == self.PINNED

    def test_same_seed_same_counts_across_instances(self):
        a = DensityMatrixSimulator(seed=77).run(_bell(), shots=512).counts
        b = DensityMatrixSimulator(seed=77).run(_bell(), shots=512).counts
        assert a == b

    def test_instance_stream_advances_between_runs(self):
        simulator = DensityMatrixSimulator(seed=77)
        first = simulator.run(_bell(), shots=512).counts
        second = simulator.run(_bell(), shots=512).counts
        assert first != second  # the instance stream advanced

    def test_explicit_rng_overrides_instance_stream(self):
        simulator = DensityMatrixSimulator(seed=0)
        explicit = simulator.run(
            _bell(), shots=512, rng=np.random.default_rng(123)
        ).counts
        fresh = DensityMatrixSimulator(seed=999).run(
            _bell(), shots=512, rng=np.random.default_rng(123)
        ).counts
        assert explicit == fresh

    def test_explicit_rng_does_not_consume_instance_stream(self):
        with_detour = DensityMatrixSimulator(seed=42)
        with_detour.run(_bell(), shots=64, rng=np.random.default_rng(5))
        direct = DensityMatrixSimulator(seed=42)
        assert (
            with_detour.run(_bell(), shots=256).counts
            == direct.run(_bell(), shots=256).counts
        )

    def test_one_multinomial_draw_per_circuit(self):
        # After sampling a circuit, both generators sit at the same point of
        # the stream: the next draws agree.
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        DensityMatrixSimulator().run(_bell(), shots=128, rng=rng_a)
        StabilizerSimulator().run(_bell(), shots=128, rng=rng_b)
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)
