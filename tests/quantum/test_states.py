"""Unit tests for repro.quantum.states."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError, NonPhysicalStateError
from repro.quantum.operators import H_MATRIX, X_MATRIX, Z_MATRIX
from repro.quantum.states import Statevector


class TestConstruction:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.num_qubits == 3
        assert state.probability_of("000") == pytest.approx(1.0)

    def test_from_label_computational(self):
        state = Statevector.from_label("01")
        assert state.probability_of("01") == pytest.approx(1.0)

    def test_from_label_superposition(self):
        plus = Statevector.from_label("+")
        assert plus.probabilities()[0] == pytest.approx(0.5)
        assert plus.probabilities()[1] == pytest.approx(0.5)

    def test_from_label_rejects_unknown(self):
        with pytest.raises(DimensionError):
            Statevector.from_label("0q")

    def test_from_int(self):
        state = Statevector.from_int(5, 3)
        assert state.probability_of("101") == pytest.approx(1.0)

    def test_from_int_out_of_range(self):
        with pytest.raises(DimensionError):
            Statevector.from_int(8, 3)

    def test_rejects_unnormalised(self):
        with pytest.raises(NonPhysicalStateError):
            Statevector([1.0, 1.0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DimensionError):
            Statevector([1.0, 0.0, 0.0])

    def test_normalized(self):
        state = Statevector([2.0, 0.0], validate=False).normalized()
        assert state.norm() == pytest.approx(1.0)


class TestEvolution:
    def test_apply_x_flips_bit(self):
        state = Statevector.zero_state(2).apply_operator(X_MATRIX, [1])
        assert state.probability_of("01") == pytest.approx(1.0)

    def test_apply_full_register_operator(self):
        state = Statevector.zero_state(1).apply_operator(H_MATRIX)
        assert state.probabilities()[0] == pytest.approx(0.5)

    def test_apply_operator_wrong_target_count(self):
        with pytest.raises(DimensionError):
            Statevector.zero_state(2).apply_operator(np.eye(4), [0])

    def test_apply_pauli_string(self):
        state = Statevector.zero_state(2).apply_pauli("XX", [0, 1])
        assert state.probability_of("11") == pytest.approx(1.0)

    def test_apply_pauli_length_mismatch(self):
        with pytest.raises(DimensionError):
            Statevector.zero_state(2).apply_pauli("X", [0, 1])

    def test_big_endian_convention(self):
        # X on qubit 0 of a 2-qubit register flips the leftmost bit.
        state = Statevector.zero_state(2).apply_operator(X_MATRIX, [0])
        assert state.probability_of("10") == pytest.approx(1.0)


class TestProbabilities:
    def test_marginal_probabilities(self):
        # |psi> = |0>(|0>+|1>)/sqrt2 : qubit 1 is uniform, qubit 0 deterministic.
        state = Statevector.from_label("0+")
        np.testing.assert_allclose(state.probabilities([0]), [1.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(state.probabilities([1]), [0.5, 0.5], atol=1e-12)

    def test_qubit_order_in_marginals(self):
        state = Statevector.from_label("01")
        # Asking for (qubit1, qubit0) must report the outcome "10".
        probs = state.probabilities([1, 0])
        assert probs[0b10] == pytest.approx(1.0)

    def test_probabilities_sum_to_one(self):
        state = Statevector.from_label("+-")
        assert state.probabilities().sum() == pytest.approx(1.0)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(DimensionError):
            Statevector.zero_state(2).probabilities([0, 0])

    def test_probability_of_length_mismatch(self):
        with pytest.raises(DimensionError):
            Statevector.zero_state(2).probability_of("0")


class TestSamplingAndMeasurement:
    def test_sample_counts_total(self):
        counts = Statevector.from_label("+").sample_counts(1000, rng=1)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"0", "1"}

    def test_sample_counts_deterministic_state(self):
        counts = Statevector.from_label("10").sample_counts(100, rng=2)
        assert counts == {"10": 100}

    def test_sample_counts_seeded_reproducibility(self):
        state = Statevector.from_label("++")
        assert state.sample_counts(500, rng=3) == state.sample_counts(500, rng=3)

    def test_measure_collapses_state(self):
        state = Statevector.from_label("+")
        outcome, post = state.measure(rng=4)
        assert outcome in ("0", "1")
        assert post.probability_of(outcome) == pytest.approx(1.0)

    def test_measure_subset_keeps_other_qubits(self):
        state = Statevector.from_label("+0")
        outcome, post = state.measure([0], rng=5)
        assert post.num_qubits == 2
        assert post.probability_of("0", qubits=[1]) == pytest.approx(1.0)

    def test_measurement_of_entangled_pair_is_correlated(self):
        bell = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2))
        outcome, post = bell.measure([0], rng=6)
        assert post.probability_of(outcome, qubits=[1]) == pytest.approx(1.0)

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError):
            Statevector.from_label("0").sample_counts(-1)


class TestComparisons:
    def test_overlap_and_fidelity(self):
        zero = Statevector.from_label("0")
        plus = Statevector.from_label("+")
        assert abs(zero.overlap(plus)) == pytest.approx(1 / np.sqrt(2))
        assert zero.fidelity(plus) == pytest.approx(0.5)

    def test_equiv_up_to_global_phase(self):
        state = Statevector.from_label("+")
        phased = Statevector(np.exp(1j * 1.2) * state.vector, validate=False)
        assert state.equiv(phased)

    def test_expectation_value_on_subset(self):
        state = Statevector.from_label("0+")
        assert state.expectation_value(Z_MATRIX, [0]) == pytest.approx(1.0)
        assert state.expectation_value(X_MATRIX, [1]) == pytest.approx(1.0)

    def test_tensor_product(self):
        state = Statevector.from_label("0").tensor(Statevector.from_label("1"))
        assert state.probability_of("01") == pytest.approx(1.0)

    def test_density_matrix_of_pure_state_has_unit_purity(self):
        dm = Statevector.from_label("+-").density_matrix()
        assert dm.purity() == pytest.approx(1.0)

    def test_partial_trace_of_entangled_state_is_mixed(self):
        bell = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2))
        reduced = bell.partial_trace([0])
        assert reduced.purity() == pytest.approx(0.5)
