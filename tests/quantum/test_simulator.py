"""Unit tests for the statevector and density-matrix simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.channels import bit_flip_channel, depolarizing_channel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix
from repro.quantum.noise_model import NoiseModel, ReadoutError
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.states import Statevector


def bell_circuit(measure: bool = True) -> QuantumCircuit:
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    if measure:
        qc.measure_all()
    return qc


class TestStatevectorSimulator:
    def test_final_statevector_of_bell_circuit(self):
        sim = StatevectorSimulator(seed=0)
        state = sim.final_statevector(bell_circuit(measure=False))
        expected = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2))
        assert state.fidelity(expected) == pytest.approx(1.0)

    def test_final_statevector_rejects_measurement(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator().final_statevector(bell_circuit(measure=True))

    def test_bell_counts_only_correlated_outcomes(self):
        result = StatevectorSimulator(seed=1).run(bell_circuit(), shots=2000)
        assert set(result.counts) <= {"00", "11"}
        assert sum(result.counts.values()) == 2000
        assert 800 < result.counts["00"] < 1200

    def test_no_measurement_returns_no_counts(self):
        result = StatevectorSimulator().run(bell_circuit(measure=False), shots=100)
        assert result.counts == {}
        assert result.statevector is not None

    def test_deterministic_with_seed(self):
        counts_a = StatevectorSimulator(seed=7).run(bell_circuit(), shots=500).counts
        counts_b = StatevectorSimulator(seed=7).run(bell_circuit(), shots=500).counts
        assert counts_a == counts_b

    def test_initial_state_override(self):
        qc = QuantumCircuit(1)
        qc.measure_all()
        result = StatevectorSimulator(seed=2).run(
            qc, shots=50, initial_state=Statevector.from_label("1")
        )
        assert result.counts == {"1": 50}

    def test_initial_state_dimension_check(self):
        qc = QuantumCircuit(2)
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(qc, initial_state=Statevector.from_label("1"))

    def test_partial_measurement_maps_to_clbits(self):
        qc = QuantumCircuit(2, num_clbits=2)
        qc.x(1)
        qc.measure([1], [0])
        result = StatevectorSimulator(seed=3).run(qc, shots=10)
        # Clbit 0 receives qubit 1's value (1); clbit 1 stays 0.
        assert result.counts == {"10": 10}

    def test_mid_circuit_measurement_per_shot_path(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.measure([0], [0])
        qc.x(0)
        qc.measure([0], [0])
        result = StatevectorSimulator(seed=4).run(qc, shots=64)
        assert result.metadata["terminal_sampling"] is False
        assert sum(result.counts.values()) == 64

    def test_reset_instruction(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.reset(0)
        qc.measure_all()
        result = StatevectorSimulator(seed=5).run(qc, shots=32)
        assert result.counts == {"0": 32}

    def test_most_frequent_and_probabilities(self):
        result = StatevectorSimulator(seed=6).run(bell_circuit(), shots=100)
        assert result.most_frequent() in ("00", "11")
        assert sum(result.probabilities().values()) == pytest.approx(1.0)

    def test_negative_shots_rejected(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(bell_circuit(), shots=-1)


class TestDensityMatrixSimulator:
    def test_matches_statevector_simulator_without_noise(self):
        qc = bell_circuit()
        dm_counts = DensityMatrixSimulator(seed=1).run(qc, shots=4000).counts
        assert set(dm_counts) <= {"00", "11"}
        assert 1700 < dm_counts["00"] < 2300

    def test_gate_noise_is_applied(self):
        model = NoiseModel()
        model.add_all_qubit_error(bit_flip_channel(1.0), "id")
        qc = QuantumCircuit(1)
        qc.id(0)
        qc.measure_all()
        result = DensityMatrixSimulator(noise_model=model, seed=2).run(qc, shots=100)
        assert result.counts == {"1": 100}

    def test_noise_only_on_matching_gate(self):
        model = NoiseModel()
        model.add_all_qubit_error(bit_flip_channel(1.0), "id")
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.measure_all()
        result = DensityMatrixSimulator(noise_model=model, seed=3).run(qc, shots=100)
        assert result.counts == {"1": 100}

    def test_single_qubit_error_broadcast_over_two_qubit_gate(self):
        model = NoiseModel()
        model.add_all_qubit_error(depolarizing_channel(0.2), "cx")
        qc = bell_circuit()
        result = DensityMatrixSimulator(noise_model=model, seed=4).run(qc, shots=3000)
        # Depolarizing noise introduces anti-correlated outcomes.
        assert set(result.counts) == {"00", "01", "10", "11"}

    def test_readout_error_flips_outcomes(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(1.0, 0.0), qubit=0)
        qc = QuantumCircuit(1)
        qc.measure_all()
        result = DensityMatrixSimulator(noise_model=model, seed=5).run(qc, shots=10)
        assert result.counts == {"1": 10}

    def test_mid_circuit_measurement_rejected(self):
        qc = QuantumCircuit(1)
        qc.measure([0], [0])
        qc.x(0)
        qc.measure([0], [0])
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run(qc)

    def test_reset_channel(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.reset(0)
        qc.measure_all()
        result = DensityMatrixSimulator(seed=6).run(qc, shots=20)
        assert result.counts == {"0": 20}

    def test_final_density_matrix(self):
        dm = DensityMatrixSimulator().final_density_matrix(bell_circuit(measure=False))
        assert isinstance(dm, DensityMatrix)
        assert dm.purity() == pytest.approx(1.0)

    def test_final_density_matrix_with_noise_is_mixed(self):
        model = NoiseModel()
        model.add_all_qubit_error(depolarizing_channel(0.3), "h")
        qc = QuantumCircuit(1)
        qc.h(0)
        dm = DensityMatrixSimulator(noise_model=model).final_density_matrix(qc)
        assert dm.purity() < 1.0

    def test_counts_without_measurement(self):
        result = DensityMatrixSimulator().run(bell_circuit(measure=False), shots=10)
        assert result.counts == {}
        assert result.density_matrix is not None

    def test_metadata_reports_noise_model(self):
        model = NoiseModel(name="custom")
        result = DensityMatrixSimulator(noise_model=model).run(bell_circuit(), shots=1)
        assert result.metadata["noise_model"] == "custom"
