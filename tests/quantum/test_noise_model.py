"""Unit tests for NoiseModel, QuantumError and ReadoutError."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.quantum.channels import bit_flip_channel, depolarizing_channel
from repro.quantum.noise_model import NoiseModel, QuantumError, ReadoutError


class TestQuantumError:
    def test_wraps_channel(self):
        error = QuantumError(depolarizing_channel(0.1))
        assert error.num_qubits == 1
        assert "depolarizing" in error.name

    def test_rejects_non_channel(self):
        with pytest.raises(NoiseModelError):
            QuantumError("not-a-channel")


class TestReadoutError:
    def test_assignment_matrix_columns_sum_to_one(self):
        error = ReadoutError(0.02, 0.05)
        matrix = error.assignment_matrix
        np.testing.assert_allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_symmetric_constructor(self):
        error = ReadoutError.symmetric(0.03)
        assert error.prob_1_given_0 == error.prob_0_given_1 == 0.03

    def test_rejects_invalid_probability(self):
        with pytest.raises(NoiseModelError):
            ReadoutError(1.5, 0.0)


class TestNoiseModel:
    def test_ideal_by_default(self):
        assert NoiseModel().is_ideal()

    def test_all_qubit_error_lookup(self):
        model = NoiseModel()
        model.add_all_qubit_error(depolarizing_channel(0.1), "id")
        assert len(model.errors_for("id", [0])) == 1
        assert len(model.errors_for("id", [5])) == 1
        assert len(model.errors_for("x", [0])) == 0

    def test_local_error_lookup(self):
        model = NoiseModel()
        model.add_qubit_error(bit_flip_channel(0.2), "x", [3])
        assert len(model.errors_for("x", [3])) == 1
        assert len(model.errors_for("x", [1])) == 0

    def test_local_and_default_errors_combine(self):
        model = NoiseModel()
        model.add_all_qubit_error(depolarizing_channel(0.1), "cx")
        model.add_qubit_error(bit_flip_channel(0.2), "cx", [0, 1])
        assert len(model.errors_for("cx", [0, 1])) == 2
        assert len(model.errors_for("cx", [1, 2])) == 1

    def test_multiple_gate_names_at_once(self):
        model = NoiseModel()
        model.add_all_qubit_error(depolarizing_channel(0.1), ["x", "y", "z"])
        assert model.noisy_gate_names == {"x", "y", "z"}

    def test_gate_name_case_insensitive(self):
        model = NoiseModel()
        model.add_all_qubit_error(depolarizing_channel(0.1), "CX")
        assert len(model.errors_for("cx", [0, 1])) == 1

    def test_readout_error_default_and_override(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError.symmetric(0.01))
        model.add_readout_error(ReadoutError.symmetric(0.2), qubit=3)
        assert model.readout_error_for(0).prob_1_given_0 == pytest.approx(0.01)
        assert model.readout_error_for(3).prob_1_given_0 == pytest.approx(0.2)
        assert model.has_readout_error()

    def test_apply_readout_errors_single_qubit(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.1, 0.0), qubit=0)
        probs = model.apply_readout_errors(np.array([1.0, 0.0]), [0])
        np.testing.assert_allclose(probs, [0.9, 0.1])

    def test_apply_readout_errors_two_qubits(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.1, 0.1), qubit=0)
        # Qubit 1 has no readout error; only the first bit should flip.
        probs = model.apply_readout_errors(np.array([1.0, 0.0, 0.0, 0.0]), [0, 1])
        np.testing.assert_allclose(probs, [0.9, 0.0, 0.1, 0.0])

    def test_apply_readout_errors_shape_mismatch(self):
        model = NoiseModel()
        with pytest.raises(NoiseModelError):
            model.apply_readout_errors(np.array([1.0, 0.0]), [0, 1])

    def test_apply_readout_preserves_normalisation(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.07, 0.11))
        probs = model.apply_readout_errors(np.array([0.25, 0.25, 0.25, 0.25]), [0, 1])
        assert probs.sum() == pytest.approx(1.0)
