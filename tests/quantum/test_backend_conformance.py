"""Cross-backend conformance battery.

One parameterised suite runs protocol-shaped Clifford circuits against every
execution path in the tree —

* ``StatevectorSimulator.run`` (sequential reference),
* ``StatevectorSimulator.run_batch`` (compiled unitaries),
* ``DensityMatrixSimulator.run`` (sequential superoperators),
* ``DensityMatrixSimulator.run_batch`` (compiled superoperators),
* ``StabilizerSimulator`` (tableau; analytic and trajectory modes),

and pins two levels of agreement:

**Exact** — on noiseless Clifford circuits every path produces *bit-identical
counts* under a fixed seed: all paths reduce to one ``multinomial`` draw from
the same probability vector, so equal seeds mean equal histograms.  The same
holds for Pauli-noise models between the dense path and the stabilizer
*analytic* path, whose XOR-convolution computes the identical distribution.

**Statistical** — the stabilizer *trajectory* mode samples noise per shot and
therefore only agrees in distribution.  Those comparisons use a two-sample
chi-squared test at significance α = 0.001 (critical values inlined below;
fixed seeds make each test deterministic, so a passing battery stays
passing).
"""

import numpy as np
import pytest

from repro.device.backend import NoisyBackend
from repro.device.device_model import DeviceModel
from repro.quantum.channels import (
    bit_flip_channel,
    depolarizing_channel,
    pauli_channel,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise_model import NoiseModel, ReadoutError
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.stabilizer import StabilizerSimulator

SHOTS = 2048

#: chi-squared critical values at α = 0.001 (upper tail), keyed by degrees
#: of freedom; from the standard chi-squared distribution tables.
CHI2_CRITICAL_999 = {
    1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515,
    6: 22.458, 7: 24.322, 8: 26.124, 9: 27.877, 10: 29.588,
    15: 37.697, 20: 45.315, 31: 61.098,
}


def two_sample_chi2(counts_a: dict, counts_b: dict) -> tuple[float, int]:
    """Two-sample chi-squared statistic and degrees of freedom.

    Standard homogeneity test: with totals ``N_a``/``N_b`` and per-outcome
    observations ``a_i``/``b_i``, the statistic is
    ``sum_i (sqrt(N_b/N_a) a_i - sqrt(N_a/N_b) b_i)^2 / (a_i + b_i)`` over
    outcomes observed at least once, with ``#outcomes - 1`` degrees of
    freedom.
    """
    outcomes = sorted(set(counts_a) | set(counts_b))
    n_a = sum(counts_a.values())
    n_b = sum(counts_b.values())
    statistic = 0.0
    for outcome in outcomes:
        a = counts_a.get(outcome, 0)
        b = counts_b.get(outcome, 0)
        if a + b == 0:
            continue
        statistic += (np.sqrt(n_b / n_a) * a - np.sqrt(n_a / n_b) * b) ** 2 / (a + b)
    return statistic, max(len(outcomes) - 1, 1)


def assert_statistically_equivalent(counts_a: dict, counts_b: dict) -> None:
    statistic, dof = two_sample_chi2(counts_a, counts_b)
    critical = CHI2_CRITICAL_999.get(
        dof, CHI2_CRITICAL_999[min(k for k in CHI2_CRITICAL_999 if k >= dof)]
    )
    assert statistic < critical, (
        f"chi2={statistic:.2f} exceeds the α=0.001 critical value {critical} "
        f"at {dof} dof\n  a={counts_a}\n  b={counts_b}"
    )


# -- the circuit battery -------------------------------------------------------------
def message_transfer(message: str, eta: int = 30) -> QuantumCircuit:
    """The paper's dense-coding emulation circuit (Bell prep, Pauli, η-chain, BSM)."""
    from repro.experiments.emulation import build_message_transfer_circuit

    return build_message_transfer_circuit(message, eta)


def ghz(n: int) -> QuantumCircuit:
    circuit = QuantumCircuit(n, name=f"ghz{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    circuit.measure_all()
    return circuit


def clifford_mix() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="clifford_mix")
    circuit.h(0)
    circuit.s(0)
    circuit.cz(0, 1)
    circuit.cy(1, 2)
    circuit.sdg(1)
    circuit.swap(0, 2)
    circuit.y(1)
    circuit.h(2)
    circuit.measure_all()
    return circuit


def random_clifford(seed: int, n: int = 4, depth: int = 24) -> QuantumCircuit:
    """A reproducible random Clifford circuit over the full tableau gate set."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(n, name=f"random_clifford_{seed}")
    one_qubit = ("h", "s", "sdg", "x", "y", "z", "id")
    two_qubit = ("cx", "cz", "cy", "swap")
    for _ in range(depth):
        if rng.random() < 0.5:
            gate = one_qubit[int(rng.integers(len(one_qubit)))]
            getattr(circuit, gate if gate != "id" else "id")(int(rng.integers(n)))
        else:
            gate = two_qubit[int(rng.integers(len(two_qubit)))]
            a, b = rng.choice(n, size=2, replace=False)
            getattr(circuit, gate)(int(a), int(b))
    circuit.measure_all()
    return circuit


def reset_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="reset_reuse")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.reset(1)
    circuit.h(1)
    circuit.cx(1, 2)
    circuit.measure_all()
    return circuit


NOISELESS_BATTERY = [
    pytest.param(lambda: message_transfer("00"), id="message_00"),
    pytest.param(lambda: message_transfer("01"), id="message_01"),
    pytest.param(lambda: message_transfer("10"), id="message_10"),
    pytest.param(lambda: message_transfer("11"), id="message_11"),
    pytest.param(lambda: ghz(3), id="ghz3"),
    pytest.param(lambda: ghz(5), id="ghz5"),
    pytest.param(clifford_mix, id="clifford_mix"),
    pytest.param(lambda: random_clifford(1), id="random_clifford_1"),
    pytest.param(lambda: random_clifford(2), id="random_clifford_2"),
    pytest.param(lambda: random_clifford(3), id="random_clifford_3"),
]


def pauli_noise_model() -> NoiseModel:
    model = NoiseModel("conformance_pauli")
    model.add_all_qubit_error(depolarizing_channel(0.004), "id")
    model.add_all_qubit_error(bit_flip_channel(0.01), "cx")
    model.add_all_qubit_error(pauli_channel(0.004, 0.002, 0.006), "h")
    model.add_readout_error(ReadoutError.symmetric(0.015))
    return model


NOISY_BATTERY = [
    pytest.param(lambda: message_transfer("00", eta=120), id="message_00_eta120"),
    pytest.param(lambda: message_transfer("11", eta=120), id="message_11_eta120"),
    pytest.param(lambda: ghz(3), id="ghz3"),
    pytest.param(clifford_mix, id="clifford_mix"),
    pytest.param(reset_circuit, id="reset_reuse"),
]


# -- exact conformance -----------------------------------------------------------------
class TestNoiselessExactConformance:
    @pytest.mark.parametrize("build", NOISELESS_BATTERY)
    def test_all_backends_bit_identical(self, build):
        seed = 20240

        def counts_of(result):
            return result.counts

        circuit = build()
        reference = DensityMatrixSimulator(seed=seed).run(circuit, shots=SHOTS).counts
        paths = {
            "statevector": StatevectorSimulator(seed=seed).run(circuit, shots=SHOTS).counts,
            "statevector_batch": counts_of(
                StatevectorSimulator(seed=seed).run_batch([build()], shots=SHOTS)[0]
            ),
            "density_batch": counts_of(
                DensityMatrixSimulator(seed=seed).run_batch([build()], shots=SHOTS)[0]
            ),
            "stabilizer": StabilizerSimulator(seed=seed).run(circuit, shots=SHOTS).counts,
        }
        for name, counts in paths.items():
            assert counts == reference, f"{name} diverged from the dense reference"

    def test_shared_rng_stream_stays_aligned_across_backends(self):
        # Interleaving runs on one generator: the stabilizer path consumes
        # exactly one multinomial per circuit, like the dense path, so a
        # shared stream stays in lockstep.
        circuits = [message_transfer(m) for m in ("00", "01", "10", "11")]
        rng_dense = np.random.default_rng(99)
        rng_stab = np.random.default_rng(99)
        dense = DensityMatrixSimulator()
        stab = StabilizerSimulator()
        for circuit in circuits:
            a = dense.run(circuit, shots=256, rng=rng_dense).counts
            b = stab.run(circuit, shots=256, rng=rng_stab).counts
            assert a == b


class TestPauliNoiseConformance:
    @pytest.mark.parametrize("build", NOISY_BATTERY)
    def test_analytic_stabilizer_bit_identical_to_dense(self, build):
        """The mask convolution computes the dense path's exact distribution.

        Equal probability vectors mean equal multinomial draws under a fixed
        seed, so even *noisy* counts agree bit for bit between the dense and
        analytic-stabilizer paths.
        """
        model = pauli_noise_model()
        circuit = build()
        dense = DensityMatrixSimulator(noise_model=model, seed=31).run(
            circuit, shots=SHOTS
        )
        stab = StabilizerSimulator(noise_model=model, seed=31).run(circuit, shots=SHOTS)
        assert stab.counts == dense.counts

    @pytest.mark.parametrize("build", NOISY_BATTERY)
    def test_trajectory_sampling_statistically_equivalent(self, build):
        """Per-shot Pauli trajectories agree with the analytic distribution.

        Different seeds on purpose: this is a genuine two-sample test of the
        noise unravelling, not an RNG-alignment identity.
        """
        model = pauli_noise_model()
        circuit = build()
        analytic = StabilizerSimulator(noise_model=model, seed=7).run(
            circuit, shots=4096
        )
        trajectory = StabilizerSimulator(noise_model=model, seed=8).run(
            circuit, shots=4096, method="trajectory"
        )
        assert analytic.metadata["stabilizer_mode"] == "analytic"
        assert trajectory.metadata["stabilizer_mode"] == "trajectory"
        assert_statistically_equivalent(analytic.counts, trajectory.counts)

    def test_dense_sequential_vs_batch_with_pauli_noise(self):
        model = pauli_noise_model()
        circuit = message_transfer("10", eta=80)
        simulator = DensityMatrixSimulator(noise_model=model)
        sequential = simulator.run(circuit, shots=SHOTS, rng=np.random.default_rng(3))
        batched = simulator.run_batch(
            [message_transfer("10", eta=80)], shots=SHOTS, rng=np.random.default_rng(3)
        )[0]
        assert sequential.counts == batched.counts


class TestBackendDispatchConformance:
    def test_auto_routes_ideal_device_to_stabilizer(self):
        backend = NoisyBackend(DeviceModel.ideal(2), seed=5)
        counts = backend.run(message_transfer("01"), shots=512)
        job = backend.jobs[-1]
        assert job.metadata["backend"] == "stabilizer"
        dense_backend = NoisyBackend(
            DeviceModel.ideal(2), seed=5, simulator_backend="dense"
        )
        dense_counts = dense_backend.run(message_transfer("01"), shots=512)
        assert dense_backend.jobs[-1].metadata["backend"] == "dense"
        assert dict(counts.items()) == dict(dense_counts.items())

    def test_auto_falls_back_for_thermal_relaxation_device(self):
        backend = NoisyBackend(DeviceModel.ibm_brisbane(), seed=5)
        backend.run(message_transfer("01"), shots=64)
        job = backend.jobs[-1]
        assert job.metadata["backend"] == "dense"
        assert "non-Pauli" in job.metadata["dispatch_reason"]

    def test_forced_stabilizer_raises_on_thermal_relaxation_device(self):
        from repro.exceptions import SimulationError

        backend = NoisyBackend(
            DeviceModel.ibm_brisbane(), seed=5, simulator_backend="stabilizer"
        )
        with pytest.raises(SimulationError, match="forced"):
            backend.run(message_transfer("01"), shots=64)

    def test_twirled_device_model_takes_fast_path_statistically(self):
        """Pauli-twirling ibm_brisbane is an explicit, documented approximation.

        The twirled model is stabilizer-eligible; its distribution agrees
        with the twirled model on the dense path (the twirl itself changes
        physics, so comparison is twirled-vs-twirled, never silent).
        """
        from repro.quantum.dispatch import pauli_twirl_noise_model

        model = pauli_twirl_noise_model(DeviceModel.ibm_brisbane().noise_model())
        circuit = message_transfer("00", eta=60)
        dense = DensityMatrixSimulator(noise_model=model, seed=11).run(
            circuit, shots=SHOTS
        )
        stab = StabilizerSimulator(noise_model=model, seed=11).run(circuit, shots=SHOTS)
        assert stab.counts == dense.counts


# -- batched-stabilizer conformance ----------------------------------------------------
class TestBatchedStabilizerConformance:
    """The vectorized batched backend reproduces the serial stabilizer path.

    Bit-identical counts across batch sizes {1, 7, 64} under three seeds: the
    batched analytic plan hoists the serial path's pure post-processing
    (readout fold, renormalize, key rendering) and draws the same single
    multinomial per circuit in submission order, so equal seeds mean equal
    histograms — including under Pauli noise and deep η-repeat chains.
    """

    def _battery_circuits(self, count: int, noisy: bool) -> list:
        battery = NOISY_BATTERY if noisy else NOISELESS_BATTERY
        builders = [param.values[0] for param in battery]
        return [builders[i % len(builders)]() for i in range(count)]

    @pytest.mark.parametrize("seed", [101, 202, 303])
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_noiseless_batches_bit_identical_to_serial(self, seed, batch_size):
        from repro.quantum.tableau_batch import BatchedStabilizerSimulator

        circuits = self._battery_circuits(batch_size, noisy=False)
        serial = StabilizerSimulator(seed=seed).run_batch(circuits, shots=SHOTS)
        batched = BatchedStabilizerSimulator(seed=seed).run_batch(circuits, shots=SHOTS)
        assert [r.counts for r in batched.results] == [
            r.counts for r in serial.results
        ]

    @pytest.mark.parametrize("seed", [101, 202, 303])
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_pauli_noise_batches_bit_identical_to_serial(self, seed, batch_size):
        from repro.quantum.tableau_batch import BatchedStabilizerSimulator

        model = pauli_noise_model()
        circuits = self._battery_circuits(batch_size, noisy=True)
        serial = StabilizerSimulator(noise_model=model, seed=seed).run_batch(
            circuits, shots=SHOTS
        )
        batched = BatchedStabilizerSimulator(noise_model=model, seed=seed).run_batch(
            circuits, shots=SHOTS
        )
        assert [r.counts for r in batched.results] == [
            r.counts for r in serial.results
        ]

    def test_eta_repeat_compression_parity(self):
        # Deep identity chains exercise the η-repeat compression on both
        # paths; the batched backend must agree bit for bit and with dense.
        from repro.quantum.tableau_batch import BatchedStabilizerSimulator

        model = pauli_noise_model()
        circuit = message_transfer("10", eta=120)
        dense = DensityMatrixSimulator(noise_model=model, seed=41).run(
            circuit, shots=SHOTS
        )
        batched = BatchedStabilizerSimulator(noise_model=model, seed=41).run(
            circuit, shots=SHOTS
        )
        assert batched.counts == dense.counts

    def test_batched_trajectory_statistically_equivalent(self):
        from repro.quantum.tableau_batch import BatchedStabilizerSimulator

        model = pauli_noise_model()
        circuit = reset_circuit()
        analytic = StabilizerSimulator(noise_model=model, seed=7).run(
            circuit, shots=4096
        )
        trajectory = BatchedStabilizerSimulator(noise_model=model, seed=8).run(
            circuit, shots=4096, method="trajectory"
        )
        assert trajectory.metadata["stabilizer_mode"] == "trajectory"
        assert_statistically_equivalent(analytic.counts, trajectory.counts)

    def test_auto_batch_routes_ideal_device_to_batched_backend(self):
        backend = NoisyBackend(DeviceModel.ideal(2), seed=5)
        circuits = [message_transfer(m) for m in ("00", "01", "10", "11")]
        counts = backend.run_batch(circuits, shots=512)
        for job in backend.jobs[-len(circuits):]:
            assert job.metadata["backend"] == "stabilizer_batched"
        dense_backend = NoisyBackend(
            DeviceModel.ideal(2), seed=5, simulator_backend="dense"
        )
        dense_counts = dense_backend.run_batch(
            [message_transfer(m) for m in ("00", "01", "10", "11")], shots=512
        )
        assert [dict(c.items()) for c in counts] == [
            dict(c.items()) for c in dense_counts
        ]

    def test_forced_batched_raises_on_non_clifford_circuit(self):
        from repro.exceptions import SimulationError
        from repro.quantum.dispatch import select_backend

        circuit = QuantumCircuit(1)
        circuit.t(0)
        circuit.measure_all()
        with pytest.raises(SimulationError, match="forced"):
            select_backend("stabilizer_batched", circuit, None)

    def test_forced_batched_raises_on_thermal_relaxation_device(self):
        from repro.exceptions import SimulationError

        backend = NoisyBackend(
            DeviceModel.ibm_brisbane(), seed=5, simulator_backend="stabilizer_batched"
        )
        with pytest.raises(SimulationError, match="forced"):
            backend.run(message_transfer("01"), shots=64)


# -- readout-error renormalization parity ----------------------------------------------
class TestReadoutRenormalizationParity:
    """All backends share one clip-to-renormalize helper for readout folding.

    The dense sampler, the stabilizer analytic sampler, and the batched plan
    all call :func:`renormalize_readout_probabilities`, so float-noise
    handling at the clip boundary cannot diverge between backends.
    """

    def test_helper_clips_negative_float_noise(self):
        from repro.quantum.simulator import renormalize_readout_probabilities

        probabilities = np.array([0.5, -1e-17, 0.5 - 1e-17])
        cleaned = renormalize_readout_probabilities(probabilities)
        assert (cleaned >= 0.0).all()
        assert cleaned.sum() == pytest.approx(1.0)
        assert cleaned[1] == 0.0

    def test_helper_rejects_all_nonpositive_distribution(self):
        from repro.exceptions import SimulationError
        from repro.quantum.simulator import renormalize_readout_probabilities

        with pytest.raises(SimulationError, match="empty distribution"):
            renormalize_readout_probabilities(np.array([0.0, -1e-18]))

    def test_extreme_asymmetric_readout_parity_across_backends(self):
        # An adversarially skewed confusion matrix stresses the clip-and-
        # renormalize path; all three exact backends must stay bit-identical.
        from repro.quantum.tableau_batch import BatchedStabilizerSimulator

        model = NoiseModel("extreme_readout")
        model.add_all_qubit_error(depolarizing_channel(0.004), "id")
        model.add_readout_error(ReadoutError(0.49, 0.002))
        circuit = message_transfer("11", eta=40)
        dense = DensityMatrixSimulator(noise_model=model, seed=17).run(
            circuit, shots=SHOTS
        )
        serial = StabilizerSimulator(noise_model=model, seed=17).run(
            circuit, shots=SHOTS
        )
        batched = BatchedStabilizerSimulator(noise_model=model, seed=17).run(
            circuit, shots=SHOTS
        )
        assert serial.counts == dense.counts
        assert batched.counts == dense.counts
