"""Unit tests for calibration records and the Counts container."""

from __future__ import annotations

import pytest

from repro.device.calibration import (
    DeviceCalibration,
    GateCalibration,
    IBM_BRISBANE_ID_DURATION,
    IBM_BRISBANE_ID_ERROR,
    IBM_BRISBANE_T1,
    IBM_BRISBANE_T2,
    QubitCalibration,
    ibm_brisbane_calibration,
)
from repro.device.counts import Counts
from repro.exceptions import DeviceError


class TestQubitCalibration:
    def test_valid_record(self):
        cal = QubitCalibration(t1=200e-6, t2=150e-6, readout_error=0.01)
        assert cal.t1 == 200e-6

    def test_rejects_negative_times(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1=-1.0, t2=1e-6)

    def test_rejects_unphysical_t2(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1=1e-6, t2=3e-6)

    def test_rejects_invalid_readout(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1=1e-4, t2=1e-4, readout_error=2.0)


class TestGateCalibration:
    def test_valid_record(self):
        cal = GateCalibration("id", 2.41e-4, 60e-9)
        assert cal.num_qubits == 1

    def test_rejects_invalid_error(self):
        with pytest.raises(DeviceError):
            GateCalibration("id", 1.5, 60e-9)

    def test_rejects_negative_duration(self):
        with pytest.raises(DeviceError):
            GateCalibration("id", 0.1, -1.0)


class TestDeviceCalibration:
    def test_ibm_brisbane_quotes_paper_values(self):
        cal = ibm_brisbane_calibration()
        assert cal.qubit_defaults.t1 == pytest.approx(IBM_BRISBANE_T1)
        assert cal.qubit_defaults.t2 == pytest.approx(IBM_BRISBANE_T2)
        identity = cal.gate("id")
        assert identity.error == pytest.approx(IBM_BRISBANE_ID_ERROR)
        assert identity.duration == pytest.approx(IBM_BRISBANE_ID_DURATION)

    def test_per_qubit_override(self):
        cal = ibm_brisbane_calibration()
        special = QubitCalibration(t1=100e-6, t2=90e-6)
        cal.set_qubit(5, special)
        assert cal.qubit(5).t1 == pytest.approx(100e-6)
        assert cal.qubit(0).t1 == pytest.approx(IBM_BRISBANE_T1)

    def test_unknown_gate_raises(self):
        with pytest.raises(DeviceError):
            ibm_brisbane_calibration().gate("toffoli")

    def test_has_gate(self):
        cal = ibm_brisbane_calibration()
        assert cal.has_gate("cx")
        assert not cal.has_gate("toffoli")

    def test_eplg_order_of_magnitude(self):
        # With a ~0.7 % two-qubit error the homogeneous EPLG estimate is of
        # the same order as the 4.5 %-per-layer figure quoted for 100 qubits.
        eplg = ibm_brisbane_calibration().eplg(100)
        assert 1e-3 < eplg < 1e-1

    def test_eplg_requires_two_qubits(self):
        with pytest.raises(DeviceError):
            ibm_brisbane_calibration().eplg(1)

    def test_eplg_requires_two_qubit_gate(self):
        cal = DeviceCalibration(qubit_defaults=QubitCalibration(t1=1e-4, t2=1e-4))
        with pytest.raises(DeviceError):
            cal.eplg(10)


class TestCounts:
    def test_total_and_probabilities(self):
        counts = Counts({"00": 900, "11": 100})
        assert counts.shots == 1000
        assert counts.total() == 1000
        assert counts.probabilities()["00"] == pytest.approx(0.9)

    def test_explicit_shots_allows_lost_outcomes(self):
        counts = Counts({"00": 50}, shots=100)
        assert counts.outcome_probability("00") == pytest.approx(0.5)

    def test_shots_smaller_than_counts_rejected(self):
        with pytest.raises(DeviceError):
            Counts({"0": 10}, shots=5)

    def test_negative_counts_rejected(self):
        with pytest.raises(DeviceError):
            Counts({"0": -1})

    def test_zero_counts_are_dropped(self):
        counts = Counts({"00": 10, "01": 0})
        assert "01" not in counts
        assert len(counts) == 1

    def test_most_frequent(self):
        assert Counts({"00": 957, "01": 40, "10": 25, "11": 2}).most_frequent() == "00"

    def test_most_frequent_empty_raises(self):
        with pytest.raises(DeviceError):
            Counts({}).most_frequent()

    def test_accuracy_and_error_rate(self):
        counts = Counts({"00": 957, "01": 40, "10": 25, "11": 2})
        assert counts.accuracy("00") == pytest.approx(957 / 1024)
        assert counts.error_rate("00") == pytest.approx(1 - 957 / 1024)

    def test_fidelity_to_ideal_distribution(self):
        counts = Counts({"00": 957, "01": 40, "10": 25, "11": 2})
        fidelity = counts.fidelity({"00": 1.0})
        assert fidelity == pytest.approx(957 / 1024)
        assert counts.fidelity(counts) == pytest.approx(1.0)

    def test_fidelity_rejects_empty_reference(self):
        with pytest.raises(DeviceError):
            Counts({"0": 1}).fidelity({})

    def test_hellinger_distance_bounds(self):
        same = Counts({"0": 10})
        assert same.hellinger_distance(same) == pytest.approx(0.0)
        disjoint = Counts({"1": 10})
        assert same.hellinger_distance(disjoint) == pytest.approx(1.0)

    def test_marginal(self):
        counts = Counts({"00": 10, "01": 20, "11": 30})
        marginal = counts.marginal([1])
        assert marginal.get("0") == 10
        assert marginal.get("1") == 50

    def test_marginal_position_out_of_range(self):
        with pytest.raises(DeviceError):
            Counts({"0": 5}).marginal([3])

    def test_merged_with(self):
        merged = Counts({"0": 5}).merged_with(Counts({"0": 2, "1": 3}))
        assert merged.get("0") == 7
        assert merged.shots == 10

    def test_mapping_interface(self):
        counts = Counts({"0": 5, "1": 2})
        assert dict(counts) == {"0": 5, "1": 2}
        assert counts.get("missing") == 0
