"""Unit tests for DeviceModel and NoisyBackend."""

from __future__ import annotations

import pytest

from repro.device.backend import NoisyBackend
from repro.device.calibration import ibm_brisbane_calibration
from repro.device.device_model import DeviceModel
from repro.device.topology import linear_coupling_map
from repro.exceptions import DeviceError
from repro.quantum.circuit import QuantumCircuit


def bell_circuit() -> QuantumCircuit:
    qc = QuantumCircuit(2, name="bell")
    qc.h(0).cx(0, 1).measure_all()
    return qc


class TestDeviceModel:
    def test_ibm_brisbane_preset(self):
        device = DeviceModel.ibm_brisbane()
        assert device.num_qubits == 127
        assert not device.is_ideal()
        assert device.metadata["processor"] == "Eagle r3"

    def test_ideal_preset(self):
        device = DeviceModel.ideal(3)
        assert device.is_ideal()
        assert device.noise_model().is_ideal()
        assert device.gate_error("id") == 0.0
        assert device.gate_duration("id") == 0.0

    def test_linear_chain_preset(self):
        device = DeviceModel.linear_chain(10)
        assert device.num_qubits == 10
        assert device.supports_coupling(3, 4)
        assert not device.supports_coupling(0, 5)

    def test_coupling_map_size_mismatch_rejected(self):
        with pytest.raises(DeviceError):
            DeviceModel(name="bad", num_qubits=3, coupling_map=linear_coupling_map(5))

    def test_needs_at_least_one_qubit(self):
        with pytest.raises(DeviceError):
            DeviceModel(name="bad", num_qubits=0)

    def test_validate_qubits(self):
        device = DeviceModel.ideal(2)
        device.validate_qubits([0, 1])
        with pytest.raises(DeviceError):
            device.validate_qubits([2])

    def test_qubit_calibration_lookup(self):
        device = DeviceModel.ibm_brisbane()
        assert device.qubit_calibration(0).t1 == pytest.approx(233.04e-6)

    def test_qubit_calibration_on_ideal_device_raises(self):
        with pytest.raises(DeviceError):
            DeviceModel.ideal(1).qubit_calibration(0)

    def test_noise_model_includes_identity_and_readout(self):
        model = DeviceModel.ibm_brisbane().noise_model()
        assert "id" in model.noisy_gate_names
        assert model.has_readout_error()

    def test_thermal_relaxation_toggle(self):
        with_relax = DeviceModel.ibm_brisbane(include_thermal_relaxation=True)
        without_relax = DeviceModel.ibm_brisbane(include_thermal_relaxation=False)
        errors_with = len(with_relax.noise_model().errors_for("id", [0]))
        errors_without = len(without_relax.noise_model().errors_for("id", [0]))
        assert errors_with == errors_without + 1

    def test_gate_error_lookup(self):
        device = DeviceModel.ibm_brisbane()
        assert device.gate_error("id") == pytest.approx(2.41e-4)
        assert device.gate_duration("id") == pytest.approx(60e-9)


class TestNoisyBackend:
    def test_ideal_backend_gives_perfect_bell_correlations(self):
        backend = NoisyBackend(DeviceModel.ideal(2), seed=1)
        counts = backend.run(bell_circuit(), shots=2000)
        assert set(counts) <= {"00", "11"}
        assert not backend.is_noisy()

    def test_brisbane_backend_is_noisy_but_dominated_by_correct_outcomes(self):
        backend = NoisyBackend(DeviceModel.ibm_brisbane(), seed=2)
        counts = backend.run(bell_circuit(), shots=2000)
        assert backend.is_noisy()
        correct = counts.get("00", 0) + counts.get("11", 0)
        assert correct / counts.shots > 0.9

    def test_default_device_is_brisbane(self):
        assert NoisyBackend(seed=0).name == "ibm_brisbane"

    def test_rejects_oversized_circuit(self):
        backend = NoisyBackend(DeviceModel.ideal(1), seed=0)
        with pytest.raises(DeviceError):
            backend.run(bell_circuit())

    def test_jobs_are_recorded(self):
        backend = NoisyBackend(DeviceModel.ideal(2), seed=3)
        backend.run(bell_circuit(), shots=10)
        backend.run(bell_circuit(), shots=20)
        assert len(backend.jobs) == 2
        assert backend.jobs[0].shots == 10
        assert backend.jobs[1].circuit_name == "bell"

    def test_circuit_duration_counts_identity_gates(self):
        backend = NoisyBackend(DeviceModel.ibm_brisbane(), seed=4)
        qc = QuantumCircuit(1)
        for _ in range(10):
            qc.id(0)
        assert backend.circuit_duration(qc) == pytest.approx(10 * 60e-9)

    def test_circuit_duration_zero_on_ideal_device(self):
        backend = NoisyBackend(DeviceModel.ideal(1), seed=5)
        qc = QuantumCircuit(1)
        qc.id(0)
        assert backend.circuit_duration(qc) == 0.0

    def test_final_density_matrix(self):
        backend = NoisyBackend(DeviceModel.ideal(2), seed=6)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dm = backend.final_density_matrix(qc)
        assert dm.purity() == pytest.approx(1.0)

    def test_run_result_exposes_density_matrix(self):
        backend = NoisyBackend(DeviceModel.ideal(2), seed=7)
        result = backend.run_result(bell_circuit(), shots=16)
        assert result.density_matrix is not None
        assert sum(result.counts.values()) == 16

    def test_seeded_reproducibility(self):
        counts_a = NoisyBackend(DeviceModel.ibm_brisbane(), seed=11).run(bell_circuit(), shots=256)
        counts_b = NoisyBackend(DeviceModel.ibm_brisbane(), seed=11).run(bell_circuit(), shots=256)
        assert dict(counts_a) == dict(counts_b)

    def test_linear_chain_calibration_override(self):
        device = DeviceModel.linear_chain(5, calibration=ibm_brisbane_calibration())
        backend = NoisyBackend(device, seed=8)
        assert backend.is_noisy()
