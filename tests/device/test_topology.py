"""Unit tests for the heavy-hex and linear coupling maps."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.device.topology import (
    EAGLE_NUM_QUBITS,
    coupling_distance,
    coupling_path,
    heavy_hex_coupling_map,
    linear_coupling_map,
)
from repro.exceptions import DeviceError


class TestHeavyHex:
    @pytest.fixture(scope="class")
    def graph(self) -> nx.Graph:
        return heavy_hex_coupling_map()

    def test_has_127_qubits(self, graph):
        assert graph.number_of_nodes() == EAGLE_NUM_QUBITS == 127

    def test_has_144_couplings(self, graph):
        assert graph.number_of_edges() == 144

    def test_is_connected(self, graph):
        assert nx.is_connected(graph)

    def test_max_degree_is_three(self, graph):
        degrees = [degree for _, degree in graph.degree()]
        assert max(degrees) == 3
        assert min(degrees) >= 1

    def test_bridge_qubits_have_degree_two(self, graph):
        bridges = [n for n, data in graph.nodes(data=True) if data["kind"] == "bridge"]
        assert len(bridges) == 24
        assert all(graph.degree(b) == 2 for b in bridges)

    def test_row_zero_chain(self, graph):
        # Qubits 0..13 form the first row and are chained consecutively.
        for left in range(13):
            assert graph.has_edge(left, left + 1)

    def test_known_bridge_edges(self, graph):
        # The first bridge (qubit 14) links qubit 0 (row 0) and qubit 18 (row 1),
        # matching IBM's published Eagle numbering.
        assert graph.has_edge(14, 0)
        assert graph.has_edge(14, 18)

    def test_nodes_are_labelled(self, graph):
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"row", "bridge"}


class TestLinearChain:
    def test_chain_structure(self):
        graph = linear_coupling_map(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)

    def test_single_qubit_chain(self):
        graph = linear_coupling_map(1)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0

    def test_rejects_empty_chain(self):
        with pytest.raises(DeviceError):
            linear_coupling_map(0)


class TestDistanceHelpers:
    def test_distance_on_chain(self):
        graph = linear_coupling_map(10)
        assert coupling_distance(graph, 0, 9) == 9
        assert coupling_distance(graph, 4, 4) == 0

    def test_path_on_chain(self):
        graph = linear_coupling_map(4)
        assert coupling_path(graph, 0, 3) == [0, 1, 2, 3]

    def test_distance_on_heavy_hex(self):
        graph = heavy_hex_coupling_map()
        # Qubit 0 to qubit 18 goes through bridge 14.
        assert coupling_distance(graph, 0, 18) == 2
        assert coupling_path(graph, 0, 18) == [0, 14, 18]

    def test_unknown_node_raises(self):
        graph = linear_coupling_map(3)
        with pytest.raises(DeviceError):
            coupling_distance(graph, 0, 99)
