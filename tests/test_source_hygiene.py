"""Source hygiene lint: library code must log via ``repro.utils.logging``.

Two rules, enforced over every module under ``src/repro/`` by walking the
AST (so docstrings and comments never false-positive):

* no ``print(...)`` calls — CLI entry points are the only place the library
  writes to stdout, everything else goes through the logging satellite;
* no bare ``logging.getLogger(...)`` — loggers must come from
  :func:`repro.utils.logging.get_logger` so they nest under the library
  namespace and pick up the trace-id filter.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

# Modules allowed to print (user-facing CLIs) or to call logging.getLogger
# (the logging helper itself).
PRINT_ALLOWED = ("cli.py", "__main__.py")
GETLOGGER_ALLOWED = (str(Path("utils") / "logging.py"),)


def _module_paths() -> list[Path]:
    return sorted(SRC_ROOT.rglob("*.py"))


def _call_violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    relative = str(path.relative_to(SRC_ROOT))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "print"
            and not relative.endswith(PRINT_ALLOWED)
        ):
            violations.append(f"{relative}:{node.lineno}: print() call")
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "getLogger"
            and isinstance(func.value, ast.Name)
            and func.value.id == "logging"
            and relative not in GETLOGGER_ALLOWED
        ):
            violations.append(
                f"{relative}:{node.lineno}: bare logging.getLogger() "
                "(use repro.utils.logging.get_logger)"
            )
    return violations


def test_source_tree_is_nontrivial():
    assert len(_module_paths()) > 25


def test_no_print_calls_and_no_bare_getlogger_in_library_code():
    violations = [
        violation
        for path in _module_paths()
        for violation in _call_violations(path)
    ]
    assert not violations, "\n".join(violations)
