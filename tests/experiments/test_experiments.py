"""Tests for the experiment harnesses (quick-sized reproductions of each artefact)."""

from __future__ import annotations

import pytest

from repro.device.device_model import DeviceModel
from repro.exceptions import ExperimentError
from repro.experiments import (
    PAPER_FIG2_COUNTS,
    build_message_transfer_circuit,
    decode_counts_to_messages,
    default_eta_sweep,
    get_experiment,
    list_experiments,
    render_result,
    run_experiment,
    run_fig2,
    run_fig3,
    run_table1,
)
from repro.device.counts import Counts
from repro.experiments.cli import main as cli_main
from repro.experiments.e2e import run_end_to_end
from repro.experiments.chsh_baseline import run_chsh_experiment


class TestEmulationCircuit:
    def test_circuit_structure(self):
        circuit = build_message_transfer_circuit("10", eta=10)
        ops = circuit.count_ops()
        assert ops["id"] == 10
        assert ops["cx"] == 2  # EPR preparation + Bell measurement
        assert ops["h"] == 2
        assert ops["x"] == 1
        assert ops["measure"] == 1

    def test_identity_message_still_idles_once(self):
        circuit = build_message_transfer_circuit("00", eta=0)
        assert circuit.count_ops()["id"] == 1

    def test_invalid_message_length(self):
        with pytest.raises(ExperimentError):
            build_message_transfer_circuit("101", eta=1)

    def test_invalid_eta(self):
        with pytest.raises(ExperimentError):
            build_message_transfer_circuit("00", eta=-1)

    @pytest.mark.parametrize("message", ["00", "01", "10", "11"])
    def test_ideal_decoding_recovers_message(self, message):
        from repro.device.backend import NoisyBackend
        from repro.experiments.emulation import run_message_transfer

        backend = NoisyBackend(DeviceModel.ideal(2), seed=3)
        decoded = run_message_transfer(message, eta=5, backend=backend, shots=128)
        assert decoded == {message: 128}

    def test_decode_counts_rejects_wrong_width(self):
        with pytest.raises(ExperimentError):
            decode_counts_to_messages(Counts({"000": 5}))


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self):
        return run_fig2(shots=512, seed=7)

    def test_four_panels(self, fig2):
        assert [panel.message for panel in fig2.panels] == ["00", "01", "10", "11"]

    def test_dominant_outcome_matches_encoded_message(self, fig2):
        for panel in fig2.panels:
            assert max(panel.counts, key=panel.counts.get) == panel.message
            assert panel.accuracy > 0.85

    def test_average_fidelity_close_to_paper(self, fig2):
        # The paper reports ≥ 0.95; the paper's own histograms correspond to
        # ≈ 0.94 dominant-outcome probability, which is what we compare against.
        assert fig2.average_fidelity > 0.9

    def test_counts_sum_to_shots(self, fig2):
        for panel in fig2.panels:
            assert sum(panel.counts.values()) == panel.shots == 512

    def test_panel_lookup(self, fig2):
        assert fig2.panel("01").message == "01"
        with pytest.raises(ExperimentError):
            fig2.panel("22")

    def test_paper_reference_counts_have_same_shape(self, fig2):
        # The paper's own Fig. 2 counts are dominated by the encoded message in
        # every panel; our reproduction must agree panel by panel.
        for message, paper_counts in PAPER_FIG2_COUNTS.items():
            assert max(paper_counts, key=paper_counts.get) == message
            assert max(fig2.panel(message).counts, key=fig2.panel(message).counts.get) == message

    def test_ideal_device_gives_perfect_accuracy(self):
        result = run_fig2(shots=128, device=DeviceModel.ideal(2), seed=1)
        assert result.minimum_accuracy == pytest.approx(1.0)
        assert result.average_fidelity == pytest.approx(1.0)

    def test_invalid_shots(self):
        with pytest.raises(ExperimentError):
            run_fig2(shots=0)

    def test_render(self, fig2):
        text = render_result(fig2)
        assert "Figure 2" in text
        assert "average fidelity" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(
            etas=[10, 200, 500, 700, 1200, 2000],
            shots=192,
            messages=("00", "11"),
            seed=5,
        )

    def test_sweep_covers_requested_etas(self, fig3):
        assert fig3.etas == [10, 200, 500, 700, 1200, 2000]

    def test_accuracy_decays_with_channel_length(self, fig3):
        assert fig3.is_monotonically_decreasing(tolerance=0.08)
        assert fig3.points[0].accuracy > 0.85
        assert fig3.points[-1].accuracy < fig3.points[0].accuracy - 0.2

    def test_duration_matches_sixty_nanoseconds_per_gate(self, fig3):
        for point in fig3.points:
            assert point.duration == pytest.approx(point.eta * 60e-9)

    def test_crossing_is_in_the_several_hundred_to_thousand_gate_regime(self, fig3):
        crossing = fig3.crossing(threshold=0.6)
        assert crossing is not None
        assert 400 < crossing < 2000

    def test_decay_fit_produces_positive_constant(self, fig3):
        fit = fig3.decay_fit()
        assert fit["eta0"] > 100
        assert fit["rms_residual"] < 0.1

    def test_default_eta_sweep_range(self):
        sweep = default_eta_sweep()
        assert sweep[0] == 10
        assert sweep[-1] == 700
        assert len(sweep) >= 20

    def test_default_eta_sweep_validation(self):
        with pytest.raises(ExperimentError):
            default_eta_sweep(start=100, stop=50)

    def test_gate_error_multiplier_accelerates_decay(self):
        mild = run_fig3(etas=[400], shots=192, messages=("00",), seed=9)
        harsh = run_fig3(
            etas=[400], shots=192, messages=("00",), seed=9, gate_error_multiplier=5.0
        )
        assert harsh.points[0].accuracy < mild.points[0].accuracy

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            run_fig3(shots=0)
        with pytest.raises(ExperimentError):
            run_fig3(messages=())


class TestTable1Experiment:
    def test_static_table(self):
        result = run_table1(functional=False)
        assert len(result.features) == 5
        assert result.only_proposed_has_authentication
        assert "Proposed protocol" in result.rendered

    def test_row_lookup(self):
        result = run_table1(functional=False)
        assert result.row("Zhou et al. 2020").user_authentication is False
        with pytest.raises(KeyError):
            result.row("unknown")

    def test_functional_comparison_runs_all_protocols(self):
        result = run_table1(functional=True, message="10110011", check_pairs=64, seed=3)
        assert result.functional is not None
        assert len(result.functional.baseline_results) == 4
        assert "Functional backing runs" in render_result(result)


class TestSecurityExperiments:
    def test_chsh_experiment_convergence(self):
        result = run_chsh_experiment(
            pair_budgets=(64, 256), repetitions=6, eta=10, eta_sweep=(0, 700, 2000), seed=2
        )
        assert len(result.convergence) == 2
        small, large = result.convergence
        # More pairs -> smaller spread, mean near 2√2, high pass rate.
        assert large.empirical_standard_deviation <= small.empirical_standard_deviation + 0.05
        assert large.mean_value == pytest.approx(2.8, abs=0.15)
        assert large.pass_rate > 0.9
        assert result.max_di_channel_length is not None
        assert "DI security check" in render_result(result)

    def test_chsh_experiment_validation(self):
        with pytest.raises(ExperimentError):
            run_chsh_experiment(repetitions=1)
        with pytest.raises(ExperimentError):
            run_chsh_experiment(pair_budgets=(0,), repetitions=3)

    def test_end_to_end_experiment(self):
        result = run_end_to_end(num_sessions=2, message_length=8, check_pairs=64, seed=4)
        assert result.ideal_delivery_rate >= 0.5
        assert result.mean_chsh_round1 > 2.0
        assert "End-to-end protocol" in render_result(result)

    def test_end_to_end_validation(self):
        with pytest.raises(ExperimentError):
            run_end_to_end(num_sessions=0)


class TestRegistryAndCli:
    def test_all_paper_artifacts_are_registered(self):
        ids = {experiment.experiment_id for experiment in list_experiments()}
        assert {"table1", "fig2", "fig3", "sec-chsh", "attacks",
                "atk-impersonation-sweep", "atk-leakage", "e2e"} <= ids

    def test_get_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_run_experiment_quick(self):
        result = run_experiment("table1", quick=True, functional=False)
        assert result.only_proposed_has_authentication

    def test_cli_list(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "Table I" in output

    def test_cli_run(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_cli_interrupted_run_still_flushes_artifact(self, tmp_path, capsys):
        """A SIGINT mid-run exits 130 but still writes the run's artifact."""
        import os
        import signal
        import threading

        from repro.runtime import interrupt as runtime_interrupt

        artifact_path = tmp_path / "fig_load.json"
        # Deliver SIGINT shortly after the run starts; the CLI's graceful
        # handler turns it into a drain request the load harness honours.
        timer = threading.Timer(0.2, os.kill, (os.getpid(), signal.SIGINT))
        timer.start()
        try:
            code = cli_main(
                ["run", "fig_load", "--artifact", str(artifact_path)]
            )
        finally:
            timer.cancel()
            runtime_interrupt.reset_shutdown()
        assert code in (0, 130)  # 0 if the run finished before the signal
        assert artifact_path.exists()
        from repro.artifacts.schema import RunArtifact

        assert RunArtifact.read(artifact_path).experiment_id == "fig_load"
