"""Tests for the ``fig_sla`` SLA-under-dynamics experiment."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.fig_sla import (
    DEFAULT_PRIORITY_MIX,
    SLAStudyResult,
    run_fig_sla,
    sla_artifact_metrics,
)
from repro.experiments.registry import get_experiment
from repro.experiments.report import render_result

QUICK = dict(
    num_sessions=16,
    loads=(0.6, 2.5),
    profiles=("static", "drift_outage"),
    check_pairs=16,
)


@pytest.fixture(scope="module")
def result() -> SLAStudyResult:
    return run_fig_sla(**QUICK)


class TestRunFigSla:
    def test_covers_the_sweep_grid(self, result):
        assert len(result.points) == len(QUICK["loads"]) * len(QUICK["profiles"])
        for profile in QUICK["profiles"]:
            for load in QUICK["loads"]:
                point = result.point(profile, load)
                assert point.result.num_sessions == QUICK["num_sessions"]
                assert point.horizon > 0
        with pytest.raises(ExperimentError):
            result.point("static", 99.0)

    def test_rates_scale_with_load(self, result):
        assert result.base_rate > 0
        for point in result.points:
            assert point.rate == pytest.approx(point.load * result.base_rate)

    def test_goodput_curve_in_load_order(self, result):
        curve = result.goodput_curve("static")
        assert [load for load, _ in curve] == list(QUICK["loads"])
        assert all(goodput >= 0 for _, goodput in curve)

    def test_knee_is_a_swept_load(self, result):
        for profile in QUICK["profiles"]:
            assert result.goodput_knee(profile) in QUICK["loads"]
        with pytest.raises(ExperimentError):
            result.goodput_knee("missing")

    def test_priority_mix_reaches_the_traffic(self, result):
        priorities = {
            record.priority
            for point in result.points
            for record in point.result.records
        }
        assert priorities <= set(DEFAULT_PRIORITY_MIX)
        assert len(priorities) > 1  # the mix actually produced several classes

    def test_dynamic_profile_disturbs_the_network(self, result):
        """The drift_outage cells must show dynamics at work somewhere."""
        disturbed = sum(
            point.result.reroute_count
            + sum(
                1
                for record in point.result.records
                if record.abort_reason == "outage_timeout"
            )
            for point in result.points
            if point.profile == "drift_outage"
        )
        assert disturbed > 0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_fig_sla(num_sessions=0)
        with pytest.raises(ExperimentError):
            run_fig_sla(loads=())
        with pytest.raises(ExperimentError):
            run_fig_sla(profiles=("stormy",))


class TestDeterminism:
    @pytest.mark.parametrize("seed", [13, 29, 47])
    def test_serial_and_thread_metrics_identical(self, seed):
        kwargs = dict(QUICK, num_sessions=10, loads=(0.8, 2.0), seed=seed)
        serial = run_fig_sla(executor="serial", **kwargs)
        threaded = run_fig_sla(executor="thread", **kwargs)
        assert json.dumps(
            sla_artifact_metrics(serial), sort_keys=True
        ) == json.dumps(sla_artifact_metrics(threaded), sort_keys=True)

    def test_rerun_is_byte_identical(self, result):
        again = run_fig_sla(**QUICK)
        assert json.dumps(sla_artifact_metrics(again), sort_keys=True) == json.dumps(
            sla_artifact_metrics(result), sort_keys=True
        )


class TestArtifactMetrics:
    def test_expected_keys_present(self, result):
        metrics = sla_artifact_metrics(result)
        assert metrics["num_sessions"] == QUICK["num_sessions"]
        for profile in QUICK["profiles"]:
            assert metrics[f"{profile}_knee_load"] in QUICK["loads"]
            for load in QUICK["loads"]:
                prefix = f"{profile}_load{load:g}"
                assert f"{prefix}_delivered" in metrics
                assert f"{prefix}_goodput_bits_per_s" in metrics
                assert f"{prefix}_reroutes" in metrics

    def test_metrics_are_json_serialisable(self, result):
        json.dumps(sla_artifact_metrics(result))


class TestRegistryAndReport:
    def test_registered(self):
        experiment = get_experiment("fig_sla")
        assert experiment.quick_kwargs["profiles"] == ("static", "drift_outage")

    def test_render(self, result):
        text = render_result(result)
        assert "fig_sla" in text or "SLA" in text
        for profile in QUICK["profiles"]:
            assert profile in text
        assert "knee" in text
