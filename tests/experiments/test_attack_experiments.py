"""Tests for the attack-simulation experiment harness (reduced sizes)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.attack_simulations import (
    run_attack_simulations,
    run_impersonation_sweep,
)
from repro.experiments.report import render_result


class TestAttackSimulations:
    @pytest.fixture(scope="class")
    def simulations(self):
        return run_attack_simulations(
            trials=3,
            identity_pairs=6,
            check_pairs=64,
            message="10110010",
            include_leakage=True,
            leakage_sessions=3,
            seed=41,
        )

    def test_all_scenarios_present(self, simulations):
        assert set(simulations.evaluations) == {
            "honest",
            "impersonation_alice",
            "impersonation_bob",
            "intercept_resend",
            "man_in_the_middle",
            "entangle_measure",
        }

    def test_honest_sessions_mostly_succeed(self, simulations):
        honest = simulations.evaluations["honest"]
        assert honest.messages_delivered >= 2
        assert honest.detection_rate <= 1 / 3

    def test_every_active_attack_is_detected(self, simulations):
        assert simulations.all_active_attacks_detected(minimum_rate=0.99)
        for name, evaluation in simulations.evaluations.items():
            if name == "honest":
                continue
            assert evaluation.messages_delivered == 0, name

    def test_channel_attacks_drive_chsh_or_authentication_failures(self, simulations):
        mitm = simulations.evaluations["man_in_the_middle"]
        assert set(mitm.abort_reasons) <= {
            "round2_chsh_failed",
            "bob_authentication_failed",
            "alice_authentication_failed",
        }
        impersonation = simulations.evaluations["impersonation_bob"]
        assert impersonation.abort_reasons.get("bob_authentication_failed", 0) == impersonation.trials

    def test_leakage_report_included(self, simulations):
        assert simulations.leakage is not None
        assert not simulations.leakage.message_outcomes_announced

    def test_render(self, simulations):
        text = render_result(simulations)
        assert "detection rate" in text
        assert "man_in_the_middle" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_attack_simulations(trials=0)


class TestImpersonationSweep:
    def test_detection_tracks_theoretical_curve(self):
        sweep = run_impersonation_sweep(
            identity_lengths=(1, 4), trials=24, check_pairs=32, seed=13
        )
        assert len(sweep) == 2
        short, long = sweep
        assert short.theoretical_detection_probability == pytest.approx(0.75)
        assert long.theoretical_detection_probability == pytest.approx(1 - 0.25**4)
        # Empirical rates should be within a few standard errors of theory.
        assert short.empirical_detection_rate == pytest.approx(0.75, abs=0.25)
        assert long.empirical_detection_rate > 0.9
        assert render_result(sweep).count("l=") == 2

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_impersonation_sweep(trials=0)
