"""Tests for the ``fig_load`` sustained-load experiment."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.fig_load import LoadStudyResult, load_artifact_metrics, run_fig_load
from repro.experiments.registry import get_experiment
from repro.experiments.report import render_result

QUICK = dict(messages=400, queue_capacity=48, calibration_sends=4)


@pytest.fixture(scope="module")
def result() -> LoadStudyResult:
    return run_fig_load(**QUICK)


class TestRunFigLoad:
    def test_covers_the_policy_matrix(self, result):
        names = [name for name, _ in result.scenarios]
        assert names == ["steady_block", "overload_reject", "burst_shed", "closed_loop"]
        assert result.scenario("overload_reject").policy == "reject"
        assert result.scenario("burst_shed").policy == "shed_oldest"
        with pytest.raises(ExperimentError):
            result.scenario("missing")

    def test_total_offered_counts_all_scenarios(self, result):
        assert result.total_offered == 4 * QUICK["messages"]

    def test_steady_scenario_drops_nothing(self, result):
        steady = result.scenario("steady_block")
        assert steady.dropped == 0
        assert steady.delivered + steady.aborted == QUICK["messages"]

    def test_overload_scenarios_exercise_backpressure(self, result):
        assert result.scenario("overload_reject").rejected > 0
        assert result.scenario("burst_shed").shed > 0

    def test_calibration_feeds_the_model(self, result):
        calibration = result.calibration
        assert calibration["sends"] == QUICK["calibration_sends"]
        assert 0.0 <= calibration["abort_probability"] <= 1.0
        assert calibration["wall_total_time"] > 0

    def test_rerun_is_deterministic(self, result):
        again = run_fig_load(**QUICK)
        assert json.dumps(load_artifact_metrics(again), sort_keys=True) == json.dumps(
            load_artifact_metrics(result), sort_keys=True
        )

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_fig_load(messages=0)
        with pytest.raises(ExperimentError):
            run_fig_load(workers=0)


class TestArtifactMetrics:
    def test_metrics_are_flat_scalars_without_wall_clock(self, result):
        metrics = load_artifact_metrics(result)
        assert metrics["total_offered"] == 4 * QUICK["messages"]
        assert not any(key.startswith("wall") or "wall_" in key for key in metrics)
        for key, value in metrics.items():
            assert isinstance(value, (int, float, str)), key

    def test_percentiles_reported_per_scenario(self, result):
        metrics = load_artifact_metrics(result)
        for scenario in ("steady_block", "overload_reject", "burst_shed", "closed_loop"):
            for stat in ("latency_p50", "latency_p95", "latency_p99", "latency_p999"):
                assert f"{scenario}_{stat}" in metrics
        assert metrics["steady_block_dropped"] == 0


class TestRegistration:
    def test_registered_with_quick_kwargs(self):
        experiment = get_experiment("fig_load")
        assert experiment.quick_kwargs["messages"] >= 2500  # ≥10⁴ over 4 scenarios
        assert experiment.runner is run_fig_load

    def test_renderer_mentions_every_scenario(self, result):
        rendered = render_result(result)
        assert "Sustained-load study" in rendered
        for name in ("steady_block", "overload_reject", "burst_shed", "closed_loop"):
            assert name in rendered
