"""Tests for the ``fig_security`` scenario-grid experiment."""

import pytest

from repro.experiments.fig_security import (
    DEFAULT_PRESETS,
    SecurityStudyResult,
    run_fig_security,
)
from repro.experiments.registry import get_experiment
from repro.experiments.report import render_result

QUICK = dict(trials=4, check_pairs=32, identity_pairs=4, strengths=(0.5, 1.0))


@pytest.fixture(scope="module")
def quick_study() -> SecurityStudyResult:
    return run_fig_security(seed=42, **QUICK)


class TestFigSecurity:
    def test_registered_with_quick_kwargs(self):
        experiment = get_experiment("fig_security")
        assert experiment.quick_kwargs["trials"] <= 10
        assert experiment.paper_artifact.startswith("Section III")

    def test_grid_covers_sweeps_and_presets(self, quick_study):
        names = {point.name for point in quick_study.points}
        for strategy in ("intercept_resend", "entangle_measure",
                         "man_in_the_middle", "source_tamper"):
            assert f"{strategy}@0.5" in names
            assert f"{strategy}@1" in names
        for preset in DEFAULT_PRESETS:
            assert preset in names

    def test_runs_on_stabilizer_engine_for_pauli_channel(self, quick_study):
        assert quick_study.channel_name.startswith("depolarizing")
        assert quick_study.simulator_backend == "stabilizer"

    def test_non_pauli_channel_falls_back_to_auto(self):
        study = run_fig_security(
            seed=42, trials=2, check_pairs=16, identity_pairs=2,
            strengths=(1.0,), presets=(), channel="eta", noise=10,
        )
        assert study.simulator_backend == "auto"

    def test_seed_deterministic(self, quick_study):
        again = run_fig_security(seed=42, **QUICK)
        assert again.summary() == quick_study.summary()

    def test_executor_independent(self, quick_study):
        threaded = run_fig_security(seed=42, executor="thread", **QUICK)
        assert threaded.summary() == quick_study.summary()

    def test_full_strength_attacks_detected(self, quick_study):
        assert quick_study.all_full_strength_attacks_detected()
        for name in ("intercept_resend@1", "entangle_measure@1",
                     "man_in_the_middle@1", "source_tamper@1"):
            point = quick_study.point(name)
            assert point.detection_rate == 1.0, name
            assert point.sessions_for_95_detection == 1

    def test_passive_classical_undetectable(self, quick_study):
        # The passive tap adds nothing to the honest abort behaviour: its
        # sessions abort only through the same finite-sample noise (its grid
        # point runs under its own derived seed, so the small-sample rates
        # need not match the honest baseline exactly).
        point = quick_study.point("classical_passive")
        assert point.detection_rate <= max(0.25, quick_study.honest_false_alarm_rate)

    def test_roc_separates_active_attacks(self, quick_study):
        for name in ("intercept_resend@1", "man_in_the_middle@1",
                     "source_tamper@1"):
            roc = quick_study.point(name).roc
            assert roc is not None and roc.auc >= 0.9, name
        passive = quick_study.point("classical_passive").roc
        assert passive is not None and 0.2 <= passive.auc <= 0.8

    def test_frontier_built_from_information_strategies(self, quick_study):
        assert quick_study.frontier, "strength sweeps must feed the frontier"
        labels = {point.label for point in quick_study.frontier}
        assert all(
            label.split("@")[0] in ("intercept_resend", "entangle_measure")
            for label in labels
        )

    def test_chsh_bound_annotations(self, quick_study):
        bound = quick_study.chsh_bound
        assert bound["check_pairs"] == QUICK["check_pairs"]
        assert bound["epsilon_95"] > 0
        assert bound["pairs_for_epsilon_0.5_95"] > QUICK["check_pairs"]

    def test_render_and_summary(self, quick_study):
        text = render_result(quick_study)
        assert "Security analysis" in text
        assert "intercept_resend@1" in text
        summary = quick_study.summary()
        assert summary["simulator_backend"] == "stabilizer"
        assert len(summary["points"]) == len(quick_study.points)

    def test_invalid_inputs_rejected(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            run_fig_security(trials=0)
        with pytest.raises(ExperimentError):
            run_fig_security(trials=1, strengths=(1.5,))
        with pytest.raises(ExperimentError):
            run_fig_security(trials=1, channel="carrier_pigeon")


class TestDetectionRatePins:
    """Regression pins: the quick grid's exact detection rates under seed 42."""

    def test_pinned_rates(self, quick_study):
        rates = quick_study.detection_rates()
        # Full-strength active attacks: always caught.
        assert rates["intercept_resend@1"] == 1.0
        assert rates["man_in_the_middle@1"] == 1.0
        assert rates["entangle_measure@1"] == 1.0
        assert rates["source_tamper@1"] == 1.0
        # Half-strength attacks stay highly visible on this channel.
        assert rates["intercept_resend@0.5"] >= 0.75
        assert rates["man_in_the_middle@0.5"] >= 0.75
        # The passive tap never trips a safeguard beyond finite-sample noise.
        assert rates["classical_passive"] <= 0.25
