"""Tests for the parallel sweep substrate: grids, seeding, executor parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.sweep import (
    SweepResult,
    parameter_grid,
    point_seed,
    run_sweep,
)


def _draw_worker(params: dict, seed: int) -> float:
    """Module-level worker (picklable for the process executor)."""
    rng = np.random.default_rng(seed)
    return float(params["scale"] * rng.random())


class TestParameterGrid:
    def test_row_major_order(self):
        grid = parameter_grid(eta=[10, 50], message=["00", "01"])
        assert grid == [
            {"eta": 10, "message": "00"},
            {"eta": 10, "message": "01"},
            {"eta": 50, "message": "00"},
            {"eta": 50, "message": "01"},
        ]

    def test_single_axis(self):
        assert parameter_grid(eta=[1, 2, 3]) == [{"eta": 1}, {"eta": 2}, {"eta": 3}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            parameter_grid(eta=[])

    def test_bare_string_axis_rejected(self):
        with pytest.raises(ExperimentError):
            parameter_grid(message="0011")

    def test_no_axes_rejected(self):
        with pytest.raises(ExperimentError):
            parameter_grid()


class TestPointSeed:
    def test_depends_only_on_coordinates(self):
        assert point_seed(7, {"a": 1, "b": 2}) == point_seed(7, {"b": 2, "a": 1})

    def test_distinct_points_get_distinct_seeds(self):
        seeds = {point_seed(7, {"eta": eta}) for eta in range(100)}
        assert len(seeds) == 100

    def test_base_seed_separates_sweeps(self):
        assert point_seed(1, {"eta": 10}) != point_seed(2, {"eta": 10})

    def test_seed_fits_in_63_bits(self):
        assert 0 <= point_seed(0, {"x": "y"}) < 2**63 - 1

    def test_object_axis_values_rejected(self):
        class Opaque:
            pass

        with pytest.raises(ExperimentError):
            point_seed(0, {"device": Opaque()})

    def test_none_axis_value_supported(self):
        assert point_seed(0, {"noise": None}) == point_seed(0, {"noise": None})

    def test_numpy_scalars_hash_like_python_numbers(self):
        assert point_seed(7, {"eta": np.int64(10)}) == point_seed(7, {"eta": 10})
        assert point_seed(7, {"p": np.float64(0.5)}) == point_seed(7, {"p": 0.5})
        assert point_seed(7, {"flag": np.True_}) == point_seed(7, {"flag": True})
        assert point_seed(7, {"etas": (np.int64(1), np.int64(2))}) == point_seed(
            7, {"etas": (1, 2)}
        )


class TestRunSweep:
    def test_values_align_with_grid_order(self):
        grid = parameter_grid(scale=[1.0, 2.0, 3.0])
        result = run_sweep(_draw_worker, grid, base_seed=5)
        assert isinstance(result, SweepResult)
        assert [point.params["scale"] for point, _ in result] == [1.0, 2.0, 3.0]
        assert len(result) == 3

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_match_serial(self, executor):
        grid = parameter_grid(scale=[0.5, 1.0, 1.5, 2.0, 2.5])
        serial = run_sweep(_draw_worker, grid, base_seed=42, executor="serial")
        parallel = run_sweep(
            _draw_worker, grid, base_seed=42, executor=executor, max_workers=2
        )
        assert parallel.values == serial.values
        assert [p.seed for p, _ in parallel] == [p.seed for p, _ in serial]

    def test_grid_order_does_not_change_point_values(self):
        grid = parameter_grid(scale=[1.0, 2.0])
        forward = run_sweep(_draw_worker, grid, base_seed=9)
        backward = run_sweep(_draw_worker, list(reversed(grid)), base_seed=9)
        assert forward.value_at(scale=1.0) == backward.value_at(scale=1.0)
        assert forward.value_at(scale=2.0) == backward.value_at(scale=2.0)

    def test_value_at_requires_unique_match(self):
        result = run_sweep(_draw_worker, parameter_grid(scale=[1.0, 2.0]), base_seed=1)
        with pytest.raises(ExperimentError):
            result.value_at(scale=99.0)

    def test_series_helper(self):
        result = run_sweep(_draw_worker, parameter_grid(scale=[1.0, 2.0]), base_seed=1)
        series = result.series("scale")
        assert [axis for axis, _ in series] == [1.0, 2.0]

    def test_empty_grid(self):
        assert len(run_sweep(_draw_worker, [], base_seed=0)) == 0

    def test_single_point_grid_still_uses_the_process_pool(self):
        # No silent serial downgrade: an unpicklable worker must fail the
        # same way on a one-point grid as on a full grid.
        serial = run_sweep(
            _draw_worker, parameter_grid(scale=[2.0]), base_seed=3, executor="serial"
        )
        pooled = run_sweep(
            _draw_worker, parameter_grid(scale=[2.0]), base_seed=3, executor="process"
        )
        assert pooled.values == serial.values
        with pytest.raises(Exception):
            run_sweep(
                lambda params, seed: 0.0,
                parameter_grid(scale=[1.0]),
                executor="process",
            )

    def test_unknown_executor_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep(_draw_worker, parameter_grid(scale=[1.0]), executor="gpu")


class TestExperimentDeterminism:
    def test_fig3_identical_across_executors(self):
        from repro.experiments import run_fig3

        kwargs = dict(etas=[5, 60], shots=64, messages=("00", "11"), seed=3)
        serial = run_fig3(**kwargs)
        threaded = run_fig3(**kwargs, executor="thread", max_workers=2)
        assert [p.accuracy for p in serial.points] == [
            p.accuracy for p in threaded.points
        ]

    def test_duplicate_grid_points_get_independent_seeds(self):
        grid = [{"scale": 1.0}, {"scale": 1.0}, {"scale": 1.0}]
        result = run_sweep(_draw_worker, grid, base_seed=5)
        seeds = [point.seed for point, _ in result]
        assert len(set(seeds)) == 3
        assert len(set(result.values)) == 3
        # Re-running the same grid reproduces the same seeds and values.
        again = run_sweep(_draw_worker, grid, base_seed=5)
        assert again.values == result.values

    def test_duplicate_messages_supported_in_batch_transfer(self):
        from repro.device.backend import NoisyBackend
        from repro.device.device_model import DeviceModel
        from repro.experiments.emulation import run_message_transfer_batch

        backend = NoisyBackend(DeviceModel.ideal(2), seed=1)
        histograms = run_message_transfer_batch(
            ("00", "00", "01"), eta=2, backend=backend, shots=8
        )
        assert histograms == [{"00": 8}, {"00": 8}, {"01": 8}]

    def test_fig3_accepts_repeated_messages(self):
        from repro.experiments import run_fig3

        result = run_fig3(etas=[5], shots=16, messages=("00", "00"), seed=2)
        assert result.points[0].shots == 32

    def test_attack_simulations_identical_across_executors(self):
        from repro.experiments import run_attack_simulations

        kwargs = dict(
            trials=2,
            identity_pairs=4,
            check_pairs=32,
            message="1011",
            include_leakage=False,
            seed=19,
        )
        serial = run_attack_simulations(**kwargs)
        threaded = run_attack_simulations(**kwargs, executor="thread", max_workers=3)
        assert serial.detection_rates() == threaded.detection_rates()
