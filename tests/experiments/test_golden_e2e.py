"""Golden-fixture regression test for the e2e paper-reproduction pipeline.

``tests/fixtures/e2e_quick.json`` pins the *exact* quick-mode outputs of the
``e2e`` experiment — per-session CHSH values, authentication errors, decoded
messages, aggregate delivery rates.  Any refactor that drifts these numbers
(a changed RNG consumption pattern, a reordered float reduction, an
accidental behaviour change behind the session fast path) fails here loudly
instead of silently rewriting the reproduction.

For an intentional change, regenerate with
``PYTHONPATH=src python tests/fixtures/regenerate_e2e_quick.py``
and justify the diff in review.
"""

import json
from pathlib import Path

import pytest

FIXTURE_PATH = Path(__file__).parent.parent / "fixtures" / "e2e_quick.json"


@pytest.fixture(scope="module")
def golden():
    with FIXTURE_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def current():
    import sys

    sys.path.insert(0, str(FIXTURE_PATH.parent))
    try:
        from regenerate_e2e_quick import build_fixture
    finally:
        sys.path.pop(0)
    return build_fixture()


class TestGoldenE2E:
    def test_aggregate_statistics_exact(self, golden, current):
        for key in (
            "message_length",
            "num_sessions",
            "eta",
            "ideal_delivery_rate",
            "noisy_delivery_rate",
            "mean_chsh_round1",
            "mean_noisy_message_error",
        ):
            assert current[key] == golden[key], f"{key} drifted"

    @pytest.mark.parametrize("bucket", ["ideal_sessions", "noisy_sessions"])
    def test_per_session_records_exact(self, golden, current, bucket):
        assert len(current[bucket]) == len(golden[bucket])
        for index, (now, pinned) in enumerate(zip(current[bucket], golden[bucket])):
            assert now == pinned, (
                f"{bucket}[{index}] drifted:\n  now    {now}\n  pinned {pinned}"
            )

    def test_ideal_channel_always_delivers(self, golden):
        # Sanity on the fixture itself: the paper's noiseless sessions
        # deliver every message exactly.
        assert golden["ideal_delivery_rate"] == 1.0
        for session in golden["ideal_sessions"]:
            assert session["delivered_message"] == session["sent_message"]
