"""Property-based tests (Hypothesis) for the payload codecs.

Deterministic by construction (``derandomize=True``): Hypothesis replays the
same example set every run, so a CI pass is a stable pass.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.api.codec import (
    bits_to_bytes,
    bits_to_text,
    bytes_to_bits,
    decode_payload,
    encode_payload,
    text_to_bits,
)
from repro.exceptions import ReproError

SETTINGS = settings(max_examples=100, deadline=None, derandomize=True)


class TestBytesRoundTrip:
    @SETTINGS
    @given(st.binary(min_size=0, max_size=256))
    def test_bytes_round_trip(self, payload):
        assert bits_to_bytes(bytes_to_bits(payload)) == payload

    @SETTINGS
    @given(st.binary(min_size=1, max_size=64))
    def test_bit_width_is_eight_per_byte(self, payload):
        assert len(bytes_to_bits(payload)) == 8 * len(payload)

    @SETTINGS
    @given(st.binary(min_size=1, max_size=64))
    def test_bits_are_binary(self, payload):
        assert set(bytes_to_bits(payload)) <= {0, 1}

    @SETTINGS
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_non_octet_lengths_rejected(self, bits):
        if len(bits) % 8 == 0:
            bits_to_bytes(tuple(bits))  # must not raise
        else:
            with pytest.raises(ReproError):
                bits_to_bytes(tuple(bits))


class TestTextRoundTrip:
    @SETTINGS
    @given(st.text(min_size=0, max_size=64))
    def test_arbitrary_unicode_round_trips(self, text):
        assert bits_to_text(text_to_bits(text)) == text

    @SETTINGS
    @given(st.text(alphabet=st.characters(codec="ascii"), min_size=1, max_size=64))
    def test_ascii_costs_eight_bits_per_char(self, text):
        assert len(text_to_bits(text)) == 8 * len(text)


class TestEncodeDecodePayload:
    @SETTINGS
    @given(st.binary(min_size=1, max_size=128))
    def test_bytes_kind_round_trip(self, payload):
        bits, kind = encode_payload(payload)
        assert kind == "bytes"
        assert decode_payload(bits, kind) == payload

    @SETTINGS
    @given(st.text(min_size=1, max_size=64))
    def test_text_kind_round_trip(self, payload):
        bits, kind = encode_payload(payload)
        assert kind == "text"
        assert decode_payload(bits, kind) == payload

    @SETTINGS
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=128))
    def test_bits_kind_round_trip(self, payload):
        bits, kind = encode_payload(tuple(payload))
        assert kind == "bits"
        assert decode_payload(bits, kind) == tuple(payload)

    @SETTINGS
    @given(st.text(alphabet="01", min_size=1, max_size=64))
    def test_bitstring_strings_need_explicit_kind(self, bitstring):
        # A str auto-detects as text; kind="bits" parses it as a bitstring.
        bits, kind = encode_payload(bitstring, kind="bits")
        assert kind == "bits"
        assert bits == tuple(int(ch) for ch in bitstring)

    def test_empty_payload_rejected(self):
        with pytest.raises(ReproError):
            encode_payload(b"")
        with pytest.raises(ReproError):
            encode_payload("")
