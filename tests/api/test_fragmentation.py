"""Fragmentation tests: framing, CRC integrity, boundary lengths, seeds."""

from __future__ import annotations

import pytest

from repro.api.fragmentation import (
    HEADER_BITS,
    MAX_FRAGMENT_BITS,
    FragmentFrame,
    ParsedFrame,
    crc16,
    derive_seed,
    fragment_payload,
    fragment_seed,
    reassemble,
)
from repro.exceptions import ReproError
from repro.utils.bits import random_bits


class TestCrc16:
    def test_deterministic(self):
        bits = random_bits(100, rng=1)
        assert crc16(bits) == crc16(bits)

    def test_detects_single_bit_flips(self):
        bits = random_bits(64, rng=2)
        reference = crc16(bits)
        for position in range(len(bits)):
            flipped = tuple(
                b ^ 1 if i == position else b for i, b in enumerate(bits)
            )
            assert crc16(flipped) != reference

    def test_sixteen_bit_range(self):
        for seed in range(8):
            assert 0 <= crc16(random_bits(40, rng=seed)) < 2**16


class TestFraming:
    def test_frame_layout(self):
        frame = FragmentFrame(index=3, total=5, payload=(1, 0, 1, 1))
        wire = frame.to_bits()
        assert len(wire) == HEADER_BITS + 4
        parsed = ParsedFrame.parse(wire)
        assert (parsed.index, parsed.total, parsed.length) == (3, 5, 4)
        assert parsed.payload == (1, 0, 1, 1)
        assert parsed.intact and parsed.matches(3, 5)

    def test_corrupted_payload_not_intact(self):
        wire = FragmentFrame(index=0, total=1, payload=random_bits(32, rng=3)).to_bits()
        for position in range(len(wire)):
            corrupted = tuple(
                b ^ 1 if i == position else b for i, b in enumerate(wire)
            )
            assert not ParsedFrame.parse(corrupted).matches(0, 1)

    def test_wrong_expected_index_rejected(self):
        wire = FragmentFrame(index=1, total=4, payload=(1, 1)).to_bits()
        parsed = ParsedFrame.parse(wire)
        assert parsed.intact
        assert not parsed.matches(2, 4)

    def test_too_short_frame_raises(self):
        with pytest.raises(ReproError):
            ParsedFrame.parse((0, 1) * 32)  # header only, no payload

    def test_invalid_construction(self):
        with pytest.raises(ReproError):
            FragmentFrame(index=2, total=2, payload=(1,))
        with pytest.raises(ReproError):
            FragmentFrame(index=0, total=1, payload=())


class TestFragmentReassemble:
    @pytest.mark.parametrize(
        "length",
        [1, 15, 16, 17, 31, 32, 33, 64, 100],
        ids=lambda n: f"len{n}",
    )
    def test_identity_around_fragment_boundaries(self, length):
        payload = random_bits(length, rng=length)
        frames = fragment_payload(payload, fragment_bits=16)
        assert len(frames) == (length + 15) // 16
        assert all(frame.total == len(frames) for frame in frames)
        # Simulate perfect delivery: parse each wire frame, then reassemble.
        payloads = {}
        for frame in frames:
            parsed = ParsedFrame.parse(frame.to_bits())
            assert parsed.matches(frame.index, len(frames))
            payloads[parsed.index] = parsed.payload
        assert reassemble(payloads, len(frames)) == payload

    def test_last_fragment_carries_remainder(self):
        frames = fragment_payload(random_bits(20, rng=9), fragment_bits=16)
        assert [len(f.payload) for f in frames] == [16, 4]

    def test_missing_fragment_rejected(self):
        with pytest.raises(ReproError):
            reassemble({0: (1,)}, total=2)

    def test_bad_fragment_bits_rejected(self):
        payload = random_bits(8, rng=1)
        with pytest.raises(ReproError):
            fragment_payload(payload, fragment_bits=0)
        with pytest.raises(ReproError):
            fragment_payload(payload, fragment_bits=MAX_FRAGMENT_BITS + 1)
        with pytest.raises(ReproError):
            fragment_payload((), fragment_bits=8)


class TestSeeds:
    def test_fragment_seed_deterministic(self):
        assert fragment_seed(7, 3, 1) == fragment_seed(7, 3, 1)

    def test_fragment_seed_separates_coordinates(self):
        seeds = {
            fragment_seed(base, index, attempt)
            for base in (0, 1)
            for index in range(4)
            for attempt in range(3)
        }
        assert len(seeds) == 2 * 4 * 3  # no collisions across any coordinate

    def test_derive_seed_order_independent(self):
        assert derive_seed(5, a=1, b="x") == derive_seed(5, b="x", a=1)
        assert derive_seed(5, a=1) != derive_seed(5, a=2)
