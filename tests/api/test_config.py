"""ServiceConfig tests: presets, fluent builder, validation, lazy exports."""

from __future__ import annotations

import pytest

import repro
from repro.api import BACKEND_NAMES, ServiceConfig
from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.exceptions import ConfigurationError
from repro.network import line_topology
from repro.protocol import Identity


class TestPresets:
    def test_paper_default(self):
        config = ServiceConfig.paper_default(seed=3).validate()
        assert config.backend == "local"
        assert isinstance(config.channel, IdentityChainChannel)
        assert config.identity_pairs == 8
        assert config.check_pairs_per_round == 256
        assert config.seed == 3

    def test_ideal(self):
        config = ServiceConfig.ideal().validate()
        assert isinstance(config.channel, NoiselessChannel)

    def test_noisy_nisq(self):
        config = ServiceConfig.noisy_nisq(eta=20).validate()
        assert "eta=20" in config.channel.name

    def test_networked(self):
        topology = line_topology(3)
        config = ServiceConfig.networked(topology, source="n0", target="n2").validate()
        assert config.backend == "network"
        assert config.topology is topology
        assert (config.source, config.target) == ("n0", "n2")


class TestFluentBuilder:
    def test_withers_return_new_objects(self):
        base = ServiceConfig.paper_default()
        modified = base.with_fragment_bits(8)
        assert base.fragment_bits == 64 and modified.fragment_bits == 8
        assert modified is not base

    def test_chaining(self):
        config = (
            ServiceConfig.ideal()
            .with_backend("batch")
            .with_seed(11)
            .with_retries(0)
            .with_framing(False)
            .with_executor("serial", max_workers=2)
            .with_identity_pairs(2)
            .with_check_pairs(32)
            .with_tolerances(check_bit_tolerance=0.2)
        )
        assert config.backend == "batch"
        assert config.seed == 11 and config.max_retries == 0
        assert not config.framing
        assert (config.executor, config.max_workers) == ("serial", 2)
        assert config.check_bit_tolerance == 0.2
        assert config.authentication_tolerance == 0.25  # untouched

    def test_with_network_partial_update(self):
        topology = line_topology(3)
        config = ServiceConfig.networked(topology, source="n0")
        updated = config.with_network(target="n2")
        assert updated.topology is topology and updated.source == "n0"
        assert updated.target == "n2"


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig.paper_default().with_backend("cloud").validate()
        assert set(BACKEND_NAMES) == {"local", "batch", "network"}

    def test_bad_fragment_bits(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig.paper_default().with_fragment_bits(0).validate()

    def test_negative_retries(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig.paper_default().with_retries(-1).validate()

    def test_bad_executor(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig.paper_default().with_executor("process").validate()

    def test_network_requires_topology(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig.paper_default().with_backend("network").validate()

    def test_network_rejects_attack_factory(self):
        config = ServiceConfig.networked(line_topology(3)).with_attack_factory(
            lambda index, attempt, rng: None
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_identity_mismatch_caught(self):
        identity = Identity.from_string("1101", owner="alice")  # 2 pairs
        config = ServiceConfig.paper_default().with_identities(identity, None)
        with pytest.raises(ConfigurationError):
            config.validate()  # identity_pairs is still 8


class TestProtocolConfigMapping:
    def test_fields_map_one_to_one(self):
        config = (
            ServiceConfig.noisy_nisq(eta=30)
            .with_identity_pairs(4)
            .with_check_pairs(48)
            .with_tolerances(0.3, 0.1)
        )
        protocol = config.protocol_config(message_length=10, seed=77)
        assert protocol.message_length == 10
        assert protocol.identity_pairs == 4
        assert protocol.check_pairs_per_round == 48
        assert protocol.authentication_tolerance == 0.3
        assert protocol.check_bit_tolerance == 0.1
        assert protocol.channel is config.channel
        assert protocol.seed == 77
        protocol.validate()

    def test_check_bits_parity_rule(self):
        config = ServiceConfig.paper_default()
        for length in range(1, 40):
            protocol = config.protocol_config(message_length=length, seed=0)
            assert (protocol.message_length + protocol.num_check_bits) % 2 == 0

    def test_explicit_check_bits_respected(self):
        protocol = ServiceConfig.paper_default().with_check_bits(6).protocol_config(
            message_length=10, seed=0
        )
        assert protocol.num_check_bits == 6

    def test_explicit_check_bits_parity_bumped_on_odd_fragments(self):
        # n + c must be even; an explicit count is adjusted upward by one on
        # odd-length fragments (documented; same convention as the network
        # layer's SessionParameters.check_bits_for).
        protocol = ServiceConfig.paper_default().with_check_bits(6).protocol_config(
            message_length=11, seed=0
        )
        assert protocol.num_check_bits == 7

    def test_check_bit_rule_shared_across_layers(self):
        from repro.network import SessionParameters
        from repro.protocol import ProtocolConfig

        service = ServiceConfig.paper_default()
        network = SessionParameters()
        for length in (1, 4, 7, 8, 16, 33):
            expected = ProtocolConfig.default_check_bits(length)
            assert service.protocol_config(length, seed=0).num_check_bits == expected
            assert network.check_bits_for(length) == expected
            assert ProtocolConfig.default(length).num_check_bits == expected


class TestPackageSurface:
    def test_lazy_exports(self):
        from repro import (  # noqa: F401 — the import *is* the test
            DeliveryReport,
            MessagingService,
            ProtocolConfig,
            ProtocolResult,
            ServiceConfig,
            UADIQSDCProtocol,
        )

        assert repro.MessagingService is MessagingService

    def test_all_documents_the_stable_surface(self):
        for name in (
            "MessagingService",
            "ServiceConfig",
            "DeliveryReport",
            "ProtocolConfig",
            "UADIQSDCProtocol",
            "ProtocolResult",
            "ReproError",
            "__version__",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_dir_includes_lazy_names(self):
        assert "MessagingService" in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_historical_import_paths_still_work(self):
        from repro.protocol import ProtocolConfig, UADIQSDCProtocol  # noqa: F401
        from repro.protocol.config import ProtocolConfig as PC  # noqa: F401
        from repro.protocol.runner import UADIQSDCProtocol as UP  # noqa: F401
        from repro.exceptions import ProtocolAbort, ReproError  # noqa: F401
        from repro.network import SessionParameters, simulate_network  # noqa: F401
        from repro.experiments import run_end_to_end  # noqa: F401
