"""Tests for the service-level public API (:mod:`repro.api`)."""
