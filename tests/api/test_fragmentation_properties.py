"""Property-based tests (Hypothesis) for framing, CRC and seed derivation.

The key guarantee pinned here: **any** single-bit flip anywhere in a framed
fragment — header or payload — is detected by
:meth:`ParsedFrame.matches`.  CRC-16 detects every single-bit payload error
by construction, and a header flip breaks the field the receiver checks.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.api.fragmentation import (
    HEADER_BITS,
    FragmentFrame,
    ParsedFrame,
    crc16,
    derive_seed,
    fragment_payload,
    fragment_seed,
    reassemble,
)

SETTINGS = settings(max_examples=100, deadline=None, derandomize=True)

payloads = st.lists(st.integers(0, 1), min_size=1, max_size=200).map(tuple)
fragment_sizes = st.integers(min_value=1, max_value=64)


class TestFragmentationRoundTrip:
    @SETTINGS
    @given(payloads, fragment_sizes)
    def test_fragment_parse_reassemble_identity(self, payload, fragment_bits):
        frames = fragment_payload(payload, fragment_bits)
        parsed = {}
        for index, frame in enumerate(frames):
            received = ParsedFrame.parse(frame.to_bits())
            assert received.matches(index, len(frames))
            parsed[index] = received.payload
        assert reassemble(parsed, len(frames)) == payload

    @SETTINGS
    @given(payloads, fragment_sizes)
    def test_header_invariants(self, payload, fragment_bits):
        frames = fragment_payload(payload, fragment_bits)
        expected_total = -(-len(payload) // fragment_bits)
        assert len(frames) == expected_total
        for index, frame in enumerate(frames):
            assert frame.index == index
            assert frame.total == expected_total
            assert 1 <= len(frame.payload) <= fragment_bits
            wire = frame.to_bits()
            assert len(wire) == HEADER_BITS + len(frame.payload)
        # Every payload bit appears exactly once, in order.
        concatenated = tuple(bit for frame in frames for bit in frame.payload)
        assert concatenated == payload

    @SETTINGS
    @given(payloads)
    def test_single_fragment_when_size_suffices(self, payload):
        frames = fragment_payload(payload, len(payload))
        assert len(frames) == 1
        assert frames[0].payload == payload


class TestCorruptionDetection:
    @SETTINGS
    @given(
        payloads,
        st.data(),
    )
    def test_any_single_bit_flip_is_detected(self, payload, data):
        frame = FragmentFrame(index=0, total=1, payload=payload)
        wire = list(frame.to_bits())
        position = data.draw(st.integers(0, len(wire) - 1))
        wire[position] ^= 1
        corrupted = ParsedFrame.parse(tuple(wire))
        assert not corrupted.matches(0, 1), (
            f"flip at bit {position} went undetected"
        )

    @SETTINGS
    @given(payloads)
    def test_intact_frame_matches(self, payload):
        frame = FragmentFrame(index=0, total=1, payload=payload)
        assert ParsedFrame.parse(frame.to_bits()).matches(0, 1)

    @SETTINGS
    @given(payloads)
    def test_crc_is_deterministic_and_16_bit(self, payload):
        value = crc16(payload)
        assert 0 <= value < 2**16
        assert crc16(payload) == value


class TestSeedDerivation:
    @SETTINGS
    @given(st.integers(0, 2**62), st.integers(0, 1000), st.integers(0, 10))
    def test_fragment_seed_deterministic(self, base, index, attempt):
        assert fragment_seed(base, index, attempt) == fragment_seed(
            base, index, attempt
        )
        assert 0 <= fragment_seed(base, index, attempt) < 2**63 - 1

    @SETTINGS
    @given(st.integers(0, 2**62), st.integers(0, 1000))
    def test_attempts_draw_distinct_seeds(self, base, index):
        seeds = {fragment_seed(base, index, attempt) for attempt in range(4)}
        assert len(seeds) == 4

    @SETTINGS
    @given(st.integers(0, 2**62))
    def test_derive_seed_independent_of_tag_order(self, base):
        assert derive_seed(base, alpha=1, beta="x") == derive_seed(
            base, beta="x", alpha=1
        )

    @SETTINGS
    @given(st.integers(0, 2**62))
    def test_string_and_int_tags_do_not_collide(self, base):
        assert derive_seed(base, tag=1) != derive_seed(base, tag="1")
