"""One scenario spec drives all three execution layers (protocol / service / network)."""

import pytest

from repro.api.config import ServiceConfig
from repro.api.service import MessagingService
from repro.attacks import AttackScenario, ScenarioSchedule, get_scenario
from repro.exceptions import ConfigurationError, NetworkError
from repro.network.routing import RoutingTable
from repro.network.sessions import SessionParameters, SessionRequest, run_session
from repro.network.topology import line_topology
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol

MESSAGE = "1011001110001111"

SCENARIO = AttackScenario("man_in_the_middle")


def protocol_config(seed=5, scenario=None):
    return ProtocolConfig.default(
        len(MESSAGE), seed=seed, check_pairs_per_round=32, identity_pairs=4
    ).with_scenario(scenario)


class TestProtocolLayer:
    def test_scenario_config_builds_attack(self):
        result = UADIQSDCProtocol(protocol_config(scenario=SCENARIO)).run(MESSAGE)
        assert not result.success
        assert result.metadata["attack"] == "man_in_the_middle(random_pure)"

    def test_scenario_accepts_preset_names_and_dicts(self):
        by_name = UADIQSDCProtocol(protocol_config(scenario="mitm_full")).run(MESSAGE)
        by_dict = UADIQSDCProtocol(
            protocol_config(scenario=SCENARIO.to_dict())
        ).run(MESSAGE)
        assert by_name.metadata["attack"] == by_dict.metadata["attack"]

    def test_explicit_attack_object_wins(self):
        from repro.attacks import InterceptResendAttack

        protocol = UADIQSDCProtocol(
            protocol_config(scenario=SCENARIO), attack=InterceptResendAttack(rng=0)
        )
        result = protocol.run(MESSAGE)
        assert result.metadata["attack"].startswith("intercept_resend")

    def test_honest_sessions_unchanged_by_feature(self):
        # A scenario-less config must behave exactly as before the engine
        # existed (no extra RNG draws on the honest path).
        baseline = UADIQSDCProtocol(protocol_config()).run(MESSAGE)
        again = UADIQSDCProtocol(protocol_config()).run(MESSAGE)
        assert baseline.success and again.success
        assert baseline.chsh_round1.value == again.chsh_round1.value
        assert "scenario" not in baseline.metadata

    def test_invalid_scenario_rejected_at_validation(self):
        with pytest.raises(ConfigurationError, match="invalid scenario"):
            protocol_config(scenario="no_such_preset").validate()


class TestServiceLayer:
    def test_with_scenario_aborts_delivery(self):
        config = (
            ServiceConfig.ideal(seed=9)
            .with_check_pairs(32)
            .with_retries(0)
            .with_scenario(SCENARIO)
        )
        report = MessagingService(config).send("hi")
        assert not report.success
        honest = MessagingService(
            ServiceConfig.ideal(seed=9).with_check_pairs(32).with_retries(0)
        ).send("hi")
        assert honest.success

    def test_describe_includes_scenario_label(self):
        config = ServiceConfig.ideal().with_scenario(SCENARIO)
        assert "man_in_the_middle" in config.describe()["scenario"]
        assert "scenario" not in ServiceConfig.ideal().describe()

    def test_scenario_and_attack_factory_mutually_exclusive(self):
        config = ServiceConfig.ideal().with_scenario(SCENARIO).with_attack_factory(
            lambda index, attempt, rng: None
        )
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            config.validate()

    def test_scenario_deterministic_per_seed(self):
        config = (
            ServiceConfig.ideal(seed=31)
            .with_check_pairs(32)
            .with_scenario(AttackScenario("intercept_resend", strength=0.5))
        )
        first = MessagingService(config).send("hello")
        second = MessagingService(config).send("hello")
        assert first.success == second.success
        assert [r.delivered for r in first.fragments] == [
            r.delivered for r in second.fragments
        ]


class TestNetworkLayer:
    def make_route(self, nodes=3):
        topology = line_topology(nodes, qubit_capacity=None)
        names = topology.node_names
        route = RoutingTable(topology).route(names[0], names[-1])
        return topology, names, route

    def test_relay_scenario_attacks_multi_hop_routes(self):
        topology, names, route = self.make_route()
        request = SessionRequest(
            0, names[0], names[-1], 8, 0.0, scenario="relay_intercept_resend"
        )
        outcome = run_session(topology, route, request, SessionParameters(), seed=5)
        assert outcome.status == "aborted"
        attacked_hops = [r for r in outcome.hop_reports if r.attack is not None]
        assert attacked_hops, "relay scenario must attack some hop"

    def test_relay_scenario_spares_direct_routes(self):
        topology, names, route = self.make_route(nodes=2)
        request = SessionRequest(
            0, names[0], names[1], 8, 0.0, scenario="relay_intercept_resend"
        )
        outcome = run_session(topology, route, request, SessionParameters(), seed=5)
        assert all(r.attack is None for r in outcome.hop_reports)

    def test_source_scenario_attacks_first_hop_only(self):
        topology, names, route = self.make_route()
        request = SessionRequest(
            0, names[0], names[-1], 8, 0.0,
            scenario=AttackScenario("source_tamper", strength=0.0),
        )
        outcome = run_session(topology, route, request, SessionParameters(), seed=5)
        assert outcome.hop_reports[0].attack is not None
        assert all(r.attack is None for r in outcome.hop_reports[1:])

    def test_compromised_node_takes_precedence(self):
        topology, names, route = self.make_route()
        topology.compromise(
            names[1], get_scenario("intercept_resend_full").attack_factory()
        )
        request = SessionRequest(
            0, names[0], names[-1], 8, 0.0, scenario="classical_passive"
        )
        outcome = run_session(topology, route, request, SessionParameters(), seed=5)
        assert outcome.hop_reports[0].attack.startswith("intercept_resend")

    def test_honest_request_unchanged(self):
        topology, names, route = self.make_route()
        request = SessionRequest(0, names[0], names[-1], 8, 0.0)
        baseline = run_session(topology, route, request, SessionParameters(), seed=5)
        again = run_session(topology, route, request, SessionParameters(), seed=5)
        assert baseline.status == "delivered"
        assert baseline.summary() == again.summary()

    def test_invalid_request_scenario_rejected(self):
        with pytest.raises(NetworkError, match="invalid session scenario"):
            SessionRequest(0, "a", "b", 8, 0.0, scenario="nope")

    def test_network_service_scenario_rides_requests(self):
        topology = line_topology(3, qubit_capacity=None)
        names = topology.node_names
        config = ServiceConfig.networked(
            topology, source=names[0], target=names[-1], seed=13
        ).with_scenario(ScenarioSchedule((AttackScenario(
            "intercept_resend", target_layer="relay"),))).with_retries(0)
        report = MessagingService(config).send("hi")
        assert not report.success
        honest = MessagingService(
            ServiceConfig.networked(
                topology, source=names[0], target=names[-1], seed=13
            ).with_retries(0)
        ).send("hi")
        assert honest.success
