"""Payload codec tests: bytes/text/bits round-trips and error handling."""

from __future__ import annotations

import pytest

from repro.api.codec import (
    PAYLOAD_KINDS,
    bits_to_bytes,
    bits_to_text,
    bytes_to_bits,
    decode_payload,
    encode_payload,
    text_to_bits,
)
from repro.exceptions import ReproError


class TestBytesCodec:
    def test_known_vector(self):
        assert bytes_to_bits(b"\x00") == (0,) * 8
        assert bytes_to_bits(b"\xff") == (1,) * 8
        assert bytes_to_bits(b"A") == (0, 1, 0, 0, 0, 0, 0, 1)

    def test_round_trip_all_byte_values(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bytearray_accepted(self):
        assert bytes_to_bits(bytearray(b"ab")) == bytes_to_bits(b"ab")

    def test_partial_byte_rejected(self):
        with pytest.raises(ReproError):
            bits_to_bytes((1, 0, 1))

    def test_non_bytes_rejected(self):
        with pytest.raises(ReproError):
            bytes_to_bits("not bytes")


class TestTextCodec:
    def test_ascii_known_vector(self):
        # The historical secure-text-messaging helper behaviour.
        assert text_to_bits("A") == "01000001"
        assert bits_to_text("01000001") == "A"

    def test_utf8_non_ascii_round_trip(self):
        for text in ("héllo", "мир", "日本語", "emoji 🙂", "mixed é✓中"):
            assert bits_to_text(text_to_bits(text)) == text

    def test_bit_tuple_input(self):
        assert bits_to_text(tuple(int(c) for c in text_to_bits("ok"))) == "ok"

    def test_corrupt_utf8_replaced_not_raised(self):
        # 0xFF is never valid UTF-8; decoding must degrade, not raise.
        assert "�" in bits_to_text("11111111")


class TestEncodePayload:
    def test_auto_detection(self):
        assert encode_payload(b"\x01")[1] == "bytes"
        assert encode_payload("x")[1] == "text"
        assert encode_payload((1, 0, 1))[1] == "bits"
        assert encode_payload([1, 0])[1] == "bits"

    def test_bitstring_needs_explicit_kind(self):
        bits, kind = encode_payload("101", kind="bits")
        assert bits == (1, 0, 1) and kind == "bits"
        # As text, "101" is three characters, not three bits.
        assert len(encode_payload("101")[0]) == 24

    def test_round_trip_every_kind(self):
        cases = [(b"data \xf0\x9f\x99\x82", "bytes"), ("tëxt", "text"), ((1, 1, 0), "bits")]
        for payload, kind in cases:
            bits, resolved = encode_payload(payload)
            assert resolved == kind
            assert decode_payload(bits, resolved) == (
                tuple(payload) if kind == "bits" else payload
            )

    def test_empty_payload_rejected(self):
        for empty in (b"", "", ()):
            with pytest.raises(ReproError):
                encode_payload(empty, kind="auto" if empty != () else "bits")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            encode_payload(b"x", kind="json")
        with pytest.raises(ReproError):
            decode_payload((1,), "json")
        assert set(PAYLOAD_KINDS) == {"bytes", "text", "bits"}

    def test_undetectable_type_rejected(self):
        with pytest.raises(ReproError):
            encode_payload(3.14)
