"""MessagingService tests: delivery, retransmission, backend parity, network.

The protocol parameters are deliberately small (2 identity pairs, 64 check
pairs, 16-bit fragments) so each facade send costs a handful of fast
sessions; the properties under test — bit-identical delivery, deterministic
retransmission, Local/Batch parity — are parameter-independent.
"""

from __future__ import annotations

import pytest

from repro.api import MessagingService, ServiceConfig
from repro.attacks import InterceptResendAttack
from repro.channel.quantum_channel import NoiselessChannel
from repro.network import SessionParameters, line_topology
from repro.protocol.runner import UADIQSDCProtocol
from repro.utils.bits import bits_to_str


def fast_config(seed: int = 7) -> ServiceConfig:
    return (
        ServiceConfig.ideal(seed=seed)
        .with_identity_pairs(2)
        .with_check_pairs(64)
        .with_fragment_bits(16)
    )


def strip_backend_metadata(summary: dict) -> dict:
    """Remove the fields that legitimately differ between backends."""
    summary = dict(summary)
    summary.pop("backend")
    metadata = dict(summary["metadata"])
    metadata.pop("backend")
    metadata.pop("executor")
    summary["metadata"] = metadata
    return summary


class TestLocalDelivery:
    def test_utf8_payload_round_trip(self):
        report = MessagingService(fast_config()).send("héllo ✓")
        assert report.success
        assert report.delivered_payload == "héllo ✓"
        assert report.payload_matches
        assert report.backend == "local"
        assert report.payload_kind == "text"
        assert report.num_fragments == (report.num_payload_bits + 15) // 16
        assert report.metadata["seed"] == 7

    def test_bytes_and_bits_payloads(self):
        service = MessagingService(fast_config())
        data = bytes(range(0, 40, 3))
        assert service.send(data).delivered_payload == data
        assert service.send("10110", kind="bits").delivered_payload == (1, 0, 1, 1, 0)
        assert service.send((0, 1, 1)).delivered_payload == (0, 1, 1)

    def test_single_fragment_when_payload_fits(self):
        report = MessagingService(fast_config().with_fragment_bits(64)).send(b"ok")
        assert report.num_fragments == 1 and report.success

    def test_deterministic_under_fixed_seed(self):
        service = MessagingService(fast_config())
        first, second = service.send("repeat"), service.send("repeat")
        assert first.summary() == second.summary()

    def test_send_seed_override(self):
        service = MessagingService(fast_config(seed=1))
        report = service.send(b"x", seed=99)
        assert report.metadata["seed"] == 99
        assert report.summary() == service.send(b"x", seed=99).summary()

    def test_report_aggregates(self):
        report = MessagingService(fast_config()).send("aggregate me")
        assert report.total_attempts >= report.num_fragments
        assert report.mean_chsh_round1 is not None
        assert report.undelivered_fragments == []
        for fragment in report.fragments:
            assert fragment.delivered
            assert fragment.attempts[-1].source == "protocol"
            assert fragment.attempts[-1].frame_intact


class TestUnframedMode:
    def test_matches_direct_protocol_run_bit_for_bit(self):
        message = "1011001110001111"
        config = fast_config(seed=31).with_framing(False).with_retries(0)
        report = MessagingService(config).send(message, kind="bits")

        direct = UADIQSDCProtocol(
            config.protocol_config(len(message), seed=31)
        ).run(message)
        assert report.fragments[0].attempts[0].raw.summary() == direct.summary()
        assert direct.delivered_message is not None
        assert bits_to_str(report.delivered_payload) == direct.delivered_message_string


class TestRetransmission:
    @staticmethod
    def first_attempt_attack(index, attempt, rng):
        """Intercept-resend every fragment's first transmission only."""
        return InterceptResendAttack(rng=rng) if attempt == 0 else None

    def test_forced_abort_then_retransmission_completes_delivery(self):
        config = fast_config(seed=13).with_attack_factory(self.first_attempt_attack)
        report = MessagingService(config).send("retry ✓")
        assert report.success
        assert report.delivered_payload == "retry ✓"
        # Every fragment must have aborted once and recovered on retry.
        assert report.retransmissions >= report.num_fragments
        for fragment in report.fragments:
            first = fragment.attempts[0]
            assert first.attempt == 0 and not first.success
            assert first.abort_reason != "none"
            assert fragment.attempts[-1].success

    def test_retransmission_is_deterministic(self):
        config = fast_config(seed=13).with_attack_factory(self.first_attempt_attack)
        service = MessagingService(config)
        first, second = service.send("retry ✓"), service.send("retry ✓")
        assert first.summary() == second.summary()
        assert first.delivered_payload == second.delivered_payload
        # Seeds are pinned per (fragment, attempt), not per call order.
        assert [
            [attempt.seed for attempt in fragment.attempts]
            for fragment in first.fragments
        ] == [
            [attempt.seed for attempt in fragment.attempts]
            for fragment in second.fragments
        ]

    def test_retry_budget_exhaustion_reports_failure(self):
        config = (
            fast_config(seed=5)
            .with_retries(1)
            .with_fragment_bits(64)
            .with_attack_factory(lambda index, attempt, rng: InterceptResendAttack(rng=rng))
        )
        report = MessagingService(config).send(b"doomed")
        assert not report.success
        assert report.delivered_payload is None
        assert report.undelivered_fragments == [f.index for f in report.fragments]
        assert report.total_attempts == 2 * report.num_fragments
        assert sum(report.abort_reasons().values()) == report.total_attempts


class TestBackendParity:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_local_and_batch_deliver_identically(self, executor):
        payload = "parity ✓ payload"
        local = MessagingService(fast_config()).send(payload)
        batch = MessagingService(
            fast_config().with_backend("batch").with_executor(executor)
        ).send(payload)
        assert batch.backend == "batch"
        assert batch.delivered_payload == local.delivered_payload == payload
        assert strip_backend_metadata(batch.summary()) == strip_backend_metadata(
            local.summary()
        )

    def test_parity_holds_under_attack_retransmission(self):
        def attack(index, attempt, rng):
            return InterceptResendAttack(rng=rng) if attempt == 0 else None

        config = fast_config(seed=21).with_attack_factory(attack)
        local = MessagingService(config).send(b"abc")
        batch = MessagingService(config.with_backend("batch")).send(b"abc")
        assert strip_backend_metadata(batch.summary()) == strip_backend_metadata(
            local.summary()
        )


def noiseless_line(num_nodes: int = 3):
    return line_topology(num_nodes, channel_factory=lambda length: NoiselessChannel())


def network_config(seed: int = 5) -> ServiceConfig:
    return (
        ServiceConfig.networked(noiseless_line(), source="n0", target="n2", seed=seed)
        .with_fragment_bits(16)
        .with_network(
            session_params=SessionParameters(identity_pairs=2, check_pairs_per_round=64)
        )
    )


class TestNetworkBackend:
    def test_multi_hop_delivery_bit_identical(self):
        report = MessagingService(network_config()).send("över nätet")
        assert report.success
        assert report.delivered_payload == "över nätet"
        assert report.backend == "network"
        attempt = report.fragments[0].attempts[0]
        assert attempt.source == "network"
        assert attempt.details["route"] == ["n0", "n1", "n2"]

    def test_send_to_overrides_target(self):
        config = ServiceConfig.networked(
            noiseless_line(), source="n0", target="n1", seed=5
        ).with_network(
            session_params=SessionParameters(identity_pairs=2, check_pairs_per_round=64)
        )
        report = MessagingService(config).send(b"x", to="n2")
        assert report.success
        assert report.fragments[0].attempts[0].details["route"] == ["n0", "n1", "n2"]

    def test_deterministic(self):
        service = MessagingService(network_config())
        assert service.send(b"net").summary() == service.send(b"net").summary()

    def test_compromised_relay_blocks_delivery(self):
        topology = noiseless_line()
        topology.compromise("n1", lambda rng: InterceptResendAttack(rng=rng))
        config = (
            ServiceConfig.networked(topology, source="n0", target="n2", seed=5)
            .with_fragment_bits(32)
            .with_retries(1)
            .with_network(
                session_params=SessionParameters(
                    identity_pairs=2, check_pairs_per_round=64
                )
            )
        )
        report = MessagingService(config).send(b"secret")
        assert not report.success
        assert report.delivered_payload is None
        # The per-hop security machinery (not capacity) stopped every attempt.
        for reason in report.abort_reasons():
            assert reason in {
                "round1_chsh_failed",
                "round2_chsh_failed",
                "bob_authentication_failed",
                "alice_authentication_failed",
                "message_integrity_failed",
            }
