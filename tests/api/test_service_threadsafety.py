"""Thread-safety regression: one service, 16 threads, serial-identical reports.

This pins the contract documented on :class:`MessagingService`: a single
service instance may serve concurrent ``send()`` calls, and with pinned
per-send seeds every concurrent report is byte-identical to the one a serial
loop produces.  Shared infrastructure exercised on purpose: one backend,
one (locked) propagator cache inside the simulator stack, the telemetry
module state, and — in the networked variant — one topology with its
channels.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.config import ServiceConfig
from repro.api.service import MessagingService

NUM_THREADS = 16
SENDS_PER_THREAD = 3


def _seed_for(thread: int, index: int) -> int:
    return 10_000 + thread * 100 + index


def _payload_for(thread: int, index: int) -> str:
    return f"thread {thread} message {index}"


def _canonical(report) -> str:
    return json.dumps(report.summary(), sort_keys=True, ensure_ascii=False)


def _hammer(service: MessagingService) -> dict[tuple[int, int], str]:
    """Fire all sends at one service from NUM_THREADS threads at once."""
    barrier = threading.Barrier(NUM_THREADS)
    results: dict[tuple[int, int], str] = {}
    lock = threading.Lock()

    def client(thread: int) -> None:
        barrier.wait()  # maximise overlap: everyone starts together
        for index in range(SENDS_PER_THREAD):
            report = service.send(
                _payload_for(thread, index), seed=_seed_for(thread, index)
            )
            with lock:
                results[(thread, index)] = _canonical(report)

    with ThreadPoolExecutor(max_workers=NUM_THREADS) as pool:
        list(pool.map(client, range(NUM_THREADS)))
    return results


@pytest.mark.parametrize(
    "make_config",
    [
        pytest.param(lambda: ServiceConfig.ideal(), id="local-backend"),
        pytest.param(
            lambda: ServiceConfig.ideal().with_backend("batch"), id="batch-backend"
        ),
    ],
)
def test_sixteen_threads_match_serial_reference(make_config):
    concurrent = _hammer(MessagingService(make_config()))
    assert len(concurrent) == NUM_THREADS * SENDS_PER_THREAD

    serial_service = MessagingService(make_config())
    for (thread, index), concurrent_report in sorted(concurrent.items()):
        serial_report = serial_service.send(
            _payload_for(thread, index), seed=_seed_for(thread, index)
        )
        assert _canonical(serial_report) == concurrent_report, (thread, index)


def test_networked_service_is_thread_safe():
    """Concurrent sends through one shared topology replay serially."""
    from repro.experiments.network_scale import build_network

    topology = build_network(topology="grid", rows=2, cols=2, qubit_capacity=None)
    config = ServiceConfig.networked(topology)
    service = MessagingService(config)
    seeds = [3000 + index for index in range(8)]

    with ThreadPoolExecutor(max_workers=8) as pool:
        concurrent = list(
            pool.map(lambda s: _canonical(service.send("net", seed=s)), seeds)
        )

    serial = [_canonical(service.send("net", seed=s)) for s in seeds]
    assert concurrent == serial


def test_concurrent_sends_share_one_propagator_cache():
    """The locked cache survives concurrent use and actually gets shared."""
    from repro.quantum.batch import PropagatorCache

    cache = PropagatorCache()
    config = ServiceConfig.ideal()
    service = MessagingService(config)
    # Route every session through one explicit cache via the batch backend's
    # simulator stack: hammer identical payloads so step keys collide hard.
    del service  # the facade path is covered above; stress the cache directly

    import numpy as np

    matrix = np.eye(4, dtype=complex)
    errors: list[BaseException] = []

    def worker(worker_id: int) -> None:
        try:
            for index in range(200):
                key = ("scope", worker_id % 4, index % 8)
                cache.step(key, lambda: matrix.copy())
                cache.power(key, 3 + index % 5, matrix)
                cache.put((worker_id % 4, index % 8), matrix)
                cache.get((worker_id % 4, index % 8))
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(NUM_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.hits > 0
    assert len(cache) <= cache.max_entries
