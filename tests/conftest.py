"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory producing independent seeded generators: ``rng_factory(seed)``."""

    def factory(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return factory
