"""Unit tests for identities and the dense-coding / check-bit machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ProtocolError
from repro.protocol.encoding import (
    BELL_STATE_TO_BITS,
    BITS_TO_PAULI,
    MessageEncoder,
    decode_bell_state_to_bits,
    encode_bits_to_pauli,
    expected_bell_state,
    pauli_operator,
    random_cover_operations,
)
from repro.protocol.identity import Identity
from repro.quantum.bell import BellState, bell_state


class TestIdentity:
    def test_random_identity_length(self):
        identity = Identity.random(8, owner="alice", rng=1)
        assert identity.num_pairs == 8
        assert identity.num_bits == 16

    def test_from_string_round_trip(self):
        identity = Identity.from_string("1100")
        assert identity.to_string() == "1100"
        assert identity.chunks() == [(1, 1), (0, 0)]

    def test_rejects_odd_length(self):
        with pytest.raises(ProtocolError):
            Identity.from_string("101")

    def test_rejects_empty(self):
        with pytest.raises(ProtocolError):
            Identity(bits=())

    def test_rejects_zero_pairs(self):
        with pytest.raises(ProtocolError):
            Identity.random(0)

    def test_matches_ignores_owner(self):
        a = Identity.from_string("0110", owner="alice")
        b = Identity.from_string("0110", owner="eve")
        assert a.matches(b)

    def test_mismatch_fraction(self):
        a = Identity.from_string("0000")
        b = Identity.from_string("0011")
        assert a.mismatch_fraction(b) == pytest.approx(0.5)

    def test_mismatch_fraction_length_check(self):
        with pytest.raises(ProtocolError):
            Identity.from_string("00").mismatch_fraction(Identity.from_string("0000"))

    def test_randomness_with_different_seeds(self):
        assert Identity.random(16, rng=1).bits != Identity.random(16, rng=2).bits


class TestDenseCodingTables:
    def test_paper_encoding_table(self):
        assert encode_bits_to_pauli((0, 0)) == "I"
        assert encode_bits_to_pauli((0, 1)) == "Z"
        assert encode_bits_to_pauli((1, 0)) == "X"
        assert encode_bits_to_pauli((1, 1)) == "Y"

    def test_encode_rejects_wrong_chunk_size(self):
        with pytest.raises(ProtocolError):
            encode_bits_to_pauli((1,))

    def test_bell_state_to_bits_is_inverse_of_encoding(self):
        for bits, label in BITS_TO_PAULI.items():
            observed = expected_bell_state(label, "I")
            assert decode_bell_state_to_bits(observed) == bits

    def test_bell_to_bits_covers_all_states(self):
        assert set(BELL_STATE_TO_BITS) == set(BellState)

    def test_pauli_operator_lookup(self):
        assert pauli_operator("x").is_unitary()
        with pytest.raises(ProtocolError):
            pauli_operator("Q")

    def test_expected_bell_state_double_sided(self):
        # Cover X on Alice's qubit and Z on Bob's qubit: X⊗Z |Φ+⟩ = |Ψ−⟩ (up to phase).
        assert expected_bell_state("X", "Z") is BellState.PSI_MINUS
        assert expected_bell_state("I", "I") is BellState.PHI_PLUS

    def test_expected_bell_state_matches_simulation(self):
        from repro.quantum.operators import PAULI_MATRICES

        for first in ("I", "X", "Y", "Z"):
            for second in ("I", "X", "Y", "Z"):
                state = bell_state(BellState.PHI_PLUS)
                state = state.apply_operator(PAULI_MATRICES[first], [0])
                state = state.apply_operator(PAULI_MATRICES[second], [1])
                expected = expected_bell_state(first, second)
                assert state.fidelity(bell_state(expected)) == pytest.approx(1.0)

    def test_cover_operations_are_uniformly_drawn(self):
        labels = random_cover_operations(4000, rng=3)
        counts = {label: labels.count(label) for label in ("I", "X", "Y", "Z")}
        assert set(counts) == {"I", "X", "Y", "Z"}
        assert all(850 < count < 1150 for count in counts.values())

    def test_cover_operations_negative_count(self):
        with pytest.raises(ProtocolError):
            random_cover_operations(-1)


class TestMessageEncoder:
    def test_encode_produces_expected_sizes(self):
        encoder = MessageEncoder(num_check_bits=4)
        encoded = encoder.encode("10110010", rng=1)
        assert len(encoded.combined) == 12
        assert encoded.num_pairs == 6
        assert len(encoded.check_positions) == 4

    def test_round_trip_without_noise(self):
        encoder = MessageEncoder(num_check_bits=6)
        encoded = encoder.encode("1011001011", rng=2)
        message, check = MessageEncoder.split_message_and_check(
            encoded.combined, encoded.check_positions
        )
        assert message == encoded.message
        assert check == encoded.check_bits

    def test_pauli_labels_follow_the_table(self):
        encoder = MessageEncoder(num_check_bits=0)
        encoded = encoder.encode("0001101100011011"[:8], rng=3)
        expected = [BITS_TO_PAULI[chunk] for chunk in
                    [encoded.combined[i:i + 2] for i in range(0, len(encoded.combined), 2)]]
        assert list(encoded.pauli_labels) == expected

    def test_odd_total_rejected(self):
        with pytest.raises(ProtocolError):
            MessageEncoder(num_check_bits=0).encode("101")

    def test_empty_message_rejected(self):
        with pytest.raises(ProtocolError):
            MessageEncoder(num_check_bits=2).encode("")

    def test_negative_check_bits_rejected(self):
        with pytest.raises(ProtocolError):
            MessageEncoder(num_check_bits=-1)

    def test_decode_bell_outcomes(self):
        outcomes = [BellState.PHI_PLUS, BellState.PSI_MINUS, BellState.PHI_MINUS]
        assert MessageEncoder.decode_bell_outcomes(outcomes) == (0, 0, 1, 1, 0, 1)

    @given(
        message=st.lists(st.integers(0, 1), min_size=1, max_size=40),
        num_check=st.integers(0, 10),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, message, num_check, seed):
        if (len(message) + num_check) % 2 != 0:
            num_check += 1
        encoder = MessageEncoder(num_check_bits=num_check)
        encoded = encoder.encode(tuple(message), rng=seed)
        # Decode through the Bell-state layer: labels → Bell states → bits.
        outcomes = [expected_bell_state(label, "I") for label in encoded.pauli_labels]
        combined = MessageEncoder.decode_bell_outcomes(outcomes)
        assert combined == encoded.combined
        recovered, check = MessageEncoder.split_message_and_check(
            combined, encoded.check_positions
        )
        assert recovered == tuple(message)
        assert check == encoded.check_bits
