"""Parity and eligibility tests for ``ProtocolConfig.simulator_backend``.

The protocol's ``auto`` fast path (memoised CHSH branch statistics, memoised
Bell-measurement distributions, shared source emissions) must be
*bit-identical* to the ``dense`` reference path: identical results, identical
RNG consumption, for honest and attacked sessions alike.
"""

import numpy as np
import pytest

from repro.attacks.intercept_resend import InterceptResendAttack
from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.protocol.chsh import DISecurityCheck
from repro.protocol.config import ProtocolConfig
from repro.protocol.identity import Identity
from repro.protocol.parties import Bob
from repro.protocol.runner import UADIQSDCProtocol
from repro.protocol.source import EntanglementSource
from repro.quantum.bell import BellState, bell_state
from repro.quantum.channels import depolarizing_channel


def _session_fingerprint(result):
    return (
        result.success,
        result.abort_reason,
        result.delivered_message,
        None if result.chsh_round1 is None else result.chsh_round1.value,
        None if result.chsh_round2 is None else result.chsh_round2.value,
        result.bob_authentication_error,
        result.alice_authentication_error,
        result.check_bit_error_rate,
        result.message_bit_error_rate,
    )


class TestFastPathParity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 2024])
    def test_honest_session_bit_identical(self, seed):
        message = "0110" * 8
        base = ProtocolConfig.default(len(message), seed=seed)
        fast = UADIQSDCProtocol(base).run(message)
        dense = UADIQSDCProtocol(base.with_simulator_backend("dense")).run(message)
        assert _session_fingerprint(fast) == _session_fingerprint(dense)

    def test_attacked_session_bit_identical(self):
        message = "10" * 8
        base = ProtocolConfig.default(len(message), seed=11)
        attack_a = InterceptResendAttack()
        attack_b = InterceptResendAttack()
        fast = UADIQSDCProtocol(base, attack=attack_a).run(message)
        dense = UADIQSDCProtocol(
            base.with_simulator_backend("dense"), attack=attack_b
        ).run(message)
        assert _session_fingerprint(fast) == _session_fingerprint(dense)

    def test_noisy_channel_session_bit_identical(self):
        message = "1100" * 4
        base = ProtocolConfig.default(len(message), seed=3, eta=50)
        fast = UADIQSDCProtocol(base).run(message)
        dense = UADIQSDCProtocol(base.with_simulator_backend("dense")).run(message)
        assert _session_fingerprint(fast) == _session_fingerprint(dense)

    def test_metadata_reports_backend(self):
        config = ProtocolConfig.default(8, seed=0)
        result = UADIQSDCProtocol(config).run("01010101")
        assert result.metadata["simulator_backend"] == "auto"
        assert result.metadata["session_fast_path"] is True
        dense = UADIQSDCProtocol(config.with_simulator_backend("dense")).run("01010101")
        assert dense.metadata["session_fast_path"] is False

    def test_forced_stabilizer_runs_on_pauli_channel(self):
        channel = IdentityChainChannel(eta=20, include_thermal_relaxation=False)
        config = (
            ProtocolConfig.default(8, seed=5)
            .with_channel(channel)
            .with_simulator_backend("stabilizer")
        )
        reference = UADIQSDCProtocol(
            config.with_simulator_backend("dense")
        ).run("01010101")
        forced = UADIQSDCProtocol(config).run("01010101")
        assert _session_fingerprint(forced) == _session_fingerprint(reference)


class TestDISecurityCheckMemoization:
    def _pairs(self, count=64):
        noisy = depolarizing_channel(0.05).apply(
            bell_state(BellState.PHI_PLUS).density_matrix(), [0]
        )
        clean = bell_state(BellState.PHI_PLUS).density_matrix()
        return [clean if index % 2 else noisy for index in range(count)]

    def test_memoized_estimate_bit_identical_to_reference(self):
        pairs = self._pairs()
        memoized = DISecurityCheck(memoize=True).estimate(
            pairs, rng=np.random.default_rng(42)
        )
        reference = DISecurityCheck(memoize=False).estimate(
            pairs, rng=np.random.default_rng(42)
        )
        assert memoized.value == reference.value
        assert memoized.correlations == reference.correlations
        assert memoized.counts == reference.counts

    def test_rng_consumption_identical(self):
        pairs = self._pairs(32)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        DISecurityCheck(memoize=True).estimate(pairs, rng=rng_a)
        DISecurityCheck(memoize=False).estimate(pairs, rng=rng_b)
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)


class TestBobMemoization:
    def _bob(self, memoize, seed=4):
        identity = Identity.random(2, owner="bob", rng=np.random.default_rng(0))
        peer = Identity.random(2, owner="alice", rng=np.random.default_rng(1))
        return Bob(identity=identity, peer_identity=peer, rng=seed, memoize=memoize)

    def test_bell_measure_bit_identical(self):
        pairs = {
            index: bell_state(BellState.PHI_PLUS).density_matrix()
            for index in range(48)
        }
        fast = self._bob(True).bell_measure(pairs, tuple(pairs))
        reference = self._bob(False).bell_measure(pairs, tuple(pairs))
        assert fast == reference


class TestNetworkBackendPlumbing:
    def _line_topology(self, channel_factory=None):
        from repro.network.topology import line_topology

        kwargs = {} if channel_factory is None else {"channel_factory": channel_factory}
        return line_topology(3, **kwargs)

    def _networked_config(self, backend_name, channel_factory=None, seed=5):
        from repro.api.config import ServiceConfig

        # The service-level channel field is kept Pauli-eligible so a forced
        # "stabilizer" passes the construction-time representative
        # validation; hop eligibility is then decided by the (independent)
        # per-link channels of the topology.
        return (
            ServiceConfig.networked(self._line_topology(channel_factory), seed=seed)
            .with_channel(NoiselessChannel())
            .with_simulator_backend(backend_name)
            .with_executor("serial")
        )

    def test_service_backend_reaches_network_hops(self):
        """ServiceConfig.simulator_backend flows into every hop's config.

        The default *link* channel carries thermal relaxation (non-Pauli), so
        a forced ``stabilizer`` must fail loudly inside the hop — proof the
        knob is plumbed into the scheduler's SessionParameters rather than
        silently dropped.
        """
        from repro.api.service import MessagingService
        from repro.exceptions import ConfigurationError

        service = MessagingService(self._networked_config("stabilizer"))
        with pytest.raises(ConfigurationError, match="Pauli"):
            service.send("1010", kind="bits")

    def test_dense_and_auto_network_deliveries_identical(self):
        from repro.api.service import MessagingService

        fast = MessagingService(self._networked_config("auto")).send("1010", kind="bits")
        dense = MessagingService(self._networked_config("dense")).send(
            "1010", kind="bits"
        )
        assert fast.success == dense.success
        assert fast.delivered_payload == dense.delivered_payload

    def test_explicit_session_params_own_the_engine(self):
        from repro.api.service import MessagingService
        from repro.network.sessions import SessionParameters

        # Seed 0 delivers on the default η=10 links (seed 5 aborts
        # statistically on the small per-hop check-pair count — the
        # documented quick-mode behaviour, not an eligibility failure).
        config = self._networked_config("stabilizer", seed=0).with_network(
            session_params=SessionParameters(simulator_backend="auto")
        )
        report = MessagingService(config).send("1010", kind="bits")
        assert report.success  # explicit params win; no eligibility error


class TestDeviceNoiseModelMemo:
    def test_memo_invalidates_on_calibration_swap(self):
        from repro.device.calibration import (
            DeviceCalibration,
            GateCalibration,
            QubitCalibration,
        )
        from repro.device.device_model import DeviceModel

        def calibration(readout):
            return DeviceCalibration(
                qubit_defaults=QubitCalibration(
                    t1=2e-4, t2=1e-4, readout_error=readout
                ),
                gates={"id": GateCalibration("id", 1e-4, 6e-8, num_qubits=1)},
            )

        device = DeviceModel("swap_test", 2, calibration=calibration(0.01))
        first = device.noise_model()
        device.calibration = calibration(0.3)  # fresh object, same version=0
        second = device.noise_model()
        assert second is not first
        assert second.readout_error_for(0).prob_1_given_0 == pytest.approx(0.3)

    def test_memo_invalidates_on_version_bump(self):
        from repro.device.calibration import GateCalibration
        from repro.device.device_model import DeviceModel

        device = DeviceModel.ibm_brisbane()
        first = device.noise_model()
        assert device.noise_model() is first  # stable while unchanged
        device.calibration.add_gate(GateCalibration("id", 0.5, 6e-8, num_qubits=1))
        assert device.noise_model() is not first


class TestSourceEmissionSharing:
    def test_emit_many_shares_one_deterministic_state(self):
        source = EntanglementSource()
        pairs = source.emit_many(10)
        assert len(pairs) == 10
        assert source.emitted == 10
        assert all(pair is pairs[0] for pair in pairs)

    def test_override_keeps_per_index_emission(self):
        calls = []

        def override(index):
            calls.append(index)
            return bell_state(BellState.PHI_PLUS).density_matrix()

        source = EntanglementSource(override=override)
        pairs = source.emit_many(4)
        assert calls == [0, 1, 2, 3]
        assert len({id(pair) for pair in pairs}) == 4

    def test_noisy_source_emission_matches_single_emit(self):
        noisy = EntanglementSource(preparation_noise=depolarizing_channel(0.1))
        shared = noisy.emit_many(3)[0]
        single = EntanglementSource(
            preparation_noise=depolarizing_channel(0.1)
        ).emit(0)
        assert np.array_equal(shared.matrix, single.matrix)


class TestSessionBatchFusion:
    """Cross-session cache sharing must be invisible in the results.

    ``run_session_batch`` threads one :class:`SessionCaches` through every
    fast-path session; the caches memoize only configuration-keyed pure
    measurement statistics, so fused sessions are bit-identical to solo runs.
    """

    def _sessions(self, seeds, message="0110" * 4):
        return [
            (ProtocolConfig.default(len(message), seed=seed), None, message)
            for seed in seeds
        ]

    def test_fused_batch_bit_identical_to_solo_sessions(self):
        from repro.protocol.runner import run_session_batch

        seeds = [0, 1, 7, 11, 2024]
        message = "0110" * 4
        solo = [
            UADIQSDCProtocol(config).run(msg)
            for config, _attack, msg in self._sessions(seeds, message)
        ]
        fused = run_session_batch(self._sessions(seeds, message))
        assert [_session_fingerprint(r) for r in fused] == [
            _session_fingerprint(r) for r in solo
        ]

    def test_fused_attacked_batch_bit_identical(self):
        from repro.protocol.runner import run_session_batch

        message = "10" * 8
        config = ProtocolConfig.default(len(message), seed=11)
        solo = UADIQSDCProtocol(config, attack=InterceptResendAttack()).run(message)
        fused = run_session_batch(
            [(config, InterceptResendAttack(), message)] * 3
        )
        for result in fused:
            assert _session_fingerprint(result) == _session_fingerprint(solo)

    def test_shared_caches_populate_across_sessions(self):
        from repro.protocol.runner import SessionCaches, run_session_batch

        caches = SessionCaches()
        run_session_batch(self._sessions([0, 1]), caches=caches)
        assert caches.chsh_branches  # CHSH branch statistics were shared
        assert caches.bell_probabilities  # Bob's Bell distributions were shared

    def test_caches_are_ignored_on_the_dense_path(self):
        from repro.protocol.runner import SessionCaches

        message = "01010101"
        config = ProtocolConfig.default(len(message), seed=0).with_simulator_backend(
            "dense"
        )
        caches = SessionCaches()
        result = UADIQSDCProtocol(config, caches=caches).run(message)
        assert result.metadata["session_fast_path"] is False
        assert not caches.chsh_branches and not caches.bell_probabilities
