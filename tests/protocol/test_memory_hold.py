"""Storage-memory hold wiring in the protocol runner (ideal vs decohering)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol
from repro.quantum.channels import depolarizing_channel

MESSAGE = "10110010"


def _config(**overrides) -> ProtocolConfig:
    base = ProtocolConfig.default(
        message_length=8, identity_pairs=2, check_pairs_per_round=48, seed=13
    )
    return base if not overrides else base.with_memory(
        overrides.get("decoherence"), overrides.get("hold", 0.0)
    )


class TestIdealMemoryDefault:
    def test_default_run_is_bit_identical_to_explicit_ideal(self):
        plain = UADIQSDCProtocol(_config()).run(MESSAGE)
        explicit = UADIQSDCProtocol(_config(decoherence=None, hold=0.0)).run(MESSAGE)
        assert plain.summary() == explicit.summary()
        assert [p.name for p in plain.phases] == [p.name for p in explicit.phases]

    def test_no_memory_phase_by_default(self):
        result = UADIQSDCProtocol(_config()).run(MESSAGE)
        assert "memory_hold" not in [p.name for p in result.phases]

    def test_ideal_memory_with_hold_has_no_physical_effect(self):
        plain = UADIQSDCProtocol(_config()).run(MESSAGE)
        held = UADIQSDCProtocol(_config(decoherence=None, hold=25.0)).run(MESSAGE)
        assert held.delivered_message == plain.delivered_message
        assert held.chsh_round1.value == plain.chsh_round1.value
        assert held.chsh_round2.value == plain.chsh_round2.value

    def test_hold_phase_recorded_when_engaged(self):
        result = UADIQSDCProtocol(_config(decoherence=None, hold=3.0)).run(MESSAGE)
        phase = result.phase("memory_hold")
        assert phase.passed
        assert phase.details["hold_time"] == 3.0
        assert phase.details["ideal"] is True


class TestDecoheringMemory:
    def test_strong_decoherence_disrupts_the_session(self):
        """Heavy storage noise must hit some security or quality check.

        Depolarizing Alice's stored halves before she encodes corrupts the
        identity pairs, the round-2 check pairs and the message pairs; at
        p=0.3 × 4 time units the session cannot finish cleanly.
        """
        config = _config(decoherence=depolarizing_channel(0.3), hold=4.0)
        result = UADIQSDCProtocol(config).run(MESSAGE)
        assert (not result.success) or result.message_bit_error_rate > 0

    def test_zero_hold_time_applies_no_decoherence(self):
        plain = UADIQSDCProtocol(_config()).run(MESSAGE)
        stored = UADIQSDCProtocol(
            _config(decoherence=depolarizing_channel(0.3), hold=0.0)
        ).run(MESSAGE)
        # Channel configured but never applied (zero elapsed units):
        # physically identical outcomes, plus an audit phase.
        assert stored.delivered_message == plain.delivered_message
        assert stored.phase("memory_hold").details["ideal"] is False

    def test_mild_decoherence_raises_round2_degradation(self):
        clean = UADIQSDCProtocol(_config(decoherence=None, hold=6.0)).run(MESSAGE)
        noisy = UADIQSDCProtocol(
            _config(decoherence=depolarizing_channel(0.08), hold=6.0)
        ).run(MESSAGE)
        # Round 1 runs before storage, round 2 after: storage noise must
        # lower the second CHSH estimate relative to the clean run while
        # leaving round 1 untouched (same seed, same sampling).
        assert noisy.chsh_round1.value == clean.chsh_round1.value
        if noisy.chsh_round2 is not None and clean.chsh_round2 is not None:
            assert noisy.chsh_round2.value < clean.chsh_round2.value


class TestValidation:
    def test_negative_hold_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(decoherence=None, hold=-1.0).validate()

    def test_multi_qubit_decoherence_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(
                decoherence=depolarizing_channel(0.1, num_qubits=2), hold=1.0
            ).validate()
