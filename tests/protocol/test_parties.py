"""Unit tests for the Alice and Bob party objects."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError
from repro.protocol.encoding import encode_bits_to_pauli, expected_bell_state
from repro.protocol.identity import Identity
from repro.protocol.parties import ALICE_QUBIT, BOB_QUBIT, Alice, Bob
from repro.quantum.bell import BellState, bell_state


def fresh_pairs(count: int):
    """A mapping position -> |Φ+⟩ density matrix."""
    return {index: bell_state(BellState.PHI_PLUS).density_matrix() for index in range(count)}


@pytest.fixture
def alice() -> Alice:
    return Alice(
        identity=Identity.from_string("1101", owner="alice"),
        peer_identity=Identity.from_string("0010", owner="bob"),
        rng=1,
    )


@pytest.fixture
def bob() -> Bob:
    return Bob(
        identity=Identity.from_string("0010", owner="bob"),
        peer_identity=Identity.from_string("1101", owner="alice"),
        rng=2,
    )


class TestAliceEncoding:
    def test_message_pauli_plan(self, alice):
        plan = alice.message_pauli_plan(("I", "X"), (3, 7))
        assert plan == {3: "I", 7: "X"}

    def test_message_plan_length_mismatch(self, alice):
        with pytest.raises(ProtocolError):
            alice.message_pauli_plan(("I",), (3, 7))

    def test_identity_pauli_plan_follows_identity_chunks(self, alice):
        plan = alice.identity_pauli_plan((0, 5))
        assert plan[0] == encode_bits_to_pauli((1, 1))
        assert plan[5] == encode_bits_to_pauli((0, 1))

    def test_identity_plan_length_mismatch(self, alice):
        with pytest.raises(ProtocolError):
            alice.identity_pauli_plan((0, 1, 2))

    def test_cover_plan_is_remembered(self, alice):
        plan = alice.cover_plan((2, 4))
        assert alice.cover_operations == plan
        assert set(plan.values()) <= {"I", "X", "Y", "Z"}

    def test_apply_plan_encodes_bell_states(self, alice):
        pairs = fresh_pairs(2)
        updated = Alice.apply_plan(pairs, {0: "X", 1: "I"})
        assert updated[0].fidelity(bell_state(BellState.PSI_PLUS)) == pytest.approx(1.0)
        assert updated[1].fidelity(bell_state(BellState.PHI_PLUS)) == pytest.approx(1.0)
        # The input mapping is not mutated.
        assert pairs[0].fidelity(bell_state(BellState.PHI_PLUS)) == pytest.approx(1.0)

    def test_apply_plan_unknown_position(self, alice):
        with pytest.raises(ProtocolError):
            Alice.apply_plan(fresh_pairs(1), {5: "X"})


class TestAuthenticationFlows:
    def test_bob_identity_plan(self, bob):
        plan = bob.identity_pauli_plan((1, 6))
        assert plan[1] == encode_bits_to_pauli((0, 0))
        assert plan[6] == encode_bits_to_pauli((1, 0))

    def test_honest_bob_passes_alice_verification(self, alice, bob):
        positions = (0, 1)
        pairs = fresh_pairs(2)
        pairs = Alice.apply_plan(pairs, alice.cover_plan(positions))
        pairs = Bob.apply_plan(pairs, bob.identity_pauli_plan(positions))
        announced = bob.bell_measure(pairs, positions)
        assert alice.verify_bob(announced, positions) == pytest.approx(0.0)

    def test_forged_bob_identity_is_detected(self, alice):
        eve = Bob(
            identity=Identity.from_string("1111", owner="eve"),
            peer_identity=Identity.from_string("1101"),
            rng=3,
        )
        positions = (0, 1)
        pairs = fresh_pairs(2)
        pairs = Alice.apply_plan(pairs, alice.cover_plan(positions))
        pairs = Bob.apply_plan(pairs, eve.identity_pauli_plan(positions))
        announced = eve.bell_measure(pairs, positions)
        # id_B = "0010" vs Eve's "1111": both chunks differ, so both outcomes mismatch.
        assert alice.verify_bob(announced, positions) == pytest.approx(1.0)

    def test_verify_bob_requires_cover_operations(self, alice):
        with pytest.raises(ProtocolError):
            alice.expected_authentication_outcomes((0, 1))

    def test_verify_bob_requires_matching_positions(self, alice, bob):
        positions = (0, 1)
        pairs = fresh_pairs(2)
        pairs = Alice.apply_plan(pairs, alice.cover_plan(positions))
        pairs = Bob.apply_plan(pairs, bob.identity_pauli_plan(positions))
        announced = bob.bell_measure(pairs, positions)
        del announced[0]
        with pytest.raises(ProtocolError):
            alice.verify_bob(announced, positions)

    def test_honest_alice_passes_bob_verification(self, alice, bob):
        positions = (0, 1)
        pairs = fresh_pairs(2)
        pairs = Alice.apply_plan(pairs, alice.identity_pauli_plan(positions))
        outcomes = bob.bell_measure(pairs, positions)
        assert bob.verify_alice(outcomes, positions) == pytest.approx(0.0)

    def test_forged_alice_identity_is_detected(self, bob):
        eve = Alice(
            identity=Identity.from_string("0011", owner="eve"),
            peer_identity=Identity.from_string("0010"),
            rng=4,
        )
        positions = (0, 1)
        pairs = fresh_pairs(2)
        pairs = Alice.apply_plan(pairs, eve.identity_pauli_plan(positions))
        outcomes = bob.bell_measure(pairs, positions)
        # id_A = "1101" vs Eve's "0011": both chunks differ.
        assert bob.verify_alice(outcomes, positions) == pytest.approx(1.0)

    def test_verify_alice_requires_all_outcomes(self, bob):
        with pytest.raises(ProtocolError):
            bob.verify_alice({}, (0, 1))


class TestBobMeasurementAndDecoding:
    def test_bell_measure_reads_encoded_paulis(self, bob):
        pairs = fresh_pairs(3)
        pairs = Alice.apply_plan(pairs, {0: "I", 1: "Z", 2: "Y"})
        outcomes = bob.bell_measure(pairs, (0, 1, 2))
        assert outcomes[0] is BellState.PHI_PLUS
        assert outcomes[1] is BellState.PHI_MINUS
        assert outcomes[2] is BellState.PSI_MINUS

    def test_bell_measure_unknown_position(self, bob):
        with pytest.raises(ProtocolError):
            bob.bell_measure(fresh_pairs(1), (5,))

    def test_decode_message_bits_order_follows_positions(self, bob):
        outcomes = {
            4: expected_bell_state("X", "I"),  # bits 10
            9: expected_bell_state("I", "I"),  # bits 00
        }
        assert Bob.decode_message_bits(outcomes, (4, 9)) == (1, 0, 0, 0)
        assert Bob.decode_message_bits(outcomes, (9, 4)) == (0, 0, 1, 0)

    def test_decode_message_bits_missing_position(self, bob):
        with pytest.raises(ProtocolError):
            Bob.decode_message_bits({}, (1,))

    def test_qubit_constants(self):
        assert ALICE_QUBIT == 0
        assert BOB_QUBIT == 1
