"""Tests for the resource-accounting / efficiency metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.protocol.config import ProtocolConfig
from repro.protocol.efficiency import ResourceAccount, account_for_config


def config(message_length=64, **overrides) -> ProtocolConfig:
    base = ProtocolConfig.default(message_length=message_length, **overrides)
    return base


class TestResourceAccount:
    def test_basic_accounting(self):
        cfg = config(message_length=64, identity_pairs=8, check_pairs_per_round=256)
        account = account_for_config(cfg)
        assert account.message_bits == 64
        assert account.epr_pairs_total == cfg.total_pairs
        assert account.transmitted_qubits == cfg.num_message_pairs + 2 * 8 + 256
        assert account.classical_bits > 0
        assert 0 < account.total_efficiency < 1

    def test_qubits_per_message_bit_dominated_by_security_overhead(self):
        # The Table I figure of "1 qubit per message bit" counts only the
        # message pairs; the full account shows the DI-check overhead.
        small_check = account_for_config(config(check_pairs_per_round=16))
        large_check = account_for_config(config(check_pairs_per_round=1024))
        assert small_check.qubits_per_message_bit < large_check.qubits_per_message_bit

    def test_transmitted_qubit_cost_for_long_messages(self):
        # For long messages with fixed security overhead, the *transmitted*
        # qubit cost tends to 1/2 per message bit (one transmitted qubit per
        # dense-coded pair carrying two bits); Table I's "1 qubit per message
        # bit" counts both halves of the pair.
        account = account_for_config(
            ProtocolConfig(
                message_length=4096,
                num_check_bits=2,
                identity_pairs=8,
                check_pairs_per_round=16,
            )
        )
        assert account.qubits_per_message_bit == pytest.approx(0.52, abs=0.05)

    def test_overhead_fraction_increases_with_check_pairs(self):
        lean = account_for_config(config(check_pairs_per_round=32))
        heavy = account_for_config(config(check_pairs_per_round=1024))
        assert heavy.pair_overhead_fraction > lean.pair_overhead_fraction
        assert 0 < lean.pair_overhead_fraction < 1

    def test_identity_length_increases_cost(self):
        short_id = account_for_config(config(identity_pairs=2))
        long_id = account_for_config(config(identity_pairs=32))
        assert long_id.transmitted_qubits > short_id.transmitted_qubits

    def test_summary_round_trip(self):
        account = account_for_config(config())
        summary = account.summary()
        assert summary["message_bits"] == account.message_bits
        assert summary["total_efficiency"] == pytest.approx(account.total_efficiency)

    def test_invalid_config_rejected(self):
        bad = ProtocolConfig(message_length=3, num_check_bits=2)
        with pytest.raises(ConfigurationError):
            account_for_config(bad)

    def test_dataclass_is_frozen(self):
        account = account_for_config(config())
        with pytest.raises(AttributeError):
            account.message_bits = 1  # type: ignore[misc]

    def test_efficiency_improves_with_message_length(self):
        short = account_for_config(config(message_length=16))
        long = account_for_config(config(message_length=256))
        assert long.total_efficiency > short.total_efficiency

    def test_account_type(self):
        assert isinstance(account_for_config(config()), ResourceAccount)
