"""Unit tests for ProtocolConfig, ProtocolResult and ProtocolTranscript."""

from __future__ import annotations

import pytest

from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.exceptions import ConfigurationError
from repro.protocol.chsh import CHSHEstimate
from repro.protocol.config import ProtocolConfig
from repro.protocol.identity import Identity
from repro.protocol.results import AbortReason, ProtocolResult
from repro.protocol.transcript import ProtocolTranscript


class TestProtocolConfig:
    def test_default_builder(self):
        config = ProtocolConfig.default(message_length=16, seed=1)
        config.validate()
        assert config.message_length == 16
        assert (config.message_length + config.num_check_bits) % 2 == 0
        assert isinstance(config.channel, IdentityChainChannel)
        assert config.channel.eta == 10

    def test_default_builder_odd_message(self):
        config = ProtocolConfig.default(message_length=7)
        assert (config.message_length + config.num_check_bits) % 2 == 0

    def test_default_rejects_empty_message(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig.default(message_length=0)

    def test_pair_counts(self):
        config = ProtocolConfig.default(message_length=16, identity_pairs=4,
                                        check_pairs_per_round=32)
        assert config.num_message_pairs == (16 + config.num_check_bits) // 2
        assert config.total_pairs == config.num_message_pairs + 2 * 4 + 2 * 32

    def test_qubits_per_message_bit_close_to_paper_value(self):
        # Table I counts 1 qubit per message bit; the check-bit overhead makes
        # the effective value slightly larger than 1.
        config = ProtocolConfig.default(message_length=64)
        assert 1.0 <= config.qubits_per_message_bit <= 1.5

    def test_validate_rejects_odd_total(self):
        config = ProtocolConfig(message_length=3, num_check_bits=2)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_validate_rejects_bad_tolerances(self):
        config = ProtocolConfig(message_length=2, num_check_bits=2,
                                authentication_tolerance=1.5)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_validate_rejects_mismatched_identity(self):
        config = ProtocolConfig(
            message_length=2,
            num_check_bits=2,
            identity_pairs=4,
            alice_identity=Identity.random(2, rng=0),
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_materialise_identities_uses_supplied_values(self):
        alice_id = Identity.random(8, owner="alice", rng=1)
        config = ProtocolConfig(message_length=2, num_check_bits=2, alice_identity=alice_id)
        materialised_alice, materialised_bob = config.materialise_identities(rng=2)
        assert materialised_alice.matches(alice_id)
        assert materialised_bob.num_pairs == config.identity_pairs

    def test_materialise_identities_is_seed_deterministic(self):
        config = ProtocolConfig(message_length=2, num_check_bits=2)
        a1, b1 = config.materialise_identities(rng=3)
        a2, b2 = config.materialise_identities(rng=3)
        assert a1.matches(a2)
        assert b1.matches(b2)

    def test_with_channel_and_with_seed_return_copies(self):
        config = ProtocolConfig.default(message_length=4, seed=1)
        new = config.with_channel(NoiselessChannel()).with_seed(99)
        assert isinstance(new.channel, NoiselessChannel)
        assert new.seed == 99
        assert isinstance(config.channel, IdentityChainChannel)
        assert config.seed == 1


class TestProtocolResult:
    def _result(self, **overrides):
        base = dict(
            success=True,
            abort_reason=AbortReason.NONE,
            sent_message=(1, 0, 1, 1),
            delivered_message=(1, 0, 1, 1),
        )
        base.update(overrides)
        return ProtocolResult(**base)

    def test_string_views(self):
        result = self._result()
        assert result.sent_message_string == "1011"
        assert result.delivered_message_string == "1011"
        assert result.message_delivered_correctly()

    def test_aborted_result(self):
        result = self._result(
            success=False,
            abort_reason=AbortReason.ROUND1_CHSH_FAILED,
            delivered_message=None,
        )
        assert result.aborted
        assert result.eavesdropper_detected
        assert result.delivered_message_string is None
        assert not result.message_delivered_correctly()

    def test_summary_is_json_friendly(self):
        estimate = CHSHEstimate(value=2.7, correlations={}, counts={}, num_pairs=10)
        result = self._result(chsh_round1=estimate)
        summary = result.summary()
        assert summary["chsh_round1"] == pytest.approx(2.7)
        assert summary["abort_reason"] == "none"

    def test_phase_lookup(self):
        result = self._result()
        with pytest.raises(KeyError):
            result.phase("missing")


class TestProtocolTranscript:
    def test_announce_and_filter(self):
        transcript = ProtocolTranscript()
        transcript.announce("alice", "positions", [1, 2, 3])
        transcript.announce("bob", "results", ["phi_plus"])
        assert len(transcript.announcements()) == 2
        assert transcript.announcements(topic="positions")[0].payload == [1, 2, 3]
        assert transcript.announced_topics() == ["positions", "results"]

    def test_record_phase_and_lookup(self):
        transcript = ProtocolTranscript()
        transcript.record_phase("round1_security_check", True, chsh_value=2.8)
        report = transcript.phase("round1_security_check")
        assert report.passed
        assert report.details["chsh_value"] == pytest.approx(2.8)

    def test_phase_lookup_missing(self):
        with pytest.raises(KeyError):
            ProtocolTranscript().phase("nope")

    def test_passed_all_phases(self):
        transcript = ProtocolTranscript()
        transcript.record_phase("a", True)
        assert transcript.passed_all_phases()
        transcript.record_phase("b", False)
        assert not transcript.passed_all_phases()
