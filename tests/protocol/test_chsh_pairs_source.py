"""Unit tests for the DI security check, the pair register and the source."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocol.chsh import CHSHEstimate, CHSHSettings, DISecurityCheck
from repro.protocol.pairs import EPRPairRegister, PairRole
from repro.protocol.source import EntanglementSource
from repro.quantum.bell import BellState, bell_state, TSIRELSON_BOUND
from repro.quantum.channels import depolarizing_channel
from repro.quantum.density import DensityMatrix
from repro.quantum.states import Statevector


class TestCHSHSettings:
    def test_paper_defaults(self):
        settings = CHSHSettings()
        assert settings.alice_angles == (math.pi / 4, 0.0, math.pi / 2)
        assert settings.bob_angles == (math.pi / 4, -math.pi / 4)
        assert settings.threshold == 2.0

    def test_chsh_alice_angles_excludes_a0(self):
        assert CHSHSettings().chsh_alice_angles == (0.0, math.pi / 2)

    def test_invalid_angle_counts(self):
        with pytest.raises(ProtocolError):
            CHSHSettings(alice_angles=(0.0, 1.0))
        with pytest.raises(ProtocolError):
            CHSHSettings(bob_angles=(0.0,))

    def test_invalid_threshold(self):
        with pytest.raises(ProtocolError):
            CHSHSettings(threshold=3.0)


class TestDISecurityCheck:
    def test_honest_pairs_violate_classical_bound(self):
        pairs = [bell_state(BellState.PHI_PLUS) for _ in range(600)]
        estimate = DISecurityCheck().estimate(pairs, rng=1)
        assert estimate.value > 2.4
        assert estimate.passed()
        assert estimate.violates_classical_bound()
        assert estimate.epsilon == pytest.approx(TSIRELSON_BOUND - estimate.value)

    def test_product_states_fail_the_check(self):
        pairs = [Statevector.from_label("00") for _ in range(600)]
        estimate = DISecurityCheck().estimate(pairs, rng=2)
        assert estimate.value <= 2.0
        assert not estimate.passed()

    def test_maximally_mixed_pairs_give_near_zero(self):
        pairs = [DensityMatrix.maximally_mixed(2) for _ in range(400)]
        estimate = DISecurityCheck().estimate(pairs, rng=3)
        assert abs(estimate.value) < 0.7

    def test_depolarized_pairs_track_analytic_value(self):
        p = 0.3
        noisy = depolarizing_channel(p).apply(
            bell_state(BellState.PHI_PLUS).density_matrix(), [0]
        )
        estimate = DISecurityCheck().estimate([noisy] * 2000, rng=4)
        assert estimate.value == pytest.approx((1 - p) * TSIRELSON_BOUND, abs=0.25)

    def test_use_a0_discards_some_samples(self):
        settings = CHSHSettings(use_a0=True)
        pairs = [bell_state(BellState.PHI_PLUS) for _ in range(300)]
        estimate = DISecurityCheck(settings).estimate(pairs, rng=5)
        assert sum(estimate.counts.values()) < 300
        assert estimate.num_pairs == 300

    def test_counts_cover_all_setting_pairs(self):
        pairs = [bell_state(BellState.PHI_PLUS) for _ in range(400)]
        estimate = DISecurityCheck().estimate(pairs, rng=6)
        assert set(estimate.counts) == {(1, 1), (1, 2), (2, 1), (2, 2)}
        assert all(count > 50 for count in estimate.counts.values())

    def test_empty_pair_list_rejected(self):
        with pytest.raises(ProtocolError):
            DISecurityCheck().estimate([], rng=0)

    def test_single_qubit_pair_rejected(self):
        with pytest.raises(ProtocolError):
            DISecurityCheck().estimate([Statevector.from_label("0")], rng=0)

    def test_reproducible_with_seed(self):
        pairs = [bell_state(BellState.PHI_PLUS) for _ in range(100)]
        first = DISecurityCheck().estimate(pairs, rng=7)
        second = DISecurityCheck().estimate(pairs, rng=7)
        assert first.value == pytest.approx(second.value)

    def test_required_pairs_rule_of_thumb(self):
        assert DISecurityCheck.required_pairs(0.1) == 1600
        assert DISecurityCheck.required_pairs(0.4) == 100
        with pytest.raises(ProtocolError):
            DISecurityCheck.required_pairs(0.0)

    def test_estimate_repr_mentions_value(self):
        estimate = CHSHEstimate(
            value=2.5, correlations={}, counts={}, num_pairs=10
        )
        assert "2.5" in repr(estimate)


class TestEPRPairRegister:
    def test_total_pairs_formula(self):
        register = EPRPairRegister(num_message_pairs=10, num_identity_pairs=4, num_check_pairs=20)
        assert register.total_pairs == 10 + 2 * 4 + 2 * 20

    def test_assignment_partitions_all_pairs(self):
        register = EPRPairRegister(5, 2, 3)
        rng = np.random.default_rng(0)
        round1 = register.assign_round1_check(rng)
        round2 = register.assign_round2_check(rng)
        message = register.assign_message(rng)
        alice_id = register.assign_alice_identity(rng)
        bob_id = register.assign_bob_identity(rng)
        all_positions = [*round1, *round2, *message, *alice_id, *bob_id]
        assert len(all_positions) == register.total_pairs
        assert len(set(all_positions)) == register.total_pairs
        assert register.assignment_complete()

    def test_roles_are_recorded(self):
        register = EPRPairRegister(5, 2, 3)
        round1 = register.assign_round1_check(rng=1)
        for position in round1:
            assert register.role_of(position) is PairRole.ROUND1_CHECK
        assert register.positions(PairRole.ROUND1_CHECK) == round1

    def test_summary(self):
        register = EPRPairRegister(5, 2, 3)
        register.assign_round1_check(rng=1)
        summary = register.summary()
        assert summary["round1_check"] == 3
        assert summary["unassigned"] == register.total_pairs - 3

    def test_over_assignment_rejected(self):
        register = EPRPairRegister(1, 1, 1)
        register.assign_round1_check(rng=0)
        register.assign_round2_check(rng=0)
        register.assign_message(rng=0)
        register.assign_alice_identity(rng=0)
        register.assign_bob_identity(rng=0)
        with pytest.raises(ProtocolError):
            register.assign_message(rng=0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            EPRPairRegister(0, 1, 1)
        with pytest.raises(ProtocolError):
            EPRPairRegister(1, 0, 1)
        with pytest.raises(ProtocolError):
            EPRPairRegister(1, 1, 0)

    def test_role_of_unknown_position(self):
        with pytest.raises(ProtocolError):
            EPRPairRegister(1, 1, 1).role_of(999)


class TestEntanglementSource:
    def test_ideal_source_emits_phi_plus(self):
        source = EntanglementSource()
        pair = source.emit()
        assert pair.fidelity(bell_state(BellState.PHI_PLUS)) == pytest.approx(1.0)
        assert source.emitted == 1

    def test_other_bell_states(self):
        source = EntanglementSource(bell_state_kind=BellState.PSI_MINUS)
        assert source.emit().fidelity(bell_state(BellState.PSI_MINUS)) == pytest.approx(1.0)

    def test_noisy_source(self):
        source = EntanglementSource(preparation_noise=depolarizing_channel(0.2))
        pair = source.emit()
        assert pair.fidelity(bell_state(BellState.PHI_PLUS)) < 1.0

    def test_two_qubit_preparation_noise(self):
        source = EntanglementSource(preparation_noise=depolarizing_channel(0.2, num_qubits=2))
        assert source.emit().purity() < 1.0

    def test_override_controls_emission(self):
        malicious = DensityMatrix(Statevector.from_label("00"))
        source = EntanglementSource(override=lambda index: malicious)
        assert source.emit().fidelity(malicious) == pytest.approx(1.0)

    def test_override_must_return_two_qubit_state(self):
        source = EntanglementSource(override=lambda index: DensityMatrix.zero_state(1))
        with pytest.raises(ProtocolError):
            source.emit()

    def test_emit_many(self):
        source = EntanglementSource()
        assert len(source.emit_many(5)) == 5
        with pytest.raises(ProtocolError):
            source.emit_many(-1)

    def test_invalid_bell_state_kind(self):
        with pytest.raises(ProtocolError):
            EntanglementSource(bell_state_kind="phi_plus")

    def test_invalid_preparation_noise(self):
        with pytest.raises(ProtocolError):
            EntanglementSource(preparation_noise=depolarizing_channel(0.1, num_qubits=3))
