"""Integration tests for the end-to-end UA-DI-QSDC protocol runner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.exceptions import SecurityCheckFailure
from repro.protocol.config import ProtocolConfig
from repro.protocol.identity import Identity
from repro.protocol.results import AbortReason
from repro.protocol.runner import UADIQSDCProtocol
from repro.protocol.source import EntanglementSource
from repro.quantum.channels import depolarizing_channel
from repro.quantum.density import DensityMatrix
from repro.quantum.states import Statevector


def small_config(**overrides) -> ProtocolConfig:
    """A fast configuration used throughout the integration tests."""
    defaults = dict(
        message_length=8,
        num_check_bits=4,
        identity_pairs=4,
        check_pairs_per_round=48,
        channel=NoiselessChannel(),
        seed=11,
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


class TestHonestExecution:
    def test_ideal_channel_delivers_message_exactly(self):
        result = UADIQSDCProtocol(small_config()).run("10110010")
        assert result.success
        assert result.delivered_message_string == "10110010"
        assert result.abort_reason is AbortReason.NONE
        assert result.message_bit_error_rate == pytest.approx(0.0)
        assert result.bob_authentication_error == pytest.approx(0.0)
        assert result.alice_authentication_error == pytest.approx(0.0)

    def test_chsh_values_violate_classical_bound(self):
        result = UADIQSDCProtocol(small_config(check_pairs_per_round=200)).run("10110010")
        assert result.chsh_round1.value > 2.0
        assert result.chsh_round2.value > 2.0

    def test_noisy_channel_at_eta_10_still_succeeds(self):
        config = small_config(channel=IdentityChainChannel(eta=10), seed=3)
        result = UADIQSDCProtocol(config).run("10110010")
        assert result.success
        assert result.delivered_message_string == "10110010"

    def test_message_as_bit_tuple(self):
        result = UADIQSDCProtocol(small_config()).run((1, 0, 1, 1, 0, 0, 1, 0))
        assert result.success
        assert result.delivered_message == (1, 0, 1, 1, 0, 0, 1, 0)

    def test_reproducible_with_seed(self):
        first = UADIQSDCProtocol(small_config(seed=21)).run("10110010")
        second = UADIQSDCProtocol(small_config(seed=21)).run("10110010")
        assert first.summary() == second.summary()

    def test_pair_summary_matches_configuration(self):
        config = small_config()
        result = UADIQSDCProtocol(config).run("10110010")
        assert result.pair_summary["message"] == config.num_message_pairs
        assert result.pair_summary["alice_identity"] == config.identity_pairs
        assert result.pair_summary["bob_identity"] == config.identity_pairs
        assert result.pair_summary["round1_check"] == config.check_pairs_per_round
        assert result.pair_summary["round2_check"] == config.check_pairs_per_round
        assert result.pair_summary["unassigned"] == 0

    def test_phases_recorded_in_order(self):
        result = UADIQSDCProtocol(small_config()).run("10110010")
        names = [phase.name for phase in result.phases]
        assert names == [
            "entanglement_sharing",
            "round1_security_check",
            "encoding",
            "transmission",
            "bob_authentication",
            "alice_authentication",
            "round2_security_check",
            "message_decoding",
        ]

    def test_supplied_identities_are_used(self):
        alice_id = Identity.from_string("11011011", owner="alice")
        bob_id = Identity.from_string("00100100", owner="bob")
        config = small_config(alice_identity=alice_id, bob_identity=bob_id)
        result = UADIQSDCProtocol(config).run("10110010")
        assert result.success

    def test_rejects_invalid_message_characters(self):
        with pytest.raises(Exception):
            UADIQSDCProtocol(small_config()).run("10a1")

    def test_message_length_mismatch_detected(self):
        # Config expects 8 message bits; a 6-bit message leaves the pair budget
        # inconsistent and must raise.
        with pytest.raises(Exception):
            UADIQSDCProtocol(small_config()).run("101100")


class TestMaliciousSources:
    def test_separable_source_fails_round1_chsh(self):
        separable = DensityMatrix(Statevector.from_label("00"))
        config = small_config(
            source=EntanglementSource(override=lambda index: separable),
            check_pairs_per_round=96,
        )
        result = UADIQSDCProtocol(config).run("10110010")
        assert not result.success
        assert result.abort_reason is AbortReason.ROUND1_CHSH_FAILED
        assert result.delivered_message is None

    def test_raise_on_abort(self):
        separable = DensityMatrix(Statevector.from_label("00"))
        config = small_config(
            source=EntanglementSource(override=lambda index: separable),
            check_pairs_per_round=96,
            raise_on_abort=True,
        )
        with pytest.raises(SecurityCheckFailure):
            UADIQSDCProtocol(config).run("10110010")

    def test_weakly_entangled_source_still_works_if_above_threshold(self):
        noisy_source = EntanglementSource(preparation_noise=depolarizing_channel(0.05))
        config = small_config(source=noisy_source, check_pairs_per_round=128, seed=5)
        result = UADIQSDCProtocol(config).run("10110010")
        # 5% depolarizing keeps CHSH ≈ 0.95^2 * 2.83 ≈ 2.55 > 2, so the run passes.
        assert result.success

    def test_heavily_depolarized_source_aborts(self):
        noisy_source = EntanglementSource(
            preparation_noise=depolarizing_channel(0.5, num_qubits=2)
        )
        config = small_config(source=noisy_source, check_pairs_per_round=128, seed=6)
        result = UADIQSDCProtocol(config).run("10110010")
        assert not result.success
        assert result.abort_reason in (
            AbortReason.ROUND1_CHSH_FAILED,
            AbortReason.ROUND2_CHSH_FAILED,
        )


class TestNoisyChannels:
    def test_very_long_channel_corrupts_or_aborts(self):
        config = small_config(
            channel=IdentityChainChannel(eta=3000), seed=9, check_pairs_per_round=96
        )
        result = UADIQSDCProtocol(config).run("10110010")
        if result.success:
            # If the checks pass, the decoded message may still contain errors,
            # but the run must report a nonzero error somewhere.
            assert (
                result.message_bit_error_rate > 0
                or result.check_bit_error_rate > 0
                or result.delivered_message_string != "10110010"
            )
        else:
            assert result.abort_reason is not AbortReason.NONE

    def test_transcript_announcements_do_not_reveal_message_outcomes(self):
        config = small_config()
        result = UADIQSDCProtocol(config).run("10110010")
        assert result.success
        # Announced topics never include decoded message data.
        topics = {phase.name for phase in result.phases}
        assert "message_decoding" in topics


class TestDistributionChannel:
    def test_noisy_distribution_channel_lowers_chsh(self):
        clean = UADIQSDCProtocol(small_config(check_pairs_per_round=256, seed=13)).run(
            "10110010"
        )
        noisy = UADIQSDCProtocol(
            small_config(
                distribution_channel=IdentityChainChannel(eta=2000),
                check_pairs_per_round=256,
                seed=13,
            )
        ).run("10110010")
        assert noisy.chsh_round1.value < clean.chsh_round1.value + 0.2


class TestPropertyBasedRoundTrip:
    @given(
        seed=st.integers(0, 2**31 - 1),
        message=st.lists(st.integers(0, 1), min_size=2, max_size=12),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_messages_round_trip_on_ideal_channel(self, seed, message):
        if len(message) % 2 != 0:
            message = message + [0]
        config = ProtocolConfig(
            message_length=len(message),
            num_check_bits=2 if len(message) % 2 == 0 else 3,
            identity_pairs=2,
            check_pairs_per_round=24,
            channel=NoiselessChannel(),
            seed=seed,
        )
        result = UADIQSDCProtocol(config).run(tuple(message))
        # With an ideal channel the only possible failure is a statistical
        # CHSH fluctuation below threshold (rare but possible at d=24).
        if result.success:
            assert result.delivered_message == tuple(message)
        else:
            assert result.abort_reason in (
                AbortReason.ROUND1_CHSH_FAILED,
                AbortReason.ROUND2_CHSH_FAILED,
            )
