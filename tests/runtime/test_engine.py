"""Behavioural tests for the concurrent delivery engine."""

import asyncio
import threading
import time

import pytest

from repro.api.config import ServiceConfig
from repro.api.service import MessagingService
from repro.exceptions import ConfigurationError
from repro.runtime.engine import AsyncDeliveryEngine, Delivery, DeliveryEngine


@pytest.fixture(scope="module")
def config():
    return ServiceConfig.ideal()


class TestBasicDelivery:
    def test_send_resolves_to_service_report(self, config):
        with DeliveryEngine(config, max_workers=2, seed=3) as engine:
            delivery = engine.send("hello runtime")
        assert delivery.ok and delivery.status == "delivered"
        assert delivery.report.delivered_payload == "hello runtime"
        assert delivery.queue_wait >= 0.0
        assert delivery.service_time > 0.0
        assert delivery.latency >= delivery.service_time

    def test_accepts_existing_service_instance(self, config):
        service = MessagingService(config)
        with DeliveryEngine(service, max_workers=1, seed=3) as engine:
            assert engine.service is service
            assert engine.send("shared").ok

    def test_send_many_preserves_submission_order(self, config):
        payloads = [f"msg {index}" for index in range(8)]
        with DeliveryEngine(config, max_workers=4, seed=9) as engine:
            deliveries = engine.send_many(payloads)
        assert [d.request.request_id for d in deliveries] == list(range(8))
        assert [d.report.delivered_payload for d in deliveries] == payloads

    def test_exceptions_resolve_as_error_not_worker_death(self, config):
        with DeliveryEngine(config, max_workers=1, seed=1) as engine:
            bad = engine.send(object())  # unencodable payload type
            good = engine.send("still alive")
        assert bad.status == "error" and bad.error is not None
        assert good.ok

    def test_summary_is_json_friendly(self, config):
        import json

        with DeliveryEngine(config, max_workers=1, seed=2) as engine:
            delivery = engine.send("summary")
        encoded = json.dumps(delivery.summary())
        assert "delivered" in encoded

    def test_validation(self, config):
        with pytest.raises(ConfigurationError):
            DeliveryEngine(config, max_workers=0)


class TestBackpressurePolicies:
    def test_reject_policy_fails_fast_when_full(self, config):
        engine = DeliveryEngine(
            config, max_workers=1, queue_capacity=1, policy="reject", seed=4
        )
        try:
            futures = [engine.submit("x") for _ in range(10)]
            deliveries = [future.result() for future in futures]
        finally:
            engine.close()
        statuses = {d.status for d in deliveries}
        rejected = [d for d in deliveries if d.status == "rejected"]
        assert rejected and all(d.reason == "queue_full" for d in rejected)
        assert statuses <= {"delivered", "rejected"}
        assert engine.stats["rejected"] == len(rejected)

    def test_shed_oldest_drops_stalest_requests(self, config):
        engine = DeliveryEngine(
            config, max_workers=1, queue_capacity=2, policy="shed_oldest", seed=4
        )
        try:
            futures = [engine.submit("x") for _ in range(10)]
            deliveries = [future.result() for future in futures]
        finally:
            engine.close()
        shed = [d for d in deliveries if d.status == "shed"]
        assert shed and all(d.reason == "queue_full" for d in shed)
        executed = [d for d in deliveries if d.report is not None]
        # shed_oldest keeps the freshest work: the last submission survives.
        assert deliveries[-1].status not in ("shed", "rejected")
        assert len(executed) + len(shed) == 10

    def test_block_policy_drops_nothing(self, config):
        with DeliveryEngine(
            config, max_workers=2, queue_capacity=2, policy="block", seed=4
        ) as engine:
            deliveries = engine.send_many(["p"] * 8)
        assert all(d.report is not None for d in deliveries)
        assert engine.stats["rejected"] == engine.stats["shed"] == 0

    def test_rate_limit_rejects_past_burst(self, config):
        engine = DeliveryEngine(
            config,
            max_workers=2,
            policy="reject",
            rate_limit=0.001,  # one token per ~17 minutes
            burst=2,
            seed=4,
        )
        try:
            deliveries = [engine.submit("x").result() for _ in range(4)]
        finally:
            engine.close()
        rate_limited = [d for d in deliveries if d.reason == "rate_limited"]
        assert len(rate_limited) == 2
        assert all(d.status == "rejected" for d in rate_limited)

    def test_admission_timeout_expires_stale_requests(self, config):
        engine = DeliveryEngine(
            config, max_workers=1, admission_timeout=0.0, seed=4
        )
        try:
            # With zero patience, anything that has to wait behind the
            # in-flight send expires instead of executing.
            futures = [engine.submit("x") for _ in range(6)]
            time.sleep(0.05)
            deliveries = [future.result() for future in futures]
        finally:
            engine.close()
        expired = [d for d in deliveries if d.status == "expired"]
        assert expired and all(d.reason == "admission_timeout" for d in expired)


class TestGracefulShutdown:
    def test_close_drains_queued_work(self, config):
        engine = DeliveryEngine(config, max_workers=2, seed=5)
        futures = [engine.submit("x") for _ in range(6)]
        stats = engine.close(drain=True)
        assert all(future.result().report is not None for future in futures)
        assert stats["delivered"] + stats["undelivered"] + stats["error"] == 6

    def test_close_without_drain_cancels_queue(self, config):
        engine = DeliveryEngine(config, max_workers=1, seed=5)
        futures = [engine.submit("x") for _ in range(8)]
        engine.close(drain=False)
        deliveries = [future.result() for future in futures]
        cancelled = [d for d in deliveries if d.status == "cancelled"]
        assert cancelled and all(d.reason == "engine_closed" for d in cancelled)
        # In-flight work still completed; nothing hangs.
        assert all(d.finished_at is not None for d in deliveries)

    def test_submissions_after_close_are_rejected(self, config):
        engine = DeliveryEngine(config, max_workers=1, seed=5)
        engine.close()
        delivery = engine.submit("late").result()
        assert delivery.status == "rejected" and delivery.reason == "engine_closed"

    def test_close_is_idempotent(self, config):
        engine = DeliveryEngine(config, max_workers=1, seed=5)
        engine.send("x")
        first = engine.close()
        second = engine.close()
        assert first == second

    def test_drain_timeout_cancels_unstarted_work(self, config):
        engine = DeliveryEngine(config, max_workers=1, seed=5)
        futures = [engine.submit("x") for _ in range(20)]
        engine.close(drain=True, timeout=0.05)
        deliveries = [future.result(timeout=30) for future in futures]
        assert any(d.status == "cancelled" and d.reason == "drain_timeout"
                   for d in deliveries)

    def test_context_manager_drains_on_clean_exit(self, config):
        with DeliveryEngine(config, max_workers=2, seed=5) as engine:
            futures = [engine.submit("x") for _ in range(4)]
        assert all(future.done() for future in futures)
        assert all(future.result().report is not None for future in futures)


class TestConcurrency:
    def test_parallel_submitters_all_resolve(self, config):
        results: list[Delivery] = []
        lock = threading.Lock()
        with DeliveryEngine(config, max_workers=4, seed=6) as engine:

            def client(count: int) -> None:
                deliveries = [engine.send(f"c{count}-{i}") for i in range(3)]
                with lock:
                    results.extend(deliveries)

            threads = [threading.Thread(target=client, args=(t,)) for t in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(results) == 24
        assert all(d.ok for d in results)
        assert engine.stats["delivered"] == 24


class TestAsyncFacade:
    def test_async_gather(self, config):
        async def main():
            async with AsyncDeliveryEngine(config, max_workers=4, seed=7) as engine:
                return await asyncio.gather(
                    *(engine.send(f"async {i}") for i in range(6))
                )

        deliveries = asyncio.run(main())
        assert len(deliveries) == 6
        assert all(d.ok for d in deliveries)

    def test_async_submit_returns_bridgeable_future(self, config):
        async def main():
            engine = AsyncDeliveryEngine(config, max_workers=1, seed=7)
            try:
                future = await engine.submit("bridge")
                return await asyncio.wrap_future(future)
            finally:
                await engine.close()

        assert asyncio.run(main()).ok
