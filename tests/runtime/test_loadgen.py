"""Tests for the sustained-load harness (virtual-clock DES + calibration)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import interrupt
from repro.runtime.loadgen import (
    ARRIVAL_PROCESSES,
    LoadResult,
    ServiceTimeModel,
    percentile,
    run_live_calibration,
    simulate_load,
)

MODEL = ServiceTimeModel(base_time=0.01, per_hop_time=0.01, jitter=0.05,
                         abort_probability=0.1)


def run(**overrides) -> LoadResult:
    kwargs = dict(
        messages=2000,
        service_model=MODEL,
        seed=7,
        arrival="poisson",
        arrival_rate=200.0,
        workers=4,
    )
    kwargs.update(overrides)
    return simulate_load(**kwargs)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 0.999) == 100.0

    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0


class TestServiceTimeModel:
    def test_hops_scale_the_mean(self, rng):
        flat = ServiceTimeModel(base_time=0.01, per_hop_time=0.005, jitter=0.0)
        assert flat.sample(rng, hops=1) == pytest.approx(0.01)
        assert flat.sample(rng, hops=3) == pytest.approx(0.02)

    def test_jitter_keeps_times_positive(self, rng):
        noisy = ServiceTimeModel(base_time=1e-4, jitter=0.5)
        assert all(noisy.sample(rng) > 0 for _ in range(200))

    def test_from_physics_matches_scheduler_formula(self):
        from repro.experiments.network_scale import build_network
        from repro.network.sessions import SessionParameters

        topology = build_network(topology="grid", rows=2, cols=2, qubit_capacity=None)
        params = SessionParameters()
        model = ServiceTimeModel.from_physics(
            topology, message_length=16, session_params=params, hop_overhead=1e-3
        )
        pairs = params.pairs_per_hop(16)
        durations = [link.quantum_channel.duration() for link in topology.links]
        expected = pairs * sum(durations) / len(durations) + 1e-3
        assert model.base_time == pytest.approx(expected)
        assert model.per_hop_time == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceTimeModel(base_time=0.0)
        with pytest.raises(ConfigurationError):
            ServiceTimeModel(base_time=1.0, abort_probability=1.5)


class TestSimulateLoad:
    def test_reruns_are_byte_identical(self):
        first = run().summary()
        second = run().summary()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_different_seeds_differ(self):
        assert run(seed=1).summary() != run(seed=2).summary()

    def test_block_policy_conserves_messages(self):
        result = run(policy="block")
        assert result.offered == 2000
        assert result.dropped == 0
        assert result.delivered + result.aborted == 2000
        assert result.aborted > 0  # abort_probability=0.1 must materialise

    def test_reject_policy_drops_under_overload(self):
        result = run(arrival="uniform", arrival_rate=2000.0, workers=1,
                     queue_capacity=8, policy="reject")
        assert result.rejected > 0
        assert result.offered == result.completed + result.dropped

    def test_shed_policy_sheds_under_overload(self):
        result = run(arrival="burst", arrival_rate=2000.0, burst_size=64,
                     workers=1, queue_capacity=8, policy="shed_oldest")
        assert result.shed > 0
        assert result.offered == result.completed + result.dropped

    def test_admission_timeout_expires(self):
        result = run(arrival_rate=2000.0, workers=1, admission_timeout=0.05)
        assert result.expired > 0

    def test_rate_limit_rejects_under_non_block_policy(self):
        result = run(policy="reject", rate_limit=50.0, burst_tokens=10)
        assert result.rejected > 0

    def test_rate_limit_delays_under_block_policy(self):
        limited = run(messages=500, policy="block", rate_limit=50.0)
        free = run(messages=500, policy="block")
        assert limited.dropped == 0
        assert limited.duration > free.duration  # throttled, not dropped

    def test_closed_loop_conserves_messages(self):
        result = run(arrival="closed", arrival_rate=None, clients=16,
                     think_time=0.005)
        assert result.offered == 2000
        assert result.dropped == 0
        assert result.completed == 2000

    def test_latency_percentiles_are_monotone(self):
        stats = run().latency_percentiles()
        assert 0 < stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["p999"]

    def test_queue_depth_series_is_thinned(self):
        result = run()
        assert 0 < len(result.queue_depth_series) <= 64
        times = [t for t, _ in result.queue_depth_series]
        assert times == sorted(times)

    def test_topology_routes_lengthen_service(self):
        from repro.experiments.network_scale import build_network

        topology = build_network(topology="grid", rows=3, cols=3, qubit_capacity=None)
        routed = run(topology=topology, arrival_rate=50.0, messages=500)
        point = run(arrival_rate=50.0, messages=500)
        # Multi-hop routes mean strictly more service work than 1-hop.
        assert routed.busy_time > point.busy_time

    def test_interrupt_stops_early_and_marks_result(self):
        interrupt.request_shutdown()
        try:
            result = run(messages=20_000, interrupt_poll=64)
        finally:
            interrupt.reset_shutdown()
        assert result.interrupted
        assert result.completed + result.dropped < 20_000

    def test_utilization_bounded(self):
        result = run()
        assert 0.0 < result.utilization <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run(messages=0)
        with pytest.raises(ConfigurationError):
            run(arrival="bursty")
        with pytest.raises(ConfigurationError):
            run(arrival_rate=None)
        with pytest.raises(ConfigurationError):
            run(workers=0)
        assert "closed" in ARRIVAL_PROCESSES


class TestLiveCalibration:
    def test_deterministic_across_worker_counts(self):
        from repro.api.config import ServiceConfig

        config = ServiceConfig.ideal()
        wide = run_live_calibration(config, sends=6, seed=11, max_workers=4)
        narrow = run_live_calibration(config, sends=6, seed=11, max_workers=1)
        assert wide["abort_probability"] == narrow["abort_probability"]
        assert wide["delivered"] == narrow["delivered"]
        assert wide["sends"] == 6
        assert wide["wall_total_time"] > 0
