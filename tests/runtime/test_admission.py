"""Unit tests for the admission-control building blocks."""

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.admission import (
    BACKPRESSURE_POLICIES,
    AdmissionQueue,
    NodeCapacityLedger,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.05)
        assert bucket.try_acquire(0.16)

    def test_next_token_time(self):
        bucket = TokenBucket(rate=4.0, burst=1)
        assert bucket.next_token_time(0.0) == 0.0
        bucket.try_acquire(0.0)
        eta = bucket.next_token_time(0.0)
        assert eta == pytest.approx(0.25)
        assert not bucket.try_acquire(eta - 0.01)
        assert bucket.try_acquire(eta + 0.001)

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        # A long idle period must not bank more than `burst` tokens.
        grants = [bucket.try_acquire(100.0) for _ in range(3)]
        assert grants == [True, True, False]

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        bucket.try_acquire(5.0)
        # An out-of-order now must not produce negative refill.
        assert not bucket.try_acquire(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=5.0, burst=0.5)


class TestAdmissionQueue:
    def test_policy_matrix_is_complete(self):
        assert BACKPRESSURE_POLICIES == ("block", "reject", "shed_oldest")
        for policy in BACKPRESSURE_POLICIES:
            AdmissionQueue(capacity=2, policy=policy)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(policy="drop_newest")

    def test_fifo_order(self):
        queue = AdmissionQueue()
        for item in "abc":
            verdict, shed = queue.offer(item, 0.0)
            assert verdict == "queued" and not shed
        popped = [queue.pop(1.0)[0].item for _ in range(3)]
        assert popped == ["a", "b", "c"]
        entry, expired = queue.pop(1.0)
        assert entry is None and not expired

    def test_reject_policy_refuses_when_full(self):
        queue = AdmissionQueue(capacity=2, policy="reject")
        assert queue.offer("a", 0.0)[0] == "queued"
        assert queue.offer("b", 0.0)[0] == "queued"
        assert queue.offer("c", 0.0)[0] == "rejected"
        assert len(queue) == 2

    def test_block_policy_reports_full(self):
        queue = AdmissionQueue(capacity=1, policy="block")
        assert queue.offer("a", 0.0)[0] == "queued"
        verdict, shed = queue.offer("b", 0.0)
        assert verdict == "full" and not shed
        assert len(queue) == 1  # the caller waits; nothing was enqueued

    def test_shed_oldest_evicts_head(self):
        queue = AdmissionQueue(capacity=2, policy="shed_oldest")
        queue.offer("a", 0.0)
        queue.offer("b", 0.0)
        verdict, shed = queue.offer("c", 0.0)
        assert verdict == "queued"
        assert [entry.item for entry in shed] == ["a"]
        assert [entry.item for entry in queue.iter_entries()] == ["b", "c"]

    def test_timeout_expires_stale_entries_at_pop(self):
        queue = AdmissionQueue(timeout=1.0)
        queue.offer("old", 0.0)
        queue.offer("fresh", 0.8)
        entry, expired = queue.pop(1.5)
        assert entry.item == "fresh"
        assert [e.item for e in expired] == ["old"]

    def test_remove_expired_without_pop(self):
        queue = AdmissionQueue(timeout=0.5)
        queue.offer("a", 0.0)
        queue.offer("b", 0.4)
        expired = queue.remove_expired(0.7)
        assert [e.item for e in expired] == ["a"]
        assert len(queue) == 1

    def test_drain_empties_queue(self):
        queue = AdmissionQueue()
        for item in "xyz":
            queue.offer(item, 0.0)
        drained = queue.drain()
        assert [entry.item for entry in drained] == ["x", "y", "z"]
        assert len(queue) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(timeout=-1.0)


class TestDeadlineBoundary:
    """Exact-boundary pins for timeout expiry across all three policies.

    The contract (documented in ``repro/runtime/admission.py``): an entry is
    expired strictly *after* its deadline, so ``now == deadline`` still
    dispatches; expiry is enforced only at ``pop``; and a ``shed_oldest``
    eviction racing an expiry at the same tick resolves the head as shed.
    """

    def test_pop_at_exact_deadline_dispatches(self):
        queue = AdmissionQueue(timeout=1.0)
        queue.offer("edge", 0.0)
        entry, expired = queue.pop(1.0)  # now == deadline
        assert entry is not None and entry.item == "edge"
        assert not expired

    def test_pop_just_after_deadline_expires(self):
        queue = AdmissionQueue(timeout=1.0)
        queue.offer("late", 0.0)
        entry, expired = queue.pop(1.0 + 1e-9)
        assert entry is None
        assert [e.item for e in expired] == ["late"]

    def test_zero_timeout_still_allows_same_tick_dispatch(self):
        # deadline = enqueued_at + 0: "may wait up to 0" admits the entry
        # when offer and pop land on the same tick.
        queue = AdmissionQueue(timeout=0.0)
        queue.offer("now", 5.0)
        entry, expired = queue.pop(5.0)
        assert entry is not None and entry.item == "now"
        assert not expired

    def test_expired_entry_is_admissible_at_its_own_deadline_via_remove_expired(self):
        queue = AdmissionQueue(timeout=2.0)
        queue.offer("a", 0.0)
        assert queue.remove_expired(2.0) == []  # boundary: still live
        assert [e.item for e in queue.remove_expired(2.0 + 1e-9)] == ["a"]

    def test_block_policy_reports_full_even_with_expirable_head(self):
        # offer() never expires entries: the head past its deadline still
        # occupies its slot until the next pop observes it.
        queue = AdmissionQueue(capacity=1, policy="block", timeout=1.0)
        queue.offer("stale", 0.0)
        verdict, shed = queue.offer("fresh", 10.0)
        assert verdict == "full" and not shed
        entry, expired = queue.pop(10.0)
        assert entry is None
        assert [e.item for e in expired] == ["stale"]

    def test_reject_policy_refuses_even_with_expirable_head(self):
        queue = AdmissionQueue(capacity=1, policy="reject", timeout=1.0)
        queue.offer("stale", 0.0)
        assert queue.offer("fresh", 10.0)[0] == "rejected"

    def test_shed_racing_expiry_at_same_tick_resolves_as_shed(self):
        # The head is both past its deadline and the shed victim; it must
        # leave through exactly one accounting channel — the shed list.
        queue = AdmissionQueue(capacity=1, policy="shed_oldest", timeout=1.0)
        queue.offer("victim", 0.0)
        verdict, shed = queue.offer("fresh", 10.0)  # head expired long ago
        assert verdict == "queued"
        assert [e.item for e in shed] == ["victim"]
        entry, expired = queue.pop(10.0)
        assert entry.item == "fresh"
        assert not expired  # the victim was shed, never double-counted


class TestNodeCapacityLedger:
    @pytest.fixture
    def topology(self):
        from repro.network.topology import build_topology

        return build_topology("line", num_nodes=3, qubit_capacity=10)

    def test_matches_scheduler_semantics(self, topology):
        ledger = NodeCapacityLedger(topology)
        names = topology.node_names
        needs = {names[0]: 6, names[1]: 6}
        assert ledger.viable(needs)
        assert ledger.fits(needs)
        ledger.reserve("s1", needs)
        assert ledger.qubits_in_use(names[0]) == 6
        # A second identical reservation exceeds capacity but stays viable.
        assert not ledger.fits(needs)
        assert ledger.viable(needs)
        ledger.release("s1", needs)
        assert ledger.fits(needs)
        assert ledger.qubits_in_use(names[0]) == 0

    def test_unviable_requests_never_fit(self, topology):
        ledger = NodeCapacityLedger(topology)
        names = topology.node_names
        assert not ledger.viable({names[0]: 11})
        assert not ledger.fits({names[0]: 11})

    def test_occupancy_in_node_order(self, topology):
        ledger = NodeCapacityLedger(topology)
        names = topology.node_names
        ledger.reserve("s", {names[1]: 4})
        assert list(ledger.occupancy().items()) == [
            (names[0], 0),
            (names[1], 4),
            (names[2], 0),
        ]

    def test_scheduler_uses_the_ledger(self):
        """The network scheduler's reservation pass runs on this ledger."""
        import inspect

        from repro.network.scheduler import NetworkScheduler

        source = inspect.getsource(NetworkScheduler._reservation_pass)
        assert "NodeCapacityLedger" in source
