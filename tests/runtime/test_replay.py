"""Replay-mode determinism: concurrent engine ≡ serial oracle, byte for byte.

The contract under test (see :mod:`repro.runtime.engine`): an engine built
with ``seed=S`` and a no-drop configuration produces, for every request, a
:class:`~repro.api.report.DeliveryReport` byte-identical to the serial
reference oracle's — for any worker count and thread interleaving, because
each request's randomness derives only from its own ``(S, request_id)``
seed.
"""

import json

import pytest

from repro.api.config import ServiceConfig
from repro.runtime.engine import replay_engine, request_seed, serial_reference

SEEDS = [3, 17, 2024]
WORKER_COUNTS = [2, 5]
PAYLOADS = ["alpha", "βeta", "0101", "payload four", "five", "final message"]


def _canonical(report) -> str:
    return json.dumps(report.summary(), sort_keys=True, ensure_ascii=False)


class TestReplayParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_concurrent_reports_match_serial_oracle(self, seed, workers):
        config = ServiceConfig.ideal()
        reference = serial_reference(config, PAYLOADS, seed=seed)
        with replay_engine(config, seed=seed, max_workers=workers) as engine:
            deliveries = engine.send_many(PAYLOADS)
        assert [d.status for d in deliveries] == ["delivered"] * len(PAYLOADS)
        for delivery, oracle in zip(deliveries, reference):
            assert _canonical(delivery.report) == _canonical(oracle)

    def test_reports_differ_across_seeds(self):
        config = ServiceConfig.ideal()
        first = serial_reference(config, PAYLOADS[:2], seed=SEEDS[0])
        second = serial_reference(config, PAYLOADS[:2], seed=SEEDS[1])
        # Same payloads, different engine seeds → different protocol seeds.
        assert [r.metadata["seed"] for r in first] != [
            r.metadata["seed"] for r in second
        ]

    def test_request_seeds_are_distinct_and_stable(self):
        seeds = [request_seed(7, index) for index in range(100)]
        assert len(set(seeds)) == 100
        assert seeds == [request_seed(7, index) for index in range(100)]

    def test_explicit_per_request_seed_overrides_replay_derivation(self):
        config = ServiceConfig.ideal()
        with replay_engine(config, seed=1, max_workers=2) as engine:
            pinned = engine.send("pinned", seed=12345)
        assert pinned.request.seed == 12345
        assert pinned.report.metadata["seed"] == 12345

    def test_networked_backend_also_replays(self):
        """The parity holds across the network backend's scheduler too."""
        from repro.experiments.network_scale import build_network

        topology = build_network(topology="grid", rows=2, cols=2, qubit_capacity=None)
        config = ServiceConfig.networked(topology)
        payloads = ["net a", "net b", "net c"]
        reference = serial_reference(config, payloads, seed=5)
        with replay_engine(config, seed=5, max_workers=3) as engine:
            deliveries = engine.send_many(payloads)
        for delivery, oracle in zip(deliveries, reference):
            assert _canonical(delivery.report) == _canonical(oracle)
