"""Tests for the cooperative SIGINT / graceful-shutdown machinery."""

import os
import signal
import threading

import pytest

from repro.runtime import interrupt


@pytest.fixture(autouse=True)
def clean_flag():
    interrupt.reset_shutdown()
    yield
    interrupt.reset_shutdown()


class TestShutdownFlag:
    def test_request_and_poll(self):
        assert not interrupt.shutdown_requested()
        interrupt.request_shutdown()
        assert interrupt.shutdown_requested()
        interrupt.reset_shutdown()
        assert not interrupt.shutdown_requested()

    def test_flag_is_visible_across_threads(self):
        seen = threading.Event()

        def poller():
            while not interrupt.shutdown_requested():
                pass
            seen.set()

        thread = threading.Thread(target=poller, daemon=True)
        thread.start()
        interrupt.request_shutdown()
        assert seen.wait(timeout=5.0)
        thread.join(timeout=5.0)


class TestSigintHandler:
    def test_first_sigint_sets_flag_second_raises(self):
        previous = interrupt.install_sigint_handler()
        try:
            os.kill(os.getpid(), signal.SIGINT)
            assert interrupt.shutdown_requested()
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
        finally:
            signal.signal(signal.SIGINT, previous)
            interrupt.reset_shutdown()
        # The second Ctrl-C restored the previous handler on its way out.
        assert signal.getsignal(signal.SIGINT) is previous

    def test_graceful_sigint_context_restores_handler(self):
        before = signal.getsignal(signal.SIGINT)
        with interrupt.graceful_sigint():
            assert signal.getsignal(signal.SIGINT) is not before
            os.kill(os.getpid(), signal.SIGINT)
            assert interrupt.shutdown_requested()
        assert signal.getsignal(signal.SIGINT) is before
        assert not interrupt.shutdown_requested()

    def test_install_off_main_thread_returns_none(self):
        result = {}

        def worker():
            result["handler"] = interrupt.install_sigint_handler()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert result["handler"] is None
